//! Flow-level ("fluid") network model with max-min fair bandwidth sharing.
//!
//! Every active transfer is a *flow* draining at a rate determined by
//! progressive filling (water-filling) over the links of its route, subject
//! to an optional per-flow rate cap. The cap models two real phenomena from
//! the paper:
//!
//! * the per-stream TCP ceiling ("the three lines saturating at approximately
//!   2 MB/s are … clients versus J90 Ninf server throughput", Fig 5), and
//! * the server-side XDR marshalling rate, which contends with computation
//!   for server PEs and is why LAN aggregate throughput *falls* as CPU
//!   utilization saturates (Tables 3/4).
//!
//! Rates are recomputed whenever the flow set or a cap changes; between
//! changes each flow drains linearly, so completions are exact — no
//! time-stepping error. Propagation latency is the driver's concern (it knows
//! [`crate::topology::Topology::path_latency`] and schedules delivery events
//! accordingly); the fluid model handles only bandwidth contention.

use std::collections::HashMap;

use crate::topology::{LinkId, NodeId, Topology};

/// Identifier of an active flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowId(pub u64);

/// Parameters of a new flow.
#[derive(Debug, Clone, Copy)]
pub struct FlowSpec {
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Bytes to transfer.
    pub bytes: f64,
    /// Per-flow rate ceiling in bytes/second (`f64::INFINITY` for none).
    pub cap: f64,
}

#[derive(Debug, Clone)]
struct Flow {
    path: Vec<LinkId>,
    remaining: f64,
    rate: f64,
    cap: f64,
}

/// The fluid network: topology + active flows + fair-share rates.
#[derive(Debug, Clone)]
pub struct FluidNet {
    topo: Topology,
    flows: HashMap<FlowId, Flow>,
    order: Vec<FlowId>, // deterministic iteration order (insertion order)
    next_id: u64,
    now: f64,
    /// Cumulative bytes delivered across all flows (for aggregate stats).
    delivered: f64,
    /// Per-link failure state: a downed link carries zero bandwidth, so
    /// flows crossing it freeze at rate 0 (the sim-side mirror of a hung or
    /// dropped connection on the live path).
    down: Vec<bool>,
}

const EPS: f64 = 1e-9;

impl FluidNet {
    /// Wrap a routed topology.
    ///
    /// # Panics
    /// Panics later (at `start_flow`) if routes were not computed.
    pub fn new(topo: Topology) -> Self {
        let down = vec![false; topo.link_count()];
        Self {
            topo,
            flows: HashMap::new(),
            order: Vec::new(),
            next_id: 0,
            now: 0.0,
            delivered: 0.0,
            down,
        }
    }

    /// Access the underlying topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Current virtual time of the network.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Total bytes delivered by completed-and-finished or still-active flows.
    pub fn bytes_delivered(&self) -> f64 {
        self.delivered
    }

    /// Number of active flows.
    pub fn active_flows(&self) -> usize {
        self.flows.len()
    }

    /// Start a flow at absolute time `at` (must be ≥ the network's time;
    /// the network is advanced to `at` first).
    ///
    /// # Panics
    /// Panics if `src` cannot reach `dst` or `bytes`/`cap` are invalid.
    pub fn start_flow(&mut self, spec: FlowSpec, at: f64) -> FlowId {
        self.advance_to(at);
        assert!(
            spec.bytes >= 0.0 && !spec.bytes.is_nan(),
            "invalid byte count"
        );
        assert!(
            spec.cap > 0.0,
            "flow cap must be positive (use INFINITY for none)"
        );
        let path = self
            .topo
            .route(spec.src, spec.dst)
            .unwrap_or_else(|| {
                panic!(
                    "no route {} -> {}",
                    self.topo.node_name(spec.src),
                    self.topo.node_name(spec.dst)
                )
            })
            .to_vec();
        let id = FlowId(self.next_id);
        self.next_id += 1;
        self.flows.insert(
            id,
            Flow {
                path,
                remaining: spec.bytes,
                rate: 0.0,
                cap: spec.cap,
            },
        );
        self.order.push(id);
        self.recompute();
        id
    }

    /// Change a flow's rate cap (e.g. the server's marshalling share changed).
    pub fn set_cap(&mut self, id: FlowId, cap: f64, at: f64) {
        self.advance_to(at);
        assert!(cap > 0.0, "flow cap must be positive");
        self.flows.get_mut(&id).expect("unknown flow").cap = cap;
        self.recompute();
    }

    /// Remaining bytes of a flow.
    pub fn remaining(&self, id: FlowId) -> f64 {
        self.flows[&id].remaining
    }

    /// Current rate of a flow (bytes/second).
    pub fn rate(&self, id: FlowId) -> f64 {
        self.flows[&id].rate
    }

    /// The route a flow takes.
    pub fn path(&self, id: FlowId) -> &[LinkId] {
        &self.flows[&id].path
    }

    /// Earliest completion among active flows: `(time, flow)`.
    ///
    /// Flows with zero rate (fully starved) never complete and are skipped.
    /// Ties resolve to the earliest-started flow, deterministically.
    pub fn next_completion(&self) -> Option<(f64, FlowId)> {
        let mut best: Option<(f64, FlowId)> = None;
        for &id in &self.order {
            let Some(f) = self.flows.get(&id) else {
                continue;
            };
            if f.rate <= 0.0 {
                if f.remaining <= EPS {
                    // zero-byte flow: completes immediately
                    let t = self.now;
                    if best.is_none_or(|(bt, _)| t < bt) {
                        best = Some((t, id));
                    }
                }
                continue;
            }
            let t = self.now + f.remaining / f.rate;
            if best.is_none_or(|(bt, _)| t < bt - EPS) {
                best = Some((t, id));
            }
        }
        best
    }

    /// Advance the network clock to `to`, draining all flows at their current
    /// rates.
    ///
    /// # Panics
    /// Panics if `to` lies beyond the earliest pending completion (the driver
    /// must process completions in order) or moves time backwards.
    pub fn advance_to(&mut self, to: f64) {
        assert!(to >= self.now - EPS, "cannot move network time backwards");
        if to <= self.now {
            return;
        }
        if let Some((t, _)) = self.next_completion() {
            assert!(
                to <= t + 1e-6,
                "advancing to {to} would skip a completion at {t}"
            );
        }
        let dt = to - self.now;
        for f in self.flows.values_mut() {
            let drained = (f.rate * dt).min(f.remaining);
            f.remaining -= drained;
            self.delivered += drained;
        }
        self.now = to;
    }

    /// Remove a completed flow (remaining must be ≈ 0).
    ///
    /// # Panics
    /// Panics if the flow still has bytes left; use [`FluidNet::cancel_flow`]
    /// to abort a transfer.
    pub fn finish_flow(&mut self, id: FlowId) {
        let f = self.flows.get(&id).expect("unknown flow");
        assert!(
            f.remaining <= 1e-3,
            "finish_flow on incomplete flow ({} bytes left)",
            f.remaining
        );
        self.flows.remove(&id);
        self.order.retain(|&x| x != id);
        self.recompute();
    }

    /// Abort a flow regardless of progress (fault injection, two-phase
    /// disconnect).
    pub fn cancel_flow(&mut self, id: FlowId) {
        self.flows.remove(&id);
        self.order.retain(|&x| x != id);
        self.recompute();
    }

    /// Fail a link at time `at`: its bandwidth drops to zero and every flow
    /// crossing it freezes (rate 0, never completing) until the link is
    /// restored or the flow is cancelled. This mirrors the live path's
    /// accepting-but-silent server: bytes stop, the connection doesn't
    /// error — only the client's deadline notices.
    pub fn fail_link(&mut self, link: LinkId, at: f64) {
        self.advance_to(at);
        self.down[link.0] = true;
        self.recompute();
    }

    /// Bring a failed link back at time `at`; affected flows resume at their
    /// recomputed fair share.
    pub fn restore_link(&mut self, link: LinkId, at: f64) {
        self.advance_to(at);
        self.down[link.0] = false;
        self.recompute();
    }

    /// Whether a link is currently failed.
    pub fn link_is_down(&self, link: LinkId) -> bool {
        self.down[link.0]
    }

    /// Recompute max-min fair rates by progressive filling.
    ///
    /// Each unfrozen flow's rate grows at unit speed; a flow freezes when it
    /// hits its cap or when a link on its path saturates. Complexity is
    /// O(rounds × (flows + links)), with at most `flows` rounds.
    fn recompute(&mut self) {
        let n_links = self.topo.link_count();
        let mut avail: Vec<f64> = (0..n_links)
            .map(|i| {
                if self.down[i] {
                    0.0
                } else {
                    self.topo.link(LinkId(i)).capacity
                }
            })
            .collect();
        let mut unfrozen: Vec<FlowId> = Vec::with_capacity(self.flows.len());
        for &id in &self.order {
            if let Some(f) = self.flows.get_mut(&id) {
                f.rate = 0.0;
                unfrozen.push(id);
            }
        }
        // Flows with empty paths (src == dst) run at their cap immediately.
        unfrozen.retain(|id| {
            let f = self.flows.get_mut(id).expect("flow exists");
            if f.path.is_empty() {
                f.rate = if f.cap.is_finite() { f.cap } else { f64::MAX };
                false
            } else {
                true
            }
        });

        let mut link_users = vec![0usize; n_links];
        while !unfrozen.is_empty() {
            for u in link_users.iter_mut() {
                *u = 0;
            }
            for id in &unfrozen {
                for &l in &self.flows[id].path {
                    link_users[l.0] += 1;
                }
            }
            // Largest equal increment all unfrozen flows can take.
            let mut inc = f64::INFINITY;
            for (i, &users) in link_users.iter().enumerate() {
                if users > 0 {
                    inc = inc.min(avail[i] / users as f64);
                }
            }
            for id in &unfrozen {
                let f = &self.flows[id];
                inc = inc.min(f.cap - f.rate);
            }
            debug_assert!(inc.is_finite(), "caps or links must bound every flow");
            let inc = inc.max(0.0);

            for id in &unfrozen {
                let f = self.flows.get_mut(id).expect("flow exists");
                f.rate += inc;
                for &l in &f.path {
                    avail[l.0] -= inc;
                }
            }
            // Freeze flows at cap or on saturated links.
            unfrozen.retain(|id| {
                let f = &self.flows[id];
                let capped = f.rate >= f.cap - EPS * f.cap.max(1.0);
                let saturated = f
                    .path
                    .iter()
                    .any(|&l| avail[l.0] <= EPS * self.topo.link(l).capacity.max(1.0));
                !(capped || saturated)
            });
        }
    }

    /// Rates of all active flows in deterministic (start) order — used by
    /// invariant tests and instrumentation.
    pub fn snapshot_rates(&self) -> Vec<(FlowId, f64)> {
        self.order
            .iter()
            .filter_map(|&id| self.flows.get(&id).map(|f| (id, f.rate)))
            .collect()
    }

    /// Per-link utilized bandwidth (sum of flow rates crossing each link).
    pub fn link_loads(&self) -> Vec<f64> {
        let mut loads = vec![0.0; self.topo.link_count()];
        for f in self.flows.values() {
            for &l in &f.path {
                loads[l.0] += f.rate;
            }
        }
        loads
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn star(n_clients: usize, access_cap: f64, server_cap: f64) -> (FluidNet, Vec<NodeId>, NodeId) {
        let mut t = Topology::new();
        let clients: Vec<NodeId> = (0..n_clients)
            .map(|i| t.add_node(format!("c{i}")))
            .collect();
        let sw = t.add_node("switch");
        let srv = t.add_node("server");
        for &c in &clients {
            t.add_duplex_link(c, sw, access_cap, 0.0);
        }
        t.add_duplex_link(sw, srv, server_cap, 0.0);
        t.compute_routes();
        (FluidNet::new(t), clients, srv)
    }

    #[test]
    fn single_flow_gets_bottleneck_bandwidth() {
        let (mut net, clients, srv) = star(1, 100.0, 10.0);
        let f = net.start_flow(
            FlowSpec {
                src: clients[0],
                dst: srv,
                bytes: 20.0,
                cap: f64::INFINITY,
            },
            0.0,
        );
        assert!((net.rate(f) - 10.0).abs() < 1e-9);
        let (t, id) = net.next_completion().unwrap();
        assert_eq!(id, f);
        assert!((t - 2.0).abs() < 1e-9);
    }

    #[test]
    fn equal_flows_share_equally() {
        let (mut net, clients, srv) = star(4, 100.0, 10.0);
        let flows: Vec<FlowId> = clients
            .iter()
            .map(|&c| {
                net.start_flow(
                    FlowSpec {
                        src: c,
                        dst: srv,
                        bytes: 10.0,
                        cap: f64::INFINITY,
                    },
                    0.0,
                )
            })
            .collect();
        for &f in &flows {
            assert!((net.rate(f) - 2.5).abs() < 1e-9);
        }
    }

    #[test]
    fn cap_limits_flow_and_releases_bandwidth() {
        let (mut net, clients, srv) = star(2, 100.0, 10.0);
        let capped = net.start_flow(
            FlowSpec {
                src: clients[0],
                dst: srv,
                bytes: 10.0,
                cap: 2.0,
            },
            0.0,
        );
        let open = net.start_flow(
            FlowSpec {
                src: clients[1],
                dst: srv,
                bytes: 10.0,
                cap: f64::INFINITY,
            },
            0.0,
        );
        assert!((net.rate(capped) - 2.0).abs() < 1e-9);
        // The uncapped flow picks up the slack: 10 - 2 = 8.
        assert!((net.rate(open) - 8.0).abs() < 1e-9);
    }

    #[test]
    fn rates_rebalance_on_completion() {
        let (mut net, clients, srv) = star(2, 100.0, 10.0);
        let f1 = net.start_flow(
            FlowSpec {
                src: clients[0],
                dst: srv,
                bytes: 5.0,
                cap: f64::INFINITY,
            },
            0.0,
        );
        let f2 = net.start_flow(
            FlowSpec {
                src: clients[1],
                dst: srv,
                bytes: 50.0,
                cap: f64::INFINITY,
            },
            0.0,
        );
        let (t1, id1) = net.next_completion().unwrap();
        assert_eq!(id1, f1);
        assert!((t1 - 1.0).abs() < 1e-9); // 5 bytes at 5 B/s
        net.advance_to(t1);
        net.finish_flow(f1);
        assert!((net.rate(f2) - 10.0).abs() < 1e-9);
        let (t2, _) = net.next_completion().unwrap();
        // 50 - 5 = 45 left at 10 B/s -> 4.5 s more.
        assert!((t2 - 5.5).abs() < 1e-9);
    }

    #[test]
    fn access_link_can_be_the_bottleneck() {
        let (mut net, clients, srv) = star(2, 3.0, 100.0);
        let f1 = net.start_flow(
            FlowSpec {
                src: clients[0],
                dst: srv,
                bytes: 10.0,
                cap: f64::INFINITY,
            },
            0.0,
        );
        let f2 = net.start_flow(
            FlowSpec {
                src: clients[1],
                dst: srv,
                bytes: 10.0,
                cap: f64::INFINITY,
            },
            0.0,
        );
        // Separate access links of 3.0 each; server link 100 is not binding.
        assert!((net.rate(f1) - 3.0).abs() < 1e-9);
        assert!((net.rate(f2) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn opposite_directions_do_not_contend() {
        let (mut net, clients, srv) = star(1, 100.0, 10.0);
        let up = net.start_flow(
            FlowSpec {
                src: clients[0],
                dst: srv,
                bytes: 100.0,
                cap: f64::INFINITY,
            },
            0.0,
        );
        let down = net.start_flow(
            FlowSpec {
                src: srv,
                dst: clients[0],
                bytes: 100.0,
                cap: f64::INFINITY,
            },
            0.0,
        );
        assert!((net.rate(up) - 10.0).abs() < 1e-9);
        assert!((net.rate(down) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn set_cap_rebalances() {
        let (mut net, clients, srv) = star(2, 100.0, 10.0);
        let f1 = net.start_flow(
            FlowSpec {
                src: clients[0],
                dst: srv,
                bytes: 100.0,
                cap: f64::INFINITY,
            },
            0.0,
        );
        let f2 = net.start_flow(
            FlowSpec {
                src: clients[1],
                dst: srv,
                bytes: 100.0,
                cap: f64::INFINITY,
            },
            0.0,
        );
        net.set_cap(f1, 1.0, 0.0);
        assert!((net.rate(f1) - 1.0).abs() < 1e-9);
        assert!((net.rate(f2) - 9.0).abs() < 1e-9);
    }

    #[test]
    fn cancel_mid_transfer() {
        let (mut net, clients, srv) = star(2, 100.0, 10.0);
        let f1 = net.start_flow(
            FlowSpec {
                src: clients[0],
                dst: srv,
                bytes: 100.0,
                cap: f64::INFINITY,
            },
            0.0,
        );
        let f2 = net.start_flow(
            FlowSpec {
                src: clients[1],
                dst: srv,
                bytes: 100.0,
                cap: f64::INFINITY,
            },
            0.0,
        );
        net.advance_to(1.0);
        net.cancel_flow(f1);
        assert!((net.rate(f2) - 10.0).abs() < 1e-9);
        assert_eq!(net.active_flows(), 1);
    }

    #[test]
    fn zero_byte_flow_completes_immediately() {
        let (mut net, clients, srv) = star(1, 100.0, 10.0);
        let f = net.start_flow(
            FlowSpec {
                src: clients[0],
                dst: srv,
                bytes: 0.0,
                cap: f64::INFINITY,
            },
            0.0,
        );
        let (t, id) = net.next_completion().unwrap();
        assert_eq!(id, f);
        assert_eq!(t, 0.0);
        net.finish_flow(f);
        assert_eq!(net.active_flows(), 0);
    }

    #[test]
    fn bytes_delivered_accumulates() {
        let (mut net, clients, srv) = star(1, 100.0, 10.0);
        let f = net.start_flow(
            FlowSpec {
                src: clients[0],
                dst: srv,
                bytes: 20.0,
                cap: f64::INFINITY,
            },
            0.0,
        );
        net.advance_to(1.0);
        assert!((net.bytes_delivered() - 10.0).abs() < 1e-9);
        net.advance_to(2.0);
        net.finish_flow(f);
        assert!((net.bytes_delivered() - 20.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "skip a completion")]
    fn advancing_past_completion_panics() {
        let (mut net, clients, srv) = star(1, 100.0, 10.0);
        net.start_flow(
            FlowSpec {
                src: clients[0],
                dst: srv,
                bytes: 10.0,
                cap: f64::INFINITY,
            },
            0.0,
        );
        net.advance_to(100.0);
    }

    #[test]
    #[should_panic(expected = "no route")]
    fn unroutable_flow_panics() {
        let mut t = Topology::new();
        let a = t.add_node("a");
        let b = t.add_node("b");
        let c = t.add_node("c");
        t.add_duplex_link(a, b, 1.0, 0.0);
        t.compute_routes();
        let mut net = FluidNet::new(t);
        net.start_flow(
            FlowSpec {
                src: a,
                dst: c,
                bytes: 1.0,
                cap: f64::INFINITY,
            },
            0.0,
        );
    }

    #[test]
    fn failed_link_starves_its_flows_but_not_others() {
        let (mut net, clients, srv) = star(2, 100.0, 10.0);
        let f1 = net.start_flow(
            FlowSpec {
                src: clients[0],
                dst: srv,
                bytes: 100.0,
                cap: f64::INFINITY,
            },
            0.0,
        );
        let f2 = net.start_flow(
            FlowSpec {
                src: clients[1],
                dst: srv,
                bytes: 100.0,
                cap: f64::INFINITY,
            },
            0.0,
        );
        // Fail client 0's access link (its first hop).
        let cut = net.path(f1)[0];
        net.fail_link(cut, 0.0);
        assert!(net.link_is_down(cut));
        assert_eq!(net.rate(f1), 0.0);
        // The survivor inherits the whole server link.
        assert!((net.rate(f2) - 10.0).abs() < 1e-9);
        // A starved flow never completes: only f2's completion is pending.
        let (_, id) = net.next_completion().unwrap();
        assert_eq!(id, f2);
    }

    #[test]
    fn restore_link_resumes_frozen_flows() {
        let (mut net, clients, srv) = star(1, 100.0, 10.0);
        let f = net.start_flow(
            FlowSpec {
                src: clients[0],
                dst: srv,
                bytes: 20.0,
                cap: f64::INFINITY,
            },
            0.0,
        );
        let cut = net.path(f)[0];
        net.fail_link(cut, 1.0); // 10 bytes through, 10 stranded
        assert_eq!(net.rate(f), 0.0);
        assert!(net.next_completion().is_none());
        // Downtime passes without progress.
        net.advance_to(5.0);
        assert!((net.remaining(f) - 10.0).abs() < 1e-9);
        net.restore_link(cut, 5.0);
        assert!(!net.link_is_down(cut));
        assert!((net.rate(f) - 10.0).abs() < 1e-9);
        let (t, id) = net.next_completion().unwrap();
        assert_eq!(id, f);
        // 10 bytes left at 10 B/s, resuming at t=5.
        assert!((t - 6.0).abs() < 1e-9);
    }

    #[test]
    fn cancelling_a_starved_flow_models_client_timeout() {
        // The live client gives up on a hung transfer after its deadline;
        // the sim mirror is cancel_flow on a starved flow.
        let (mut net, clients, srv) = star(2, 100.0, 10.0);
        let f1 = net.start_flow(
            FlowSpec {
                src: clients[0],
                dst: srv,
                bytes: 100.0,
                cap: f64::INFINITY,
            },
            0.0,
        );
        let f2 = net.start_flow(
            FlowSpec {
                src: clients[1],
                dst: srv,
                bytes: 100.0,
                cap: f64::INFINITY,
            },
            0.0,
        );
        let cut = net.path(f1)[0];
        net.fail_link(cut, 0.0);
        net.advance_to(3.0); // the "deadline"
        net.cancel_flow(f1);
        assert_eq!(net.active_flows(), 1);
        assert!((net.rate(f2) - 10.0).abs() < 1e-9);
    }

    /// Three flows, staggered caps: max-min should give (1, 4.5, 4.5).
    #[test]
    fn textbook_maxmin_example() {
        let (mut net, clients, srv) = star(3, 100.0, 10.0);
        let f1 = net.start_flow(
            FlowSpec {
                src: clients[0],
                dst: srv,
                bytes: 1.0,
                cap: 1.0,
            },
            0.0,
        );
        let f2 = net.start_flow(
            FlowSpec {
                src: clients[1],
                dst: srv,
                bytes: 1.0,
                cap: f64::INFINITY,
            },
            0.0,
        );
        let f3 = net.start_flow(
            FlowSpec {
                src: clients[2],
                dst: srv,
                bytes: 1.0,
                cap: f64::INFINITY,
            },
            0.0,
        );
        assert!((net.rate(f1) - 1.0).abs() < 1e-9);
        assert!((net.rate(f2) - 4.5).abs() < 1e-9);
        assert!((net.rate(f3) - 4.5).abs() < 1e-9);
    }
}
