//! Deterministic pseudo-random numbers for simulation processes.
//!
//! Simulations must be exactly reproducible from a seed (DESIGN.md §6), so we
//! use a self-contained SplitMix64 rather than OS entropy. SplitMix64 passes
//! BigCrush, is trivially seedable, and every draw is a pure function of the
//! previous state.

/// SplitMix64 generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create from a seed. Distinct seeds give independent-looking streams.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform deviate in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // 53 high bits -> [0, 1) with full double precision.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with probability `p`.
    #[inline]
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Uniform integer in `[0, n)` (n > 0).
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Multiplicative range reduction; bias is negligible for sim purposes.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Derive an independent child generator (for per-client streams).
    pub fn fork(&mut self) -> SplitMix64 {
        SplitMix64::new(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut g = SplitMix64::new(7);
        for _ in 0..10_000 {
            let u = g.next_f64();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn bernoulli_rate_roughly_p() {
        let mut g = SplitMix64::new(11);
        let hits = (0..100_000).filter(|_| g.bernoulli(0.5)).count();
        assert!((hits as f64 / 100_000.0 - 0.5).abs() < 0.01);
    }

    #[test]
    fn below_respects_bound() {
        let mut g = SplitMix64::new(3);
        for _ in 0..1000 {
            assert!(g.below(7) < 7);
        }
    }

    #[test]
    fn forked_streams_are_distinct() {
        let mut root = SplitMix64::new(99);
        let mut a = root.fork();
        let mut b = root.fork();
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
