//! Deterministic discrete-event network simulation substrate.
//!
//! The paper's Conclusion motivates exactly this component: "on the Internet
//! it is quite difficult to perform large-scale benchmarks with reproducible
//! results. One current plan we have is to build a global computing simulator
//! for Ninf, on which we could readily test different client network
//! topologies under various communication and other parameters." This crate
//! is that simulator's substrate:
//!
//! * [`engine`] — a generic discrete-event engine with a deterministic
//!   (time, sequence) total order and virtual clock;
//! * [`fluid`] — a flow-level ("fluid") network model: a topology of links
//!   with capacities and latencies, and transfers that share bottleneck links
//!   under **max-min fairness** with optional per-flow rate caps (modelling
//!   per-stream TCP ceilings and server-side marshalling limits);
//! * [`topology`] — node/link graph with static shortest-path routing and
//!   helpers to build the paper's LAN, single-site WAN, and 4-site WAN
//!   configurations;
//! * [`rng`] — a small deterministic SplitMix64 generator for client arrival
//!   processes (no OS entropy ever enters a simulation);
//! * [`wan`] — the simulator mirror of `ninf-protocol`'s live WAN shaping:
//!   the same link spec and loss schedule, with chunked parallel-stream
//!   uploads simulated as fluid flows to predict the goodput-vs-streams
//!   curve the live `wan-streams` benchmark measures.
//!
//! Time is `f64` seconds; determinism comes from the engine's sequence-number
//! tie-break, not from quantizing time.

pub mod engine;
pub mod fluid;
pub mod rng;
pub mod topology;
pub mod wan;

pub use engine::{Engine, EventEntry};
pub use fluid::{FlowId, FlowSpec, FluidNet};
pub use rng::SplitMix64;
pub use topology::{LinkId, NodeId, Topology};
pub use wan::{goodput_curve, simulate_upload, WanRun, WanSpec, CHUNK_WIRE_OVERHEAD};

#[cfg(test)]
mod tests {
    use super::*;

    /// A two-client / one-server star: both flows share the server access
    /// link fairly, then the remaining flow speeds up — the core behaviour
    /// behind every multi-client table in the paper.
    #[test]
    fn shared_bottleneck_end_to_end() {
        let mut topo = Topology::new();
        let c1 = topo.add_node("client1");
        let c2 = topo.add_node("client2");
        let sw = topo.add_node("switch");
        let srv = topo.add_node("server");
        topo.add_duplex_link(c1, sw, 100.0, 0.0);
        topo.add_duplex_link(c2, sw, 100.0, 0.0);
        topo.add_duplex_link(sw, srv, 10.0, 0.0); // bottleneck
        topo.compute_routes();

        let mut net = FluidNet::new(topo);
        let f1 = net.start_flow(
            FlowSpec {
                src: c1,
                dst: srv,
                bytes: 50.0,
                cap: f64::INFINITY,
            },
            0.0,
        );
        let f2 = net.start_flow(
            FlowSpec {
                src: c2,
                dst: srv,
                bytes: 100.0,
                cap: f64::INFINITY,
            },
            0.0,
        );

        // Both share the 10 B/s bottleneck: 5 B/s each. f1 finishes at t=10.
        let (t1, done1) = net.next_completion().unwrap();
        assert_eq!(done1, f1);
        assert!((t1 - 10.0).abs() < 1e-9);
        net.advance_to(t1);
        net.finish_flow(f1);

        // f2 has 50 bytes left and now gets the full 10 B/s: done at t=15.
        let (t2, done2) = net.next_completion().unwrap();
        assert_eq!(done2, f2);
        assert!((t2 - 15.0).abs() < 1e-9);
    }
}
