//! Generic discrete-event engine.
//!
//! The engine is deliberately small: a priority queue of `(time, seq, event)`
//! entries with a virtual clock. The *driver* (in `ninf-sim`) owns all state
//! and interprets events; the engine only guarantees deterministic total
//! order — events at equal times fire in scheduling order, so a simulation is
//! a pure function of its inputs and seed.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event scheduled at a virtual time.
#[derive(Debug, Clone)]
pub struct EventEntry<E> {
    /// Virtual time (seconds) at which the event fires.
    pub time: f64,
    /// Scheduling sequence number — the deterministic tie-break.
    pub seq: u64,
    /// Driver-defined payload.
    pub event: E,
}

impl<E> PartialEq for EventEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for EventEntry<E> {}

impl<E> PartialOrd for EventEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for EventEntry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse order so BinaryHeap pops the *earliest* entry. NaN times
        // are rejected at scheduling, so total_cmp here is safe and total.
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Discrete-event engine over payload type `E`.
#[derive(Debug)]
pub struct Engine<E> {
    heap: BinaryHeap<EventEntry<E>>,
    now: f64,
    next_seq: u64,
    processed: u64,
}

impl<E> Default for Engine<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Engine<E> {
    /// Empty engine at time zero.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            now: 0.0,
            next_seq: 0,
            processed: 0,
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Number of events popped so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of events still pending.
    pub fn pending(&self) -> usize {
        self.heap.len()
    }

    /// Schedule `event` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is NaN or earlier than the current time (causality).
    pub fn schedule(&mut self, at: f64, event: E) {
        assert!(!at.is_nan(), "cannot schedule at NaN");
        assert!(
            at >= self.now,
            "causality violation: scheduling at {at} < now {}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(EventEntry {
            time: at,
            seq,
            event,
        });
    }

    /// Schedule `event` `delay` seconds from now.
    pub fn schedule_in(&mut self, delay: f64, event: E) {
        self.schedule(self.now + delay.max(0.0), event);
    }

    /// Time of the next pending event, if any.
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|e| e.time)
    }

    /// Pop the next event, advancing the clock to its time.
    pub fn pop(&mut self) -> Option<EventEntry<E>> {
        let entry = self.heap.pop()?;
        debug_assert!(entry.time >= self.now);
        self.now = entry.time;
        self.processed += 1;
        Some(entry)
    }

    /// Advance the clock without popping (used when an external source — the
    /// fluid network — produces the next event instead of the heap).
    ///
    /// # Panics
    /// Panics if `to` would move time backwards past the next pending event's
    /// ordering guarantee (i.e. `to` must not exceed [`Engine::peek_time`]).
    pub fn advance_to(&mut self, to: f64) {
        assert!(to >= self.now, "cannot move time backwards");
        if let Some(next) = self.peek_time() {
            assert!(
                to <= next + 1e-12,
                "advancing past pending event at {next} (to {to}) would reorder events"
            );
        }
        self.now = to;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut eng = Engine::new();
        eng.schedule(3.0, "c");
        eng.schedule(1.0, "a");
        eng.schedule(2.0, "b");
        let order: Vec<&str> = std::iter::from_fn(|| eng.pop().map(|e| e.event)).collect();
        assert_eq!(order, ["a", "b", "c"]);
    }

    #[test]
    fn ties_break_by_scheduling_order() {
        let mut eng = Engine::new();
        eng.schedule(1.0, "first");
        eng.schedule(1.0, "second");
        eng.schedule(1.0, "third");
        let order: Vec<&str> = std::iter::from_fn(|| eng.pop().map(|e| e.event)).collect();
        assert_eq!(order, ["first", "second", "third"]);
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut eng = Engine::new();
        eng.schedule(5.0, ());
        assert_eq!(eng.now(), 0.0);
        eng.pop();
        assert_eq!(eng.now(), 5.0);
        assert_eq!(eng.processed(), 1);
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut eng = Engine::new();
        eng.schedule(2.0, "x");
        eng.pop();
        eng.schedule_in(3.0, "y");
        assert_eq!(eng.peek_time(), Some(5.0));
    }

    #[test]
    #[should_panic(expected = "causality")]
    fn scheduling_in_the_past_panics() {
        let mut eng = Engine::new();
        eng.schedule(2.0, ());
        eng.pop();
        eng.schedule(1.0, ());
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_time_panics() {
        let mut eng: Engine<()> = Engine::new();
        eng.schedule(f64::NAN, ());
    }

    #[test]
    fn advance_to_between_events() {
        let mut eng = Engine::new();
        eng.schedule(10.0, ());
        eng.advance_to(7.5);
        assert_eq!(eng.now(), 7.5);
        let e = eng.pop().unwrap();
        assert_eq!(e.time, 10.0);
    }

    #[test]
    #[should_panic(expected = "reorder")]
    fn advance_past_pending_event_panics() {
        let mut eng = Engine::new();
        eng.schedule(1.0, ());
        eng.advance_to(2.0);
    }

    #[test]
    fn negative_delay_clamps_to_now() {
        let mut eng = Engine::new();
        eng.schedule(1.0, "a");
        eng.pop();
        eng.schedule_in(-5.0, "b");
        assert_eq!(eng.peek_time(), Some(1.0));
    }
}
