//! Property tests on the numerical kernels: LU correctness on random
//! well-conditioned systems, blocked/parallel equivalence, EP stream
//! partitioning.

use ninf_exec::{
    dgefa, dgefa_blocked, dgefa_blocked_parallel, dgesl, dmmul, dmmul_blocked, dmmul_parallel,
    ep_segment_any, residual_check, Matrix, NasRng,
};
use proptest::prelude::*;

/// Random diagonally-dominant matrix (guaranteed non-singular) plus a
/// random solution vector.
fn arb_system() -> impl Strategy<Value = (Matrix, Vec<f64>)> {
    (2usize..40).prop_flat_map(|n| {
        (
            proptest::collection::vec(-1.0f64..1.0, n * n),
            proptest::collection::vec(-10.0f64..10.0, n),
        )
            .prop_map(move |(entries, x)| {
                let mut a = Matrix::from_col_major(n, n, entries);
                // Make strictly diagonally dominant.
                for i in 0..n {
                    let row_sum: f64 = (0..n).map(|j| a[(i, j)].abs()).sum();
                    a[(i, i)] = row_sum + 1.0;
                }
                (a, x)
            })
    })
}

proptest! {
    /// Solving A·x = b with the factored routines recovers x.
    #[test]
    fn lu_solve_recovers_solution((a, x_true) in arb_system()) {
        let b = a.matvec(&x_true);
        let mut fact = a.clone();
        let ipvt = dgefa(&mut fact).unwrap();
        let mut x = b.clone();
        dgesl(&fact, &ipvt, &mut x);
        for (xi, ti) in x.iter().zip(&x_true) {
            prop_assert!((xi - ti).abs() < 1e-6 * (1.0 + ti.abs()), "{} vs {}", xi, ti);
        }
        prop_assert!(residual_check(&a, &x, &b) < 100.0);
    }

    /// Blocked and parallel factorizations are bitwise equal to unblocked on
    /// arbitrary (well-conditioned) matrices, for arbitrary block sizes.
    #[test]
    fn blocked_variants_bitwise_equal((a, _) in arb_system(), nb in 1usize..48) {
        let mut reference = a.clone();
        let ip_ref = dgefa(&mut reference).unwrap();

        let mut blocked = a.clone();
        let ip_blk = dgefa_blocked(&mut blocked, nb).unwrap();
        prop_assert_eq!(&ip_blk, &ip_ref);
        prop_assert_eq!(blocked.as_slice(), reference.as_slice());

        let mut parallel = a.clone();
        let ip_par = dgefa_blocked_parallel(&mut parallel, nb).unwrap();
        prop_assert_eq!(&ip_par, &ip_ref);
        prop_assert_eq!(parallel.as_slice(), reference.as_slice());
    }

    /// All three matrix-multiply kernels agree bitwise.
    #[test]
    fn matmul_kernels_agree(n in 1usize..24, seed in any::<u32>()) {
        let mut g = NasRng::new(seed as u64 | 1);
        let mut fill = |rows: usize, cols: usize| {
            let data: Vec<f64> = (0..rows * cols).map(|_| 2.0 * g.next_f64() - 1.0).collect();
            Matrix::from_col_major(rows, cols, data)
        };
        let a = fill(n, n);
        let b = fill(n, n);
        let reference = dmmul(&a, &b);
        prop_assert_eq!(&dmmul_blocked(&a, &b, 7), &reference);
        prop_assert_eq!(&dmmul_parallel(&a, &b), &reference);
    }

    /// EP stream partitioning: any split of [0, total) into segments merges
    /// to the same counts as the whole run.
    #[test]
    fn ep_partitioning_is_exact(total in 64u64..2048, cut in 1u64..63) {
        let cut = (cut * total / 64).clamp(1, total - 1);
        let whole = ep_segment_any(0, total);
        let first = ep_segment_any(0, cut);
        let second = ep_segment_any(cut, total - cut);
        let merged = first.merge(&second);
        prop_assert_eq!(merged.counts, whole.counts);
        prop_assert_eq!(merged.accepted, whole.accepted);
        prop_assert!((merged.sx - whole.sx).abs() < 1e-9);
        prop_assert!((merged.sy - whole.sy).abs() < 1e-9);
    }

    /// Skip-ahead agrees with sequential stepping at arbitrary offsets.
    #[test]
    fn rng_skip_consistency(k in 0u64..10_000) {
        let mut stepped = NasRng::default();
        for _ in 0..k {
            stepped.next_raw();
        }
        prop_assert_eq!(NasRng::default().at_offset(k).state(), stepped.state());
    }
}
