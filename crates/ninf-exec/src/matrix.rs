//! Column-major dense matrix, matching the Fortran storage the original
//! Linpack/libSci routines assume and the layout Ninf ships on the wire.

use std::fmt;
use std::ops::{Index, IndexMut};

/// Dense column-major `rows × cols` matrix of `f64`.
///
/// Column-major order matters: Ninf marshals matrices as one flat XDR double
/// array, and the LU routines walk columns for stride-1 access exactly like
/// the Fortran originals.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero-filled matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build from row slices (convenient in tests).
    ///
    /// # Panics
    /// Panics if rows have unequal lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        assert!(rows.iter().all(|row| row.len() == c), "ragged rows");
        let mut m = Self::zeros(r, c);
        for (i, row) in rows.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                m[(i, j)] = v;
            }
        }
        m
    }

    /// Adopt a column-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_col_major(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer size mismatch");
        Self { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow the column-major backing storage.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrow the column-major backing storage.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consume into the column-major backing storage.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Borrow column `j` as a contiguous slice.
    pub fn col(&self, j: usize) -> &[f64] {
        &self.data[j * self.rows..(j + 1) * self.rows]
    }

    /// Mutably borrow column `j` as a contiguous slice.
    pub fn col_mut(&mut self, j: usize) -> &mut [f64] {
        &mut self.data[j * self.rows..(j + 1) * self.rows]
    }

    /// Split into two mutable column ranges `[0, mid)` and `[mid, cols)`.
    ///
    /// Needed by the blocked LU update where the panel is read while the
    /// trailing matrix is written.
    pub fn split_cols_mut(&mut self, mid: usize) -> (ColsMut<'_>, ColsMut<'_>) {
        let (left, right) = self.data.split_at_mut(mid * self.rows);
        (
            ColsMut {
                rows: self.rows,
                cols: mid,
                data: left,
            },
            ColsMut {
                rows: self.rows,
                cols: self.cols - mid,
                data: right,
            },
        )
    }

    /// Matrix–vector product `A·x`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "dimension mismatch");
        let mut y = vec![0.0; self.rows];
        for (j, &xj) in x.iter().enumerate() {
            if xj != 0.0 {
                let col = self.col(j);
                for (yi, &cij) in y.iter_mut().zip(col) {
                    *yi += cij * xj;
                }
            }
        }
        y
    }

    /// Reference (naive) matrix product, used to validate the fast kernels.
    pub fn matmul_ref(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "dimension mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for j in 0..other.cols {
            for k in 0..self.cols {
                let bkj = other[(k, j)];
                if bkj != 0.0 {
                    let col = self.col(k);
                    let out_col = out.col_mut(j);
                    for i in 0..self.rows {
                        out_col[i] += col[i] * bkj;
                    }
                }
            }
        }
        out
    }

    /// Max-absolute-entry norm.
    pub fn max_norm(&self) -> f64 {
        self.data.iter().fold(0.0f64, |acc, &v| acc.max(v.abs()))
    }

    /// Infinity norm (max absolute row sum).
    pub fn inf_norm(&self) -> f64 {
        let mut row_sums = vec![0.0f64; self.rows];
        for j in 0..self.cols {
            let col = self.col(j);
            for i in 0..self.rows {
                row_sums[i] += col[i].abs();
            }
        }
        row_sums.into_iter().fold(0.0, f64::max)
    }
}

/// A mutable view over a contiguous range of columns (see
/// [`Matrix::split_cols_mut`]).
pub struct ColsMut<'a> {
    rows: usize,
    cols: usize,
    data: &'a mut [f64],
}

impl<'a> ColsMut<'a> {
    /// Number of rows in the view.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns in the view.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow column `j` of the view.
    pub fn col(&self, j: usize) -> &[f64] {
        &self.data[j * self.rows..(j + 1) * self.rows]
    }

    /// Mutably borrow column `j` of the view.
    pub fn col_mut(&mut self, j: usize) -> &mut [f64] {
        &mut self.data[j * self.rows..(j + 1) * self.rows]
    }

    /// Split the view itself into disjoint per-column mutable slices.
    pub fn par_columns(&mut self) -> impl Iterator<Item = &mut [f64]> {
        self.data.chunks_mut(self.rows)
    }

    /// The raw backing slice of the view.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        self.data
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[j * self.rows + i]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[j * self.rows + i]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows.min(8) {
            write!(f, "  ")?;
            for j in 0..self.cols.min(8) {
                write!(f, "{:>10.4} ", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storage_is_column_major() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        // columns: (1,3), (2,4)
        assert_eq!(m.as_slice(), &[1.0, 3.0, 2.0, 4.0]);
        assert_eq!(m.col(0), &[1.0, 3.0]);
        assert_eq!(m.col(1), &[2.0, 4.0]);
    }

    #[test]
    fn identity_matvec_is_identity() {
        let i = Matrix::identity(4);
        let x = vec![1.0, -2.0, 3.0, 0.5];
        assert_eq!(i.matvec(&x), x);
    }

    #[test]
    fn matmul_ref_small() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul_ref(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn norms() {
        let m = Matrix::from_rows(&[&[1.0, -5.0], &[2.0, 2.0]]);
        assert_eq!(m.max_norm(), 5.0);
        assert_eq!(m.inf_norm(), 6.0);
    }

    #[test]
    fn split_cols_views_are_disjoint() {
        let mut m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        {
            let (left, mut right) = m.split_cols_mut(1);
            assert_eq!(left.cols(), 1);
            assert_eq!(right.cols(), 2);
            assert_eq!(left.col(0), &[1.0, 4.0]);
            right.col_mut(0)[0] = 99.0;
        }
        assert_eq!(m[(0, 1)], 99.0);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_panic() {
        let _ = Matrix::from_rows(&[&[1.0], &[1.0, 2.0]]);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn bad_buffer_panics() {
        let _ = Matrix::from_col_major(2, 2, vec![0.0; 3]);
    }
}
