//! Cache-blocked LU factorization — the paper's `glub4` analogue.
//!
//! The paper registers "glub4 and gslv4 routines which employ blocking
//! optimizations and could thus be executed efficiently on RISC-based
//! workstations" (§3.1), and on the J90 the 4-PE libSci `sgetrf`. Here the
//! blocked factorization defers the update of columns right of the current
//! panel until the panel is fully factored, so the panel stays resident in
//! cache during the rank-`nb` update; the parallel variant applies that
//! deferred update across columns with rayon (the 4-PE data-parallel stand-in).
//!
//! Both variants perform *bitwise-identical arithmetic* to the unblocked
//! [`crate::linpack::dgefa`] — every column still receives its updates in
//! ascending pivot order — so their outputs (factors and pivots) are exactly
//! equal, which the tests assert. They return the same storage convention
//! (negated multipliers, Linpack `ipvt`) and therefore work with
//! [`crate::linpack::dgesl`] unchanged.

use rayon::prelude::*;

use crate::linpack::Singular;
use crate::matrix::Matrix;

/// Default panel width. 32 keeps an n=1600 panel (~400 KiB) inside L2 on
/// modern hardware while amortizing the pass over the trailing matrix.
pub const DEFAULT_BLOCK: usize = 32;

/// Blocked LU with partial pivoting; sequential deferred updates.
///
/// `nb` is the panel width; `nb = 0` falls back to [`DEFAULT_BLOCK`].
pub fn dgefa_blocked(a: &mut Matrix, nb: usize) -> Result<Vec<usize>, Singular> {
    factor_blocked(a, nb, false)
}

/// Blocked LU with partial pivoting; the deferred panel update is applied to
/// trailing columns in parallel with rayon.
///
/// This is the stand-in for the paper's data-parallel 4-PE libSci execution:
/// one call occupies all processors.
pub fn dgefa_blocked_parallel(a: &mut Matrix, nb: usize) -> Result<Vec<usize>, Singular> {
    factor_blocked(a, nb, true)
}

fn factor_blocked(a: &mut Matrix, nb: usize, parallel: bool) -> Result<Vec<usize>, Singular> {
    let n = a.rows();
    assert_eq!(n, a.cols(), "blocked dgefa requires a square matrix");
    let nb = if nb == 0 { DEFAULT_BLOCK } else { nb };
    let mut ipvt = vec![0usize; n];
    if n == 0 {
        return Ok(ipvt);
    }

    let mut k0 = 0;
    while k0 < n {
        let panel_width = nb.min(n - k0);
        let panel_end = k0 + panel_width;

        // --- Panel factorization (unblocked, updates stay inside the panel).
        for k in k0..panel_end {
            let col_k = a.col(k);
            let l = k + idamax(&col_k[k..]);
            ipvt[k] = l;
            if a[(l, k)] == 0.0 {
                return Err(Singular { column: k });
            }
            if l != k {
                a.col_mut(k).swap(l, k);
            }
            if k == n - 1 {
                break; // no multipliers below the last diagonal
            }
            let t = -1.0 / a[(k, k)];
            {
                let col = a.col_mut(k);
                for v in &mut col[k + 1..] {
                    *v *= t;
                }
            }
            // Update the remaining panel columns immediately.
            let (head, mut tail) = a.split_cols_mut(k + 1);
            let mults = &head.col(k)[k + 1..];
            let panel_cols_right = panel_end - (k + 1);
            for j in 0..panel_cols_right {
                let col = tail.col_mut(j);
                if l != k {
                    col.swap(l, k);
                }
                let (upper, lower) = col.split_at_mut(k + 1);
                daxpy(upper[k], mults, lower);
            }
        }

        // --- Deferred update of all columns right of the panel.
        if panel_end < n {
            let pivots = &ipvt[k0..panel_end];
            let (panel, mut trailing) = a.split_cols_mut(panel_end);
            let rows = n;
            let apply = |col: &mut [f64]| {
                for (&l, k) in pivots.iter().zip(k0..panel_end) {
                    if k == n - 1 {
                        break;
                    }
                    if l != k {
                        col.swap(l, k);
                    }
                    let mults = &panel.col(k)[k + 1..];
                    let (upper, lower) = col.split_at_mut(k + 1);
                    daxpy(upper[k], mults, lower);
                }
            };
            if parallel {
                trailing.as_mut_slice().par_chunks_mut(rows).for_each(apply);
            } else {
                for chunk in trailing.as_mut_slice().chunks_mut(rows) {
                    apply(chunk);
                }
            }
        }

        k0 = panel_end;
    }

    // Match unblocked dgefa's final bookkeeping.
    ipvt[n - 1] = n - 1;
    if a[(n - 1, n - 1)] == 0.0 {
        return Err(Singular { column: n - 1 });
    }
    Ok(ipvt)
}

/// Solve `A·X = B` for many right-hand sides using factors from any of the
/// `dgefa*` variants; the columns of `b` are solved in place, in parallel
/// with rayon (the `gslv4` analogue: the solve phase of the 4-PE library).
pub fn dgesl_multi(a: &Matrix, ipvt: &[usize], b: &mut Matrix) {
    assert_eq!(a.rows(), a.cols(), "square factors required");
    assert_eq!(b.rows(), a.rows(), "rhs row mismatch");
    let n = a.rows();
    b.as_mut_slice().par_chunks_mut(n).for_each(|col| {
        crate::linpack::dgesl(a, ipvt, col);
    });
}

#[inline]
fn idamax(x: &[f64]) -> usize {
    let mut best = 0;
    let mut best_val = 0.0f64;
    for (i, &v) in x.iter().enumerate() {
        let a = v.abs();
        if a > best_val {
            best_val = a;
            best = i;
        }
    }
    best
}

#[inline]
fn daxpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    if alpha == 0.0 {
        return;
    }
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linpack::{dgefa, dgesl, matgen, residual_check};

    #[test]
    fn blocked_equals_unblocked_bitwise() {
        for n in [1usize, 2, 3, 7, 17, 64, 65, 100] {
            let (orig, _) = matgen(n);
            let mut a_ref = orig.clone();
            let ip_ref = dgefa(&mut a_ref).unwrap();
            for nb in [1usize, 2, 8, 32, 1000] {
                let mut a_blk = orig.clone();
                let ip_blk = dgefa_blocked(&mut a_blk, nb).unwrap();
                assert_eq!(ip_blk, ip_ref, "pivots differ at n={n} nb={nb}");
                assert_eq!(
                    a_blk.as_slice(),
                    a_ref.as_slice(),
                    "factors differ at n={n} nb={nb}"
                );
            }
        }
    }

    #[test]
    fn parallel_equals_sequential_bitwise() {
        for n in [33usize, 100, 150] {
            let (orig, _) = matgen(n);
            let mut a_seq = orig.clone();
            let ip_seq = dgefa_blocked(&mut a_seq, 16).unwrap();
            let mut a_par = orig.clone();
            let ip_par = dgefa_blocked_parallel(&mut a_par, 16).unwrap();
            assert_eq!(ip_par, ip_seq);
            assert_eq!(a_par.as_slice(), a_seq.as_slice());
        }
    }

    #[test]
    fn blocked_factors_solve_correctly() {
        let n = 120;
        let (orig, b) = matgen(n);
        let mut a = orig.clone();
        let ipvt = dgefa_blocked(&mut a, DEFAULT_BLOCK).unwrap();
        let mut x = b.clone();
        dgesl(&a, &ipvt, &mut x);
        assert!(residual_check(&orig, &x, &b) < 50.0);
        for xi in &x {
            assert!((xi - 1.0).abs() < 1e-8);
        }
    }

    #[test]
    fn singular_detected_in_blocked() {
        let mut a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(dgefa_blocked(&mut a, 8).is_err());
    }

    #[test]
    fn zero_sized_ok() {
        let mut a = Matrix::zeros(0, 0);
        assert!(dgefa_blocked(&mut a, 8).unwrap().is_empty());
    }

    #[test]
    fn multi_rhs_solve_matches_column_by_column() {
        let n = 60;
        let k = 7;
        let (orig, _) = matgen(n);
        let mut fact = orig.clone();
        let ipvt = dgefa_blocked(&mut fact, 16).unwrap();

        // B's columns: A times distinct known solutions.
        let mut solutions = Vec::new();
        let mut b = Matrix::zeros(n, k);
        for j in 0..k {
            let x: Vec<f64> = (0..n).map(|i| ((i + j) % 5) as f64 - 2.0).collect();
            let bx = orig.matvec(&x);
            b.col_mut(j).copy_from_slice(&bx);
            solutions.push(x);
        }
        dgesl_multi(&fact, &ipvt, &mut b);
        for (j, expect) in solutions.iter().enumerate() {
            // Also check against the sequential single-RHS path, bitwise.
            let mut single = orig.matvec(expect);
            crate::linpack::dgesl(&fact, &ipvt, &mut single);
            assert_eq!(b.col(j), &single[..], "column {j} diverges from dgesl");
            for (xi, ti) in b.col(j).iter().zip(expect) {
                assert!((xi - ti).abs() < 1e-7, "col {j}: {xi} vs {ti}");
            }
        }
    }

    #[test]
    fn multi_rhs_zero_columns_ok() {
        let (orig, _) = matgen(10);
        let mut fact = orig.clone();
        let ipvt = dgefa_blocked(&mut fact, 4).unwrap();
        let mut b = Matrix::zeros(10, 0);
        dgesl_multi(&fact, &ipvt, &mut b);
        assert_eq!(b.cols(), 0);
    }

    #[test]
    fn nb_zero_uses_default() {
        let (orig, _) = matgen(50);
        let mut a1 = orig.clone();
        let mut a2 = orig.clone();
        let p1 = dgefa_blocked(&mut a1, 0).unwrap();
        let p2 = dgefa_blocked(&mut a2, DEFAULT_BLOCK).unwrap();
        assert_eq!(p1, p2);
        assert_eq!(a1.as_slice(), a2.as_slice());
    }
}
