//! The classic Linpack routines: `dgefa` (LU factorization with partial
//! pivoting) and `dgesl` (solve using the factors), in the column-oriented
//! formulation of the original Fortran, plus the standard Linpack benchmark
//! matrix generator and residual check.
//!
//! These are the routines the paper registers remotely: "For double precision
//! Linpack, we execute the LU-decomposition (dgefa) and backward substitution
//! (dgesl) remotely" (§3.1).

use crate::matrix::Matrix;

/// Error from the factorization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Singular {
    /// Column index where a zero pivot was found.
    pub column: usize,
}

impl std::fmt::Display for Singular {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "matrix is singular: zero pivot at column {}",
            self.column
        )
    }
}

impl std::error::Error for Singular {}

/// Index of the element with largest magnitude (BLAS `idamax`).
#[inline]
fn idamax(x: &[f64]) -> usize {
    let mut best = 0;
    let mut best_val = 0.0f64;
    for (i, &v) in x.iter().enumerate() {
        let a = v.abs();
        if a > best_val {
            best_val = a;
            best = i;
        }
    }
    best
}

/// `y += alpha * x` (BLAS `daxpy`).
#[inline]
fn daxpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    if alpha == 0.0 {
        return;
    }
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Factor `a` in place as `P·A = L·U` with partial pivoting.
///
/// On success returns the pivot vector `ipvt` (Linpack convention: `ipvt[k]`
/// is the row swapped with row `k` at step `k`). The factors overwrite `a`
/// exactly like the Fortran `dgefa`: multipliers are stored *negated* below
/// the diagonal.
pub fn dgefa(a: &mut Matrix) -> Result<Vec<usize>, Singular> {
    let n = a.rows();
    assert_eq!(n, a.cols(), "dgefa requires a square matrix");
    let mut ipvt = vec![0usize; n];
    if n == 0 {
        return Ok(ipvt);
    }

    for k in 0..n - 1 {
        // Find pivot in column k at or below the diagonal.
        let col_k = a.col(k);
        let l = k + idamax(&col_k[k..]);
        ipvt[k] = l;
        if a[(l, k)] == 0.0 {
            return Err(Singular { column: k });
        }
        // Interchange rows k and l in column k, compute multipliers.
        if l != k {
            let col = a.col_mut(k);
            col.swap(l, k);
        }
        let pivot = a[(k, k)];
        let t = -1.0 / pivot;
        {
            let col = a.col_mut(k);
            for v in &mut col[k + 1..] {
                *v *= t;
            }
        }
        // Update trailing columns: row interchange + rank-1 update.
        let (head, mut tail) = a.split_cols_mut(k + 1);
        let mults = &head.col(k)[k + 1..];
        for j in 0..tail.cols() {
            let col = tail.col_mut(j);
            if l != k {
                col.swap(l, k);
            }
            let (upper, lower) = col.split_at_mut(k + 1);
            daxpy(upper[k], mults, lower);
        }
    }
    ipvt[n - 1] = n - 1;
    if a[(n - 1, n - 1)] == 0.0 {
        return Err(Singular { column: n - 1 });
    }
    Ok(ipvt)
}

/// Solve `A·x = b` using the factors produced by [`dgefa`]; `b` is
/// overwritten with the solution (Fortran `dgesl` with `job = 0`).
pub fn dgesl(a: &Matrix, ipvt: &[usize], b: &mut [f64]) {
    let n = a.rows();
    assert_eq!(n, a.cols());
    assert_eq!(b.len(), n);
    assert_eq!(ipvt.len(), n);
    if n == 0 {
        return;
    }

    // Forward elimination: apply L^{-1} (and P) to b.
    for k in 0..n - 1 {
        let l = ipvt[k];
        let t = b[l];
        if l != k {
            b[l] = b[k];
            b[k] = t;
        }
        let col = a.col(k);
        daxpy(t, &col[k + 1..], &mut b[k + 1..]);
    }
    // Back substitution: solve U x = y.
    for k in (0..n).rev() {
        b[k] /= a[(k, k)];
        let t = -b[k];
        let col = a.col(k);
        daxpy(t, &col[..k], &mut b[..k]);
    }
}

/// Factor + solve in one call; returns the solution. This is the unit of one
/// benchmark `Ninf_call` (`linpack` in the registered IDL).
pub fn solve(a: &mut Matrix, b: &mut [f64]) -> Result<Vec<f64>, Singular> {
    let ipvt = dgefa(a)?;
    dgesl(a, &ipvt, b);
    Ok(b.to_vec())
}

/// The standard Linpack benchmark matrix generator (`matgen`): pseudo-random
/// entries from the historical `3125 mod 2^16` multiplicative congruential
/// generator, plus a right-hand side `b = A·ones`.
///
/// Faithful to the original, including its famous wart: the generator's
/// period is 16384, so once `n·n` exceeds one period with `n` a power of two
/// (n ≥ 256), whole columns repeat and the matrix is *exactly singular*.
/// Use [`random_matrix`] for arbitrary sizes.
pub fn matgen(n: usize) -> (Matrix, Vec<f64>) {
    let mut a = Matrix::zeros(n, n);
    let mut init: i64 = 1325;
    for j in 0..n {
        let col = a.col_mut(j);
        for v in col.iter_mut() {
            init = (3125 * init) % 65536;
            *v = (init as f64 - 32768.0) / 16384.0;
        }
    }
    // b = A * ones, so the true solution is all-ones.
    let b = a.matvec(&vec![1.0; n]);
    (a, b)
}

/// A robust random test system for arbitrary `n`: entries from the NAS
/// 46-bit generator in (-0.5, 0.5), right-hand side `b = A·ones`. Unlike
/// [`matgen`], non-singular (with overwhelming probability) at every size.
pub fn random_matrix(n: usize, seed: u64) -> (Matrix, Vec<f64>) {
    let mut g = crate::ep::NasRng::new(seed | 1);
    let data: Vec<f64> = (0..n * n).map(|_| g.next_f64() - 0.5).collect();
    let a = Matrix::from_col_major(n, n, data);
    let b = a.matvec(&vec![1.0; n]);
    (a, b)
}

/// Normalized Linpack residual `‖A·x − b‖∞ / (‖A‖∞ · ‖x‖∞ · n · ε)`.
///
/// The benchmark accepts the solve if this is O(1) — a few units. `a_orig`
/// must be the matrix *before* factorization.
pub fn residual_check(a_orig: &Matrix, x: &[f64], b: &[f64]) -> f64 {
    let n = a_orig.rows();
    let ax = a_orig.matvec(x);
    let resid = ax
        .iter()
        .zip(b)
        .fold(0.0f64, |acc, (axi, bi)| acc.max((axi - bi).abs()));
    let x_norm = x.iter().fold(0.0f64, |acc, v| acc.max(v.abs()));
    let a_norm = a_orig.inf_norm();
    resid / (a_norm * x_norm * n as f64 * f64::EPSILON).max(f64::MIN_POSITIVE)
}

/// Floating-point operation count of one Linpack solve of order `n`
/// (paper §3.1: `2/3·n³ + 2·n²`).
pub fn linpack_flops(n: u64) -> u64 {
    (2 * n * n * n) / 3 + 2 * n * n
}

/// Bytes shipped over the network per remote Linpack call of order `n`
/// (paper §3.1: `8n² + 20n`).
pub fn linpack_message_bytes(n: u64) -> u64 {
    8 * n * n + 20 * n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factor_and_solve_known_system() {
        // A = [[4, 3], [6, 3]]; b = [10, 12] -> x = [1, 2]
        let mut a = Matrix::from_rows(&[&[4.0, 3.0], &[6.0, 3.0]]);
        let orig = a.clone();
        let mut b = vec![10.0, 12.0];
        let x = solve(&mut a, &mut b).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
        assert!(residual_check(&orig, &x, &[10.0, 12.0]) < 10.0);
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let mut a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let mut b = vec![2.0, 3.0];
        let x = solve(&mut a, &mut b).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn singular_matrix_detected() {
        let mut a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(matches!(dgefa(&mut a), Err(Singular { .. })));
    }

    #[test]
    fn zero_matrix_singular_at_first_column() {
        let mut a = Matrix::zeros(3, 3);
        assert_eq!(dgefa(&mut a), Err(Singular { column: 0 }));
    }

    #[test]
    fn matgen_is_deterministic_and_bounded() {
        let (a1, b1) = matgen(50);
        let (a2, b2) = matgen(50);
        assert_eq!(a1, a2);
        assert_eq!(b1, b2);
        assert!(a1.max_norm() <= 2.0);
    }

    #[test]
    fn benchmark_matrix_solves_to_ones() {
        let n = 100;
        let (orig, b) = matgen(n);
        let mut a = orig.clone();
        let mut rhs = b.clone();
        let x = solve(&mut a, &mut rhs).unwrap();
        for xi in &x {
            assert!((xi - 1.0).abs() < 1e-8, "entry {xi} deviates from 1");
        }
        assert!(residual_check(&orig, &x, &b) < 50.0);
    }

    #[test]
    fn empty_system_is_ok() {
        let mut a = Matrix::zeros(0, 0);
        let mut b: Vec<f64> = vec![];
        assert!(solve(&mut a, &mut b).unwrap().is_empty());
    }

    #[test]
    fn one_by_one() {
        let mut a = Matrix::from_rows(&[&[4.0]]);
        let mut b = vec![8.0];
        assert_eq!(solve(&mut a, &mut b).unwrap(), vec![2.0]);
    }

    #[test]
    fn matgen_singular_at_power_of_two_as_documented() {
        // The historical generator's period (16384) makes n=256 exactly
        // singular: column 64 repeats column 0.
        let (mut a, _) = matgen(256);
        assert!(dgefa(&mut a).is_err());
        // ...while n=128 (exactly one period) is fine.
        let (mut a, _) = matgen(128);
        assert!(dgefa(&mut a).is_ok());
    }

    #[test]
    fn random_matrix_solves_at_awkward_sizes() {
        for n in [128usize, 256] {
            let (orig, b) = random_matrix(n, 7);
            let mut a = orig.clone();
            let mut rhs = b.clone();
            let x = solve(&mut a, &mut rhs).unwrap();
            assert!(residual_check(&orig, &x, &b) < 100.0, "n = {n}");
        }
    }

    #[test]
    fn flops_monotone_in_n() {
        let mut last = 0;
        for n in [100u64, 200, 600, 1000, 1400, 1600] {
            let f = linpack_flops(n);
            assert!(f > last);
            last = f;
        }
    }
}
