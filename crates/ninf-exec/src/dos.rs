//! Density-of-states (DOS) Monte-Carlo estimate — the paper's "EP-style
//! practical application in computational chemistry" (§4.3.1).
//!
//! We estimate the density of states of a system whose energy is the sum of
//! `k` independent uniform level occupations: `E = Σ u_i`, `u_i ~ U(0,1)`
//! (an Irwin–Hall density). Like EP, the kernel is embarrassingly parallel
//! with O(1) communication: it returns only a histogram.

use rayon::prelude::*;

use crate::ep::NasRng;

/// Result of a DOS estimation run.
#[derive(Debug, Clone, PartialEq)]
pub struct DosResult {
    /// Histogram of sampled energies over `[0, k]`, `bins` buckets.
    pub histogram: Vec<u64>,
    /// Number of samples drawn.
    pub samples: u64,
    /// Number of uniform levels summed per sample.
    pub levels: u32,
}

impl DosResult {
    /// Normalized density estimate (integrates to ~1 over `[0, levels]`).
    pub fn density(&self) -> Vec<f64> {
        let bin_width = self.levels as f64 / self.histogram.len() as f64;
        let norm = 1.0 / (self.samples as f64 * bin_width);
        self.histogram.iter().map(|&c| c as f64 * norm).collect()
    }

    /// Merge with another run over the same geometry.
    pub fn merge(&self, other: &DosResult) -> DosResult {
        assert_eq!(self.histogram.len(), other.histogram.len());
        assert_eq!(self.levels, other.levels);
        DosResult {
            histogram: self
                .histogram
                .iter()
                .zip(&other.histogram)
                .map(|(a, b)| a + b)
                .collect(),
            samples: self.samples + other.samples,
            levels: self.levels,
        }
    }
}

/// Draw `2^m` energy samples of `levels` uniform levels each and histogram
/// them into `bins` buckets over `[0, levels]`.
pub fn dos_histogram(m: u32, levels: u32, bins: usize) -> DosResult {
    dos_segment(NasRng::default(), 0, 1u64 << m, levels, bins)
}

/// Parallel version partitioning one global stream across `workers`; integer
/// results are bitwise identical to [`dos_histogram`].
pub fn dos_histogram_parallel(m: u32, levels: u32, bins: usize, workers: usize) -> DosResult {
    let total: u64 = 1 << m;
    let workers = workers.max(1) as u64;
    let chunk = total.div_ceil(workers);
    (0..workers)
        .into_par_iter()
        .map(|w| {
            let start = w * chunk;
            let len = chunk.min(total.saturating_sub(start));
            dos_segment(NasRng::default(), start, len, levels, bins)
        })
        .reduce_with(|a, b| a.merge(&b))
        .unwrap_or(DosResult {
            histogram: vec![0; bins],
            samples: 0,
            levels,
        })
}

fn dos_segment(base: NasRng, start: u64, len: u64, levels: u32, bins: usize) -> DosResult {
    assert!(bins > 0, "need at least one bin");
    assert!(levels > 0, "need at least one level");
    let mut g = base.at_offset(start * levels as u64);
    let mut histogram = vec![0u64; bins];
    for _ in 0..len {
        let mut e = 0.0f64;
        for _ in 0..levels {
            e += g.next_f64();
        }
        let idx = ((e / levels as f64) * bins as f64) as usize;
        histogram[idx.min(bins - 1)] += 1;
    }
    DosResult {
        histogram,
        samples: len,
        levels,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_counts_all_samples() {
        let r = dos_histogram(12, 4, 32);
        assert_eq!(r.histogram.iter().sum::<u64>(), 1 << 12);
        assert_eq!(r.samples, 1 << 12);
    }

    #[test]
    fn density_peaks_at_center() {
        // Irwin-Hall with k=8 concentrates around k/2.
        let r = dos_histogram(14, 8, 16);
        let d = r.density();
        let center = (d[7] + d[8]) / 2.0;
        assert!(center > d[0] * 10.0, "center {center} vs edge {}", d[0]);
        assert!(center > d[15] * 10.0);
    }

    #[test]
    fn density_integrates_to_one() {
        let r = dos_histogram(14, 4, 20);
        let bin_width = 4.0 / 20.0;
        let integral: f64 = r.density().iter().map(|p| p * bin_width).sum();
        assert!((integral - 1.0).abs() < 1e-9);
    }

    #[test]
    fn parallel_matches_serial() {
        let serial = dos_histogram(12, 4, 16);
        for workers in [1usize, 2, 3, 8] {
            let par = dos_histogram_parallel(12, 4, 16, workers);
            assert_eq!(par.histogram, serial.histogram, "workers = {workers}");
            assert_eq!(par.samples, serial.samples);
        }
    }

    #[test]
    fn merge_accumulates() {
        let a = dos_histogram(8, 2, 8);
        let b = dos_histogram(8, 2, 8);
        let m = a.merge(&b);
        assert_eq!(m.samples, 2 * a.samples);
        assert_eq!(m.histogram[3], a.histogram[3] + b.histogram[3]);
    }

    #[test]
    #[should_panic(expected = "bin")]
    fn zero_bins_panics() {
        let _ = dos_histogram(4, 2, 0);
    }
}
