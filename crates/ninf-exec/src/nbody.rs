//! Iterative N-body probe-force kernel: softened direct summation of the
//! gravity of a *fixed* particle set at a small, per-iteration probe grid.
//!
//! This is the evaluation phase of a treecode-style pipeline: the source
//! distribution (masses + positions) is frozen for the whole run while each
//! iteration evaluates the field at a handful of probe points that move with
//! the iteration number. The call signature is exactly the shape that makes
//! a WAN client bandwidth-bound — O(n) input arrays that never change
//! between calls, O(1) output — so it is the natural workload for the
//! content-addressed argument cache: only the first call ships the particle
//! arrays, every later iteration names them by digest.

use rayon::prelude::*;

use crate::ep::NasRng;

/// Probe points evaluated per iteration (fixed, so output is O(1)).
pub const NBODY_PROBES: usize = 64;

/// Plummer softening length, in units of the system radius.
pub const NBODY_SOFTENING: f64 = 0.05;

/// Floating-point operations per particle–probe interaction: 3 subs, 3
/// mults + 2 adds (r²), 1 add (softening), sqrt + divide (~4), 1 mass
/// divide, 3 mult + 3 add (acceleration), 1 add (potential) ≈ 22.
pub const NBODY_FLOPS_PER_INTERACTION: f64 = 22.0;

/// Flop count of one `nbody` call over `n` source particles.
pub fn nbody_flops(n: usize) -> f64 {
    (n * NBODY_PROBES) as f64 * NBODY_FLOPS_PER_INTERACTION
}

/// Deterministic source distribution: `n` equal-mass particles in a unit
/// ball, positions from the NAS LCG so every client (and every seed sweep)
/// regenerates bitwise-identical arrays. Returns `(masses[n], pos[3n])`
/// with positions stored `[x0 y0 z0 x1 y1 z1 …]`.
pub fn nbody_particles(n: usize) -> (Vec<f64>, Vec<f64>) {
    let mut g = NasRng::default();
    let masses = vec![1.0 / n.max(1) as f64; n];
    let mut pos = Vec::with_capacity(3 * n);
    while pos.len() < 3 * n {
        // Rejection-sample the unit ball for a roughly uniform cloud.
        let x = 2.0 * g.next_f64() - 1.0;
        let y = 2.0 * g.next_f64() - 1.0;
        let z = 2.0 * g.next_f64() - 1.0;
        if x * x + y * y + z * z <= 1.0 {
            pos.extend_from_slice(&[x, y, z]);
        }
    }
    (masses, pos)
}

/// Probe grid for iteration `step`: [`NBODY_PROBES`] points on a ring of
/// radius 1.5 that precesses with the iteration number, so successive calls
/// measure the field along a slowly sweeping orbit.
pub fn nbody_probes(step: u32) -> Vec<f64> {
    let phase = f64::from(step) * 0.1;
    let tilt = (f64::from(step) * 0.02).sin() * 0.3;
    (0..NBODY_PROBES)
        .flat_map(|i| {
            let theta = phase + i as f64 * (2.0 * std::f64::consts::PI / NBODY_PROBES as f64);
            let r = 1.5;
            [
                r * theta.cos(),
                r * theta.sin() * (1.0 - tilt * tilt).sqrt(),
                r * theta.sin() * tilt,
            ]
        })
        .collect()
}

/// Diagnostics of one evaluation sweep, the call's O(1) reply.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NbodyDiag {
    /// Total potential summed over the probe grid.
    pub potential: f64,
    /// Largest acceleration magnitude over the probes.
    pub max_acc: f64,
    /// Net acceleration vector summed over the probes.
    pub acc_sum: [f64; 3],
}

impl NbodyDiag {
    /// Pack as the wire reply `diag[5]`.
    pub fn to_vec(self) -> Vec<f64> {
        vec![
            self.potential,
            self.max_acc,
            self.acc_sum[0],
            self.acc_sum[1],
            self.acc_sum[2],
        ]
    }
}

/// Evaluate softened gravity of (`masses`, `pos`) at the step-`step` probe
/// grid by direct summation, one rayon task per probe.
///
/// `masses.len() == n`, `pos.len() == 3n`; probes outnumber cores so the
/// parallel split is even, and per-probe sums are accumulated serially so
/// the result is deterministic for a given particle set and step.
pub fn nbody_kernel(masses: &[f64], pos: &[f64], step: u32) -> NbodyDiag {
    assert_eq!(pos.len(), 3 * masses.len(), "pos must hold 3n coordinates");
    let probes = nbody_probes(step);
    let eps2 = NBODY_SOFTENING * NBODY_SOFTENING;
    let per_probe: Vec<(f64, [f64; 3])> = (0..NBODY_PROBES)
        .into_par_iter()
        .map(|k| {
            let p = &probes[3 * k..3 * k + 3];
            let mut phi = 0.0f64;
            let mut acc = [0.0f64; 3];
            for (i, &m) in masses.iter().enumerate() {
                let dx = pos[3 * i] - p[0];
                let dy = pos[3 * i + 1] - p[1];
                let dz = pos[3 * i + 2] - p[2];
                let r2 = dx * dx + dy * dy + dz * dz + eps2;
                let inv_r = 1.0 / r2.sqrt();
                let inv_r3 = inv_r / r2;
                phi -= m * inv_r;
                acc[0] += m * dx * inv_r3;
                acc[1] += m * dy * inv_r3;
                acc[2] += m * dz * inv_r3;
            }
            (phi, acc)
        })
        .collect();
    let mut diag = NbodyDiag {
        potential: 0.0,
        max_acc: 0.0,
        acc_sum: [0.0; 3],
    };
    for (phi, acc) in per_probe {
        diag.potential += phi;
        let mag = (acc[0] * acc[0] + acc[1] * acc[1] + acc[2] * acc[2]).sqrt();
        diag.max_acc = diag.max_acc.max(mag);
        for (s, a) in diag.acc_sum.iter_mut().zip(acc) {
            *s += a;
        }
    }
    diag
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn particles_are_deterministic_and_in_the_unit_ball() {
        let (m1, p1) = nbody_particles(100);
        let (m2, p2) = nbody_particles(100);
        assert_eq!(m1, m2);
        assert_eq!(p1, p2);
        assert_eq!(m1.len(), 100);
        assert_eq!(p1.len(), 300);
        for c in p1.chunks_exact(3) {
            assert!(c[0] * c[0] + c[1] * c[1] + c[2] * c[2] <= 1.0 + 1e-12);
        }
        assert!((m1.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn probes_depend_on_the_step() {
        assert_ne!(nbody_probes(0), nbody_probes(1));
        assert_eq!(nbody_probes(3), nbody_probes(3));
        assert_eq!(nbody_probes(0).len(), 3 * NBODY_PROBES);
    }

    #[test]
    fn kernel_is_deterministic_per_step() {
        let (m, p) = nbody_particles(200);
        let a = nbody_kernel(&m, &p, 5);
        let b = nbody_kernel(&m, &p, 5);
        assert_eq!(a, b);
        assert_ne!(a, nbody_kernel(&m, &p, 6));
    }

    #[test]
    fn potential_is_negative_and_attractive_toward_the_cloud() {
        // Probes orbit outside a unit-mass cloud at the origin: the
        // potential is negative and roughly -M/r per probe, and the net
        // acceleration over a symmetric ring nearly cancels.
        let (m, p) = nbody_particles(500);
        let d = nbody_kernel(&m, &p, 0);
        assert!(d.potential < 0.0);
        let per_probe = d.potential / NBODY_PROBES as f64;
        assert!((-1.0..-0.4).contains(&per_probe), "phi/probe = {per_probe}");
        assert!(d.max_acc > 0.0);
    }

    #[test]
    fn flops_scale_linearly_with_sources() {
        assert_eq!(nbody_flops(2000), 2.0 * nbody_flops(1000));
        assert!(nbody_flops(1000) > 1e6);
    }
}
