//! Numerical kernels registered as *Ninf executables* on computational
//! servers.
//!
//! The SC'97 evaluation drives two application cores (paper §1, §3):
//!
//! * **Linpack** — LU factorization (`dgefa`) + back-substitution (`dgesl`),
//!   shipping dense matrices over the network: `8n² + 20n` bytes of traffic
//!   against `2/3·n³ + 2n²` flops. We provide the classic unblocked
//!   column-oriented routines, a blocked right-looking variant (the paper's
//!   `glub4`/`gslv4` "blocking optimizations … executed efficiently on
//!   RISC-based workstations"), and a rayon-parallel blocked variant standing
//!   in for the 4-PE libSci `sgetrf`/`sgetrs`.
//! * **NAS EP** — the embarrassingly parallel Monte-Carlo kernel with the
//!   official power-of-two linear congruential generator, O(1) communication.
//!
//! Plus the `dmmul` running example of §2 and a density-of-states (`dos`)
//! Monte-Carlo kernel, the "EP-style practical application in computational
//! chemistry" of §4.3.1.

pub mod blocked;
pub mod condition;
pub mod dmmul;
pub mod dos;
pub mod ep;
pub mod linpack;
pub mod matrix;
pub mod nbody;

pub use blocked::{dgefa_blocked, dgefa_blocked_parallel, dgesl_multi, DEFAULT_BLOCK};
pub use condition::{dgeco, dgesl_t};
pub use dmmul::{dmmul, dmmul_blocked, dmmul_parallel};
pub use dos::{dos_histogram, DosResult};
pub use ep::{
    ep_kernel, ep_kernel_parallel, ep_segment, ep_segment_any, EpResult, NasRng, EP_GAUSSIAN_BINS,
};
pub use linpack::{
    dgefa, dgesl, linpack_flops, linpack_message_bytes, matgen, random_matrix, residual_check,
    solve,
};
pub use matrix::Matrix;
pub use nbody::{
    nbody_flops, nbody_kernel, nbody_particles, nbody_probes, NbodyDiag, NBODY_PROBES,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flops_and_bytes_match_paper_models() {
        // Paper §3.1: T_comp work is 2/3 n^3 + 2 n^2; T_comm volume is 8n^2 + 20n.
        assert_eq!(linpack_flops(600), (2 * 600u64.pow(3)) / 3 + 2 * 600 * 600);
        assert_eq!(linpack_message_bytes(600), 8 * 600 * 600 + 20 * 600);
    }

    #[test]
    fn end_to_end_solve_small_system() {
        // 2x2: [[2, 1], [1, 3]] x = [3, 5] -> x = [0.8, 1.4]
        let mut a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let mut b = vec![3.0, 5.0];
        let x = solve(&mut a, &mut b).unwrap();
        assert!((x[0] - 0.8).abs() < 1e-12);
        assert!((x[1] - 1.4).abs() < 1e-12);
    }
}
