//! `dmmul` — double-precision matrix multiply, the running example of the
//! paper's §2 (`Ninf_call("dmmul", n, A, B, C)`).

use rayon::prelude::*;

use crate::matrix::Matrix;

/// Naive triple loop in column-major-friendly (j, k, i) order.
pub fn dmmul(a: &Matrix, b: &Matrix) -> Matrix {
    a.matmul_ref(b)
}

/// Cache-blocked multiply. Identical results to [`dmmul`] up to FP
/// reassociation; with the (j, k, i) inner order and per-(j,k) rank-1 updates
/// the accumulation order per output element is in fact identical, so results
/// are bitwise equal — asserted in tests.
pub fn dmmul_blocked(a: &Matrix, b: &Matrix, block: usize) -> Matrix {
    assert_eq!(a.cols(), b.rows(), "dimension mismatch");
    let block = block.max(1);
    let m = a.rows();
    let n = b.cols();
    let kk = a.cols();
    let mut c = Matrix::zeros(m, n);
    for j0 in (0..n).step_by(block) {
        let j1 = (j0 + block).min(n);
        for k0 in (0..kk).step_by(block) {
            let k1 = (k0 + block).min(kk);
            for j in j0..j1 {
                for k in k0..k1 {
                    let bkj = b[(k, j)];
                    if bkj != 0.0 {
                        let col_a = a.col(k);
                        let col_c = c.col_mut(j);
                        for i in 0..m {
                            col_c[i] += col_a[i] * bkj;
                        }
                    }
                }
            }
        }
    }
    c
}

/// Rayon-parallel multiply: output columns are computed independently.
/// Bitwise equal to [`dmmul`] (each column's accumulation order is unchanged).
pub fn dmmul_parallel(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.rows(), "dimension mismatch");
    let m = a.rows();
    let n = b.cols();
    let mut c = Matrix::zeros(m, n);
    c.as_mut_slice()
        .par_chunks_mut(m)
        .enumerate()
        .for_each(|(j, col_c)| {
            for k in 0..a.cols() {
                let bkj = b[(k, j)];
                if bkj != 0.0 {
                    let col_a = a.col(k);
                    for i in 0..m {
                        col_c[i] += col_a[i] * bkj;
                    }
                }
            }
        });
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_matrix(rows: usize, cols: usize, seed: f64) -> Matrix {
        let mut m = Matrix::zeros(rows, cols);
        for j in 0..cols {
            for i in 0..rows {
                m[(i, j)] = ((i * 31 + j * 17) as f64 * seed).sin();
            }
        }
        m
    }

    #[test]
    fn identity_is_neutral() {
        let a = test_matrix(6, 6, 0.7);
        let i = Matrix::identity(6);
        assert_eq!(dmmul(&a, &i), a);
        assert_eq!(dmmul(&i, &a), a);
    }

    #[test]
    fn blocked_matches_naive_bitwise() {
        let a = test_matrix(17, 23, 0.3);
        let b = test_matrix(23, 11, 0.9);
        let reference = dmmul(&a, &b);
        for block in [1usize, 2, 5, 8, 64] {
            assert_eq!(dmmul_blocked(&a, &b, block), reference, "block = {block}");
        }
    }

    #[test]
    fn parallel_matches_naive_bitwise() {
        let a = test_matrix(40, 40, 0.13);
        let b = test_matrix(40, 40, 0.77);
        assert_eq!(dmmul_parallel(&a, &b), dmmul(&a, &b));
    }

    #[test]
    fn rectangular_shapes() {
        let a = test_matrix(3, 5, 1.1);
        let b = test_matrix(5, 2, 0.4);
        let c = dmmul(&a, &b);
        assert_eq!(c.rows(), 3);
        assert_eq!(c.cols(), 2);
        // spot check one entry against a manual dot product
        let mut expect = 0.0;
        for k in 0..5 {
            expect += a[(1, k)] * b[(k, 0)];
        }
        assert!((c[(1, 0)] - expect).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn mismatched_dims_panic() {
        let a = test_matrix(3, 4, 1.0);
        let b = test_matrix(5, 2, 1.0);
        let _ = dmmul_blocked(&a, &b, 4);
    }
}
