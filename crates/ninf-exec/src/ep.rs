//! NAS Parallel Benchmarks EP kernel — "An embarrassingly parallel benchmark
//! … performing (random-number) Monte-Carlo simulations" (paper §4.3).
//!
//! Faithful to the NPB specification: the power-of-two linear congruential
//! generator `x_{k+1} = a·x_k mod 2^46` with `a = 5^13`, pairs of uniforms
//! mapped to `(-1, 1)`, acceptance `t = x² + y² ≤ 1`, Gaussian deviates via
//! the Marsaglia polar method, counted into ten square annuli
//! `l = ⌊max(|X|, |Y|)⌋`. Communication is O(1): a call returns two sums and
//! ten counts regardless of the number of trials, which is why EP sustains
//! LAN-equal performance over WAN (paper Table 8).
//!
//! The generator supports O(log k) skip-ahead, so the task-parallel execution
//! (one batch per PE / per Ninf server, §4.3.1) partitions a single global
//! random stream — the parallel integer outputs are *bitwise identical* to
//! the serial ones, which the tests assert.

use rayon::prelude::*;

/// Number of square-annulus bins in the NPB EP specification.
pub const EP_GAUSSIAN_BINS: usize = 10;

/// NPB multiplier `a = 5^13`.
const A: u64 = 1_220_703_125;
/// Default NPB seed.
const DEFAULT_SEED: u64 = 271_828_183;
/// Modulus mask for mod 2^46.
const MASK46: u64 = (1 << 46) - 1;
/// 2^-46 for mapping to (0,1).
const R46: f64 = 1.0 / (1u64 << 46) as f64;

/// The NAS power-of-two linear congruential generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NasRng {
    state: u64,
}

impl Default for NasRng {
    fn default() -> Self {
        Self::new(DEFAULT_SEED)
    }
}

impl NasRng {
    /// Create with an explicit seed (must be odd and < 2^46 per NPB; even
    /// seeds degenerate, so the constructor forces the low bit).
    pub fn new(seed: u64) -> Self {
        Self {
            state: (seed | 1) & MASK46,
        }
    }

    /// Current state.
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Next raw 46-bit value.
    #[inline]
    pub fn next_raw(&mut self) -> u64 {
        self.state = mulmod46(A, self.state);
        self.state
    }

    /// Next uniform deviate in (0, 1).
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        self.next_raw() as f64 * R46
    }

    /// Skip `k` steps ahead in O(log k): multiplies the state by `a^k mod 2^46`.
    pub fn skip(&mut self, k: u64) {
        self.state = mulmod46(powmod46(A, k), self.state);
    }

    /// A generator positioned `k` steps after this one, without advancing `self`.
    pub fn at_offset(&self, k: u64) -> Self {
        let mut g = *self;
        g.skip(k);
        g
    }
}

#[inline]
fn mulmod46(a: u64, b: u64) -> u64 {
    ((a as u128 * b as u128) & MASK46 as u128) as u64
}

fn powmod46(mut base: u64, mut exp: u64) -> u64 {
    let mut acc: u64 = 1;
    base &= MASK46;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mulmod46(acc, base);
        }
        base = mulmod46(base, base);
        exp >>= 1;
    }
    acc
}

/// Result of an EP batch: the NPB verification quantities.
#[derive(Debug, Clone, PartialEq)]
pub struct EpResult {
    /// Sum of accepted Gaussian X deviates.
    pub sx: f64,
    /// Sum of accepted Gaussian Y deviates.
    pub sy: f64,
    /// Pair counts per square annulus `⌊max(|X|,|Y|)⌋ ∈ [0, 10)`.
    pub counts: [u64; EP_GAUSSIAN_BINS],
    /// Total pairs accepted (Σ counts).
    pub accepted: u64,
    /// Total pair trials attempted (2^m).
    pub trials: u64,
}

impl EpResult {
    /// Merge two batch results (used by task-parallel execution).
    pub fn merge(&self, other: &EpResult) -> EpResult {
        let mut counts = self.counts;
        for (c, o) in counts.iter_mut().zip(&other.counts) {
            *c += o;
        }
        EpResult {
            sx: self.sx + other.sx,
            sy: self.sy + other.sy,
            counts,
            accepted: self.accepted + other.accepted,
            trials: self.trials + other.trials,
        }
    }

    /// The paper's EP "operation" count: `2^{n+1}` for `2^n` trials (§4.3).
    pub fn ops(&self) -> u64 {
        self.trials * 2
    }
}

/// Run `2^m` pair trials serially from the default NPB seed.
pub fn ep_kernel(m: u32) -> EpResult {
    ep_segment(NasRng::default(), 0, 1u64 << m, 1u64 << m)
}

/// Run `2^m` pair trials, split across `workers` equal segments of one global
/// stream, executed with rayon.
///
/// Each worker processes a disjoint slice of the *same* stream via skip-ahead,
/// so the integer outputs (annulus counts, acceptance) are bitwise identical
/// to [`ep_kernel`]; the floating-point sums agree up to reassociation of the
/// per-segment partial sums.
///
/// This mirrors the paper's task-parallel EP: each Ninf server (or each J90
/// PE) processes one segment, and the client merges the O(1)-sized results.
pub fn ep_kernel_parallel(m: u32, workers: usize) -> EpResult {
    let total: u64 = 1 << m;
    let workers = workers.max(1) as u64;
    let base = NasRng::default();
    let chunk = total.div_ceil(workers);
    let partials: Vec<EpResult> = (0..workers)
        .into_par_iter()
        .map(|w| {
            let start = w * chunk;
            let len = chunk.min(total.saturating_sub(start));
            ep_segment(base, start, len, total)
        })
        .collect();
    let mut merged = partials.iter().fold(
        EpResult {
            sx: 0.0,
            sy: 0.0,
            counts: [0; EP_GAUSSIAN_BINS],
            accepted: 0,
            trials: 0,
        },
        |acc, p| acc.merge(p),
    );
    merged.trials = total;
    merged
}

/// Convenience: run trials `[start, start + len)` of the default stream.
pub fn ep_segment_any(start: u64, len: u64) -> EpResult {
    ep_segment(NasRng::default(), start, len, start + len)
}

/// Run pair trials `[start, start + len)` of the global stream seeded by `rng`.
///
/// Each pair trial consumes exactly two uniforms, so trial `i` starts at
/// stream offset `2 i`.
pub fn ep_segment(rng: NasRng, start: u64, len: u64, _total: u64) -> EpResult {
    let mut g = rng.at_offset(2 * start);
    let mut sx = 0.0f64;
    let mut sy = 0.0f64;
    let mut counts = [0u64; EP_GAUSSIAN_BINS];
    let mut accepted = 0u64;

    for _ in 0..len {
        let x = 2.0 * g.next_f64() - 1.0;
        let y = 2.0 * g.next_f64() - 1.0;
        let t = x * x + y * y;
        if t <= 1.0 && t > 0.0 {
            let factor = (-2.0 * t.ln() / t).sqrt();
            let gx = x * factor;
            let gy = y * factor;
            let l = gx.abs().max(gy.abs()) as usize;
            if l < EP_GAUSSIAN_BINS {
                counts[l] += 1;
                sx += gx;
                sy += gy;
                accepted += 1;
            }
        }
    }

    EpResult {
        sx,
        sy,
        counts,
        accepted,
        trials: len,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = NasRng::default();
        let mut b = NasRng::default();
        for _ in 0..100 {
            assert_eq!(a.next_raw(), b.next_raw());
        }
    }

    #[test]
    fn rng_stays_in_46_bits() {
        let mut g = NasRng::default();
        for _ in 0..1000 {
            assert!(g.next_raw() < (1 << 46));
        }
    }

    #[test]
    fn skip_matches_stepping() {
        for k in [0u64, 1, 2, 7, 100, 12345] {
            let mut stepped = NasRng::default();
            for _ in 0..k {
                stepped.next_raw();
            }
            let jumped = NasRng::default().at_offset(k);
            assert_eq!(jumped.state(), stepped.state(), "k = {k}");
        }
    }

    #[test]
    fn uniforms_are_open_unit_interval() {
        let mut g = NasRng::default();
        for _ in 0..10_000 {
            let u = g.next_f64();
            assert!(u > 0.0 && u < 1.0);
        }
    }

    #[test]
    fn acceptance_rate_near_pi_over_4() {
        let r = ep_kernel(16); // 65536 trials
        let rate = r.accepted as f64 / r.trials as f64;
        assert!(
            (rate - std::f64::consts::FRAC_PI_4).abs() < 0.01,
            "rate = {rate}"
        );
    }

    #[test]
    fn counts_sum_to_accepted() {
        let r = ep_kernel(14);
        assert_eq!(r.counts.iter().sum::<u64>(), r.accepted);
    }

    #[test]
    fn gaussian_moments_sane() {
        // Mean of a Gaussian sum over ~50k accepted pairs should be near 0
        // relative to the standard deviation of the sum (~sqrt(N)).
        let r = ep_kernel(16);
        let sigma = (r.accepted as f64).sqrt();
        assert!(r.sx.abs() < 5.0 * sigma, "sx = {}", r.sx);
        assert!(r.sy.abs() < 5.0 * sigma, "sy = {}", r.sy);
        // Nearly all mass lies in the first few annuli.
        assert!(r.counts[0] > r.counts[3]);
        assert!(r.counts[9] < r.accepted / 100 + 1);
    }

    #[test]
    fn parallel_equals_serial() {
        let serial = ep_kernel(14);
        for workers in [1usize, 2, 3, 4, 7, 16] {
            let par = ep_kernel_parallel(14, workers);
            // Integer outputs are exactly equal; float sums agree up to the
            // reassociation of per-segment partial sums.
            assert_eq!(par.counts, serial.counts, "workers = {workers}");
            assert_eq!(par.accepted, serial.accepted);
            assert_eq!(par.trials, serial.trials);
            let tol = 1e-9 * serial.accepted as f64;
            assert!((par.sx - serial.sx).abs() <= tol, "workers = {workers}");
            assert!((par.sy - serial.sy).abs() <= tol, "workers = {workers}");
        }
    }

    #[test]
    fn segments_partition_the_stream() {
        let whole = ep_segment(NasRng::default(), 0, 1000, 1000);
        let first = ep_segment(NasRng::default(), 0, 400, 1000);
        let second = ep_segment(NasRng::default(), 400, 600, 1000);
        let merged = first.merge(&second);
        assert_eq!(merged.accepted, whole.accepted);
        assert_eq!(merged.counts, whole.counts);
        assert!((merged.sx - whole.sx).abs() < 1e-9);
    }

    #[test]
    fn ops_matches_paper_model() {
        let r = ep_kernel(10);
        assert_eq!(r.ops(), 1 << 11); // 2^{n+1} for 2^n trials
    }

    #[test]
    fn even_seed_is_fixed_up() {
        let g = NasRng::new(42);
        assert_eq!(g.state() % 2, 1);
    }
}
