//! Condition estimation — the Linpack `dgeco` companion to `dgefa`.
//!
//! `dgeco` factors a matrix and returns `rcond ≈ 1/κ₁(A)`, the reciprocal
//! 1-norm condition number, without ever forming `A⁻¹`. A user consults it
//! before trusting a remote solve (our `matrix/hilbert*` datasets exist to
//! fail this check). The estimator is Hager's algorithm (the one LAPACK's
//! `dgecon` also uses): a few solves with `A` and `Aᵀ` bound `‖A⁻¹‖₁` from
//! below, almost always tightly.

use crate::linpack::{dgesl, Singular};
use crate::matrix::Matrix;

/// Solve `Aᵀ·x = b` using the factors from any `dgefa*` variant (the
/// `job = 1` branch of the Fortran `dgesl`); `b` is overwritten.
pub fn dgesl_t(a: &Matrix, ipvt: &[usize], b: &mut [f64]) {
    let n = a.rows();
    assert_eq!(n, a.cols());
    assert_eq!(b.len(), n);
    assert_eq!(ipvt.len(), n);

    // Solve trans(U)·y = b: forward substitution down the columns of U.
    for k in 0..n {
        let col = a.col(k);
        let t: f64 = col[..k].iter().zip(&b[..k]).map(|(aik, bi)| aik * bi).sum();
        b[k] = (b[k] - t) / col[k];
    }
    // Solve trans(L)·x = y, applying the interchanges in reverse.
    for k in (0..n.saturating_sub(1)).rev() {
        let col = a.col(k);
        let t: f64 = col[k + 1..]
            .iter()
            .zip(&b[k + 1..])
            .map(|(aik, bi)| aik * bi)
            .sum();
        // Multipliers are stored negated, so trans(L) application adds.
        b[k] += t;
        let l = ipvt[k];
        if l != k {
            b.swap(l, k);
        }
    }
}

/// Factor `a` in place (like [`crate::linpack::dgefa`]) and estimate the
/// reciprocal condition number `rcond = 1/(‖A‖₁·‖A⁻¹‖₁)`.
///
/// Returns `(ipvt, rcond)`. `rcond` near 1 means well-conditioned; if
/// `1.0 + rcond == 1.0` the matrix is singular to working precision (the
/// classic Linpack test).
pub fn dgeco(a: &mut Matrix) -> Result<(Vec<usize>, f64), Singular> {
    let n = a.rows();
    assert_eq!(n, a.cols(), "dgeco requires a square matrix");
    if n == 0 {
        return Ok((Vec::new(), 1.0));
    }
    // ‖A‖₁ before factoring: max absolute column sum.
    let anorm = (0..n)
        .map(|j| a.col(j).iter().map(|v| v.abs()).sum::<f64>())
        .fold(0.0f64, f64::max);

    let ipvt = crate::linpack::dgefa(a)?;
    let inv_norm = hager_inverse_norm(a, &ipvt);
    let rcond = if anorm > 0.0 && inv_norm > 0.0 {
        1.0 / (anorm * inv_norm)
    } else {
        0.0
    };
    Ok((ipvt, rcond))
}

/// Hager's lower-bound estimate of `‖A⁻¹‖₁` from factored `A`.
fn hager_inverse_norm(a: &Matrix, ipvt: &[usize]) -> f64 {
    let n = a.rows();
    let mut x = vec![1.0 / n as f64; n];
    let mut best = 0.0f64;

    for _ in 0..5 {
        // z = A⁻¹ x
        let mut z = x.clone();
        dgesl(a, ipvt, &mut z);
        let z_norm: f64 = z.iter().map(|v| v.abs()).sum();
        best = best.max(z_norm);

        // xi = sign(z); w = A⁻ᵀ xi
        let mut w: Vec<f64> = z
            .iter()
            .map(|v| if *v >= 0.0 { 1.0 } else { -1.0 })
            .collect();
        dgesl_t(a, ipvt, &mut w);

        // Converged when no coordinate of w beats the current functional.
        let (j_max, w_max) = w.iter().enumerate().fold((0, 0.0f64), |(bj, bv), (j, &v)| {
            if v.abs() > bv {
                (j, v.abs())
            } else {
                (bj, bv)
            }
        });
        let wx: f64 = w.iter().zip(&x).map(|(wi, xi)| wi * xi).sum();
        if w_max <= wx.abs() + 1e-14 {
            break;
        }
        x = vec![0.0; n];
        x[j_max] = 1.0;
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linpack::{dgefa, matgen, random_matrix};

    /// Direct ‖A⁻¹‖₁ by solving for every unit vector (test oracle).
    fn exact_inverse_norm(orig: &Matrix) -> f64 {
        let n = orig.rows();
        let mut fact = orig.clone();
        let ipvt = dgefa(&mut fact).unwrap();
        let mut best = 0.0f64;
        for j in 0..n {
            let mut e = vec![0.0; n];
            e[j] = 1.0;
            dgesl(&fact, &ipvt, &mut e);
            best = best.max(e.iter().map(|v| v.abs()).sum());
        }
        best
    }

    #[test]
    fn transpose_solve_inverts_transpose() {
        let (orig, _) = matgen(30);
        let mut fact = orig.clone();
        let ipvt = dgefa(&mut fact).unwrap();
        // Pick x, form b = Aᵀ x, recover x.
        let x_true: Vec<f64> = (0..30).map(|i| (i as f64 * 0.7).cos()).collect();
        let mut b = vec![0.0; 30];
        for (j, bj) in b.iter_mut().enumerate() {
            // (Aᵀ x)_j = Σ_i A[i][j]·x[i] = column j of A dotted with x.
            *bj = orig
                .col(j)
                .iter()
                .zip(&x_true)
                .map(|(aij, xi)| aij * xi)
                .sum();
        }
        dgesl_t(&fact, &ipvt, &mut b);
        for (got, want) in b.iter().zip(&x_true) {
            assert!((got - want).abs() < 1e-8, "{got} vs {want}");
        }
    }

    #[test]
    fn identity_is_perfectly_conditioned() {
        let mut a = Matrix::identity(12);
        let (_, rcond) = dgeco(&mut a).unwrap();
        assert!((rcond - 1.0).abs() < 1e-12, "rcond = {rcond}");
    }

    #[test]
    fn diagonal_condition_is_exact() {
        // diag(1, 1e-6): kappa_1 = 1e6 exactly.
        let mut a = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1e-6]]);
        let (_, rcond) = dgeco(&mut a).unwrap();
        assert!((rcond - 1e-6).abs() < 1e-12, "rcond = {rcond}");
    }

    #[test]
    fn hilbert_flagged_as_nearly_singular() {
        let n = 10;
        let mut a = Matrix::zeros(n, n);
        for j in 0..n {
            for i in 0..n {
                a[(i, j)] = 1.0 / ((i + j + 1) as f64);
            }
        }
        let (_, rcond) = dgeco(&mut a).unwrap();
        assert!(
            rcond < 1e-10,
            "Hilbert 10 must look terrible, rcond = {rcond}"
        );
        assert!(rcond > 0.0);
    }

    #[test]
    fn estimate_close_to_exact_on_random_matrices() {
        for seed in [3u64, 17, 99] {
            let (orig, _) = random_matrix(24, seed);
            let exact = exact_inverse_norm(&orig);
            let mut a = orig.clone();
            let (_, rcond) = dgeco(&mut a).unwrap();
            let anorm = (0..24)
                .map(|j| orig.col(j).iter().map(|v| v.abs()).sum::<f64>())
                .fold(0.0f64, f64::max);
            let est = 1.0 / (rcond * anorm);
            // Hager is a lower bound, almost always within 3x of exact.
            assert!(
                est <= exact * 1.0001,
                "estimate above exact: {est} > {exact}"
            );
            assert!(est >= exact / 3.0, "estimate too loose: {est} vs {exact}");
        }
    }

    #[test]
    fn singular_matrix_propagates() {
        let mut a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(dgeco(&mut a).is_err());
    }

    #[test]
    fn empty_matrix_is_fine() {
        let mut a = Matrix::zeros(0, 0);
        let (ipvt, rcond) = dgeco(&mut a).unwrap();
        assert!(ipvt.is_empty());
        assert_eq!(rcond, 1.0);
    }
}
