//! Compiled interface information — the "interpretable code" of two-stage RPC.
//!
//! Ninf's client never sees IDL text: "when the client calls the server, it
//! returns the compiled IDL information as interpretable code to the client.
//! `Ninf_call` then interprets the IDL code and marshalls the arguments"
//! (paper §2.3). We realize that design as a compact stack bytecode: each
//! array dimension of each parameter compiles to a [`SizeProgram`]; the
//! client-side interpreter evaluates the programs against the scalar input
//! arguments to size every array before marshalling. The whole
//! [`CompiledInterface`] is XDR-serializable so the server can ship it in the
//! first stage of every call.

use std::collections::BTreeMap;

use ninf_xdr::{XdrDecoder, XdrEncoder};

use crate::ast::{BaseType, Define, Mode, Param};
use crate::error::{IdlError, IdlResult};
use crate::expr::{BinOp, SizeExpr};

/// One stack-machine instruction of a dimension program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Push an integer constant.
    PushConst(i64),
    /// Push the value of the `i`-th scalar input parameter.
    PushVar(u16),
    Add,
    Sub,
    Mul,
    Div,
}

/// A compiled dimension expression: a postfix program over the scalar inputs.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SizeProgram {
    /// Postfix instruction stream.
    pub ops: Vec<Op>,
}

impl SizeProgram {
    /// Compile an expression tree into postfix form.
    ///
    /// `scalar_index` maps scalar-input parameter names to their slot in the
    /// interface's scalar table.
    pub fn compile(expr: &SizeExpr, scalar_index: &BTreeMap<&str, u16>) -> IdlResult<Self> {
        let mut ops = Vec::new();
        emit(expr, scalar_index, &mut ops)?;
        Ok(Self { ops })
    }

    /// Evaluate against the scalar values (indexed like the scalar table).
    pub fn eval(&self, scalars: &[i64]) -> IdlResult<i64> {
        let mut stack: Vec<i64> = Vec::with_capacity(8);
        for op in &self.ops {
            match *op {
                Op::PushConst(v) => stack.push(v),
                Op::PushVar(i) => {
                    let v = *scalars.get(i as usize).ok_or_else(|| {
                        IdlError::Eval(format!(
                            "scalar slot {i} out of range ({} provided)",
                            scalars.len()
                        ))
                    })?;
                    stack.push(v);
                }
                Op::Add | Op::Sub | Op::Mul | Op::Div => {
                    let r = stack.pop().ok_or_else(stack_underflow)?;
                    let l = stack.pop().ok_or_else(stack_underflow)?;
                    let v = match *op {
                        Op::Add => l.checked_add(r),
                        Op::Sub => l.checked_sub(r),
                        Op::Mul => l.checked_mul(r),
                        Op::Div => {
                            if r == 0 {
                                return Err(IdlError::Eval(
                                    "division by zero in size program".into(),
                                ));
                            }
                            l.checked_div(r)
                        }
                        _ => unreachable!(),
                    }
                    .ok_or_else(|| IdlError::Eval("overflow in size program".into()))?;
                    stack.push(v);
                }
            }
        }
        match (stack.pop(), stack.is_empty()) {
            (Some(v), true) if v >= 0 => Ok(v),
            (Some(v), true) => Err(IdlError::Eval(format!(
                "size program produced negative extent {v}"
            ))),
            _ => Err(IdlError::Eval("size program left a malformed stack".into())),
        }
    }
}

fn stack_underflow() -> IdlError {
    IdlError::Eval("stack underflow in size program".into())
}

fn emit(expr: &SizeExpr, scalar_index: &BTreeMap<&str, u16>, ops: &mut Vec<Op>) -> IdlResult<()> {
    match expr {
        SizeExpr::Const(v) => ops.push(Op::PushConst(*v)),
        SizeExpr::Var(name) => {
            let slot = scalar_index.get(name.as_str()).ok_or_else(|| {
                IdlError::Semantic(format!("dimension references unknown scalar `{name}`"))
            })?;
            ops.push(Op::PushVar(*slot));
        }
        SizeExpr::Binary { op, lhs, rhs } => {
            emit(lhs, scalar_index, ops)?;
            emit(rhs, scalar_index, ops)?;
            ops.push(match op {
                BinOp::Add => Op::Add,
                BinOp::Sub => Op::Sub,
                BinOp::Mul => Op::Mul,
                BinOp::Div => Op::Div,
            });
        }
    }
    Ok(())
}

/// A compiled parameter: fixed metadata plus one program per dimension.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledParam {
    /// Parameter name (for diagnostics and `Calls` mapping).
    pub name: String,
    /// Transfer mode.
    pub mode: Mode,
    /// Element type.
    pub base: BaseType,
    /// One program per dimension; empty means scalar.
    pub dims: Vec<SizeProgram>,
}

impl CompiledParam {
    /// Whether the parameter is a scalar.
    pub fn is_scalar(&self) -> bool {
        self.dims.is_empty()
    }
}

/// Resolved layout of one parameter for a concrete call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParamLayout {
    /// Parameter name.
    pub name: String,
    /// Transfer mode.
    pub mode: Mode,
    /// Element type.
    pub base: BaseType,
    /// Total element count (product of dimensions; 1 for scalars).
    pub count: usize,
    /// Payload bytes on the wire (count × element size; scalars count too).
    pub bytes: usize,
}

/// The full compiled interface the server ships to the client.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledInterface {
    /// Routine name.
    pub name: String,
    /// Names of the scalar input parameters, in slot order. Dimension
    /// programs index into this table.
    pub scalar_table: Vec<String>,
    /// All parameters in declaration order.
    pub params: Vec<CompiledParam>,
    /// Documentation carried through for client-side introspection.
    pub doc: String,
}

impl CompiledInterface {
    /// Compile a parsed `Define`.
    pub fn compile(def: &Define) -> IdlResult<Self> {
        let scalar_names: Vec<&Param> = def.scalar_inputs().collect();
        let mut scalar_index: BTreeMap<&str, u16> = BTreeMap::new();
        let mut scalar_table = Vec::with_capacity(scalar_names.len());
        for (i, p) in scalar_names.iter().enumerate() {
            scalar_index.insert(p.name.as_str(), i as u16);
            scalar_table.push(p.name.clone());
        }

        let mut params = Vec::with_capacity(def.params.len());
        for p in &def.params {
            let dims = p
                .dims
                .iter()
                .map(|d| SizeProgram::compile(d, &scalar_index))
                .collect::<IdlResult<Vec<_>>>()?;
            params.push(CompiledParam {
                name: p.name.clone(),
                mode: p.mode,
                base: p.base,
                dims,
            });
        }

        Ok(Self {
            name: def.name.clone(),
            scalar_table,
            params,
            doc: def.doc.clone().unwrap_or_default(),
        })
    }

    /// Map named scalar values onto the slot-ordered vector the programs use.
    pub fn scalar_slots(&self, scalars: &[(&str, i64)]) -> IdlResult<Vec<i64>> {
        self.scalar_table
            .iter()
            .map(|name| {
                scalars
                    .iter()
                    .find(|(n, _)| n == name)
                    .map(|(_, v)| *v)
                    .ok_or_else(|| IdlError::Eval(format!("missing scalar input `{name}`")))
            })
            .collect()
    }

    /// Resolve the concrete layout of every parameter for a call with the
    /// given scalar inputs. This is what `Ninf_call`'s interpreter does
    /// before marshalling.
    pub fn layout(&self, scalars: &[(&str, i64)]) -> IdlResult<Vec<ParamLayout>> {
        let slots = self.scalar_slots(scalars)?;
        self.params
            .iter()
            .map(|p| {
                let mut count: usize = 1;
                for dim in &p.dims {
                    let extent = dim.eval(&slots)?;
                    count = count
                        .checked_mul(extent as usize)
                        .ok_or_else(|| IdlError::Eval("element count overflow".into()))?;
                }
                Ok(ParamLayout {
                    name: p.name.clone(),
                    mode: p.mode,
                    base: p.base,
                    count,
                    bytes: count * p.base.wire_bytes(),
                })
            })
            .collect()
    }

    /// Array payload bytes shipped client → server (mode in / inout arrays).
    ///
    /// Scalar inputs travel in the call header and are not counted; this is
    /// the paper's `T_comm` data volume convention (8n² + 20n for Linpack).
    pub fn request_bytes(&self, scalars: &[(&str, i64)]) -> IdlResult<usize> {
        Ok(self
            .layout(scalars)?
            .iter()
            .filter(|l| l.mode.sends() && !self.is_scalar_param(&l.name))
            .map(|l| l.bytes)
            .sum())
    }

    /// Array payload bytes shipped server → client (mode out / inout arrays).
    pub fn reply_bytes(&self, scalars: &[(&str, i64)]) -> IdlResult<usize> {
        Ok(self
            .layout(scalars)?
            .iter()
            .filter(|l| l.mode.receives() && !self.is_scalar_param(&l.name))
            .map(|l| l.bytes)
            .sum())
    }

    fn is_scalar_param(&self, name: &str) -> bool {
        self.params.iter().any(|p| p.name == name && p.is_scalar())
    }

    /// Serialize to XDR for shipping in an `InterfaceReply`.
    pub fn encode_xdr(&self, enc: &mut XdrEncoder) {
        enc.put_string(&self.name);
        enc.put_string(&self.doc);
        enc.put_u32(self.scalar_table.len() as u32);
        for s in &self.scalar_table {
            enc.put_string(s);
        }
        enc.put_u32(self.params.len() as u32);
        for p in &self.params {
            enc.put_string(&p.name);
            enc.put_u32(mode_tag(p.mode));
            enc.put_u32(base_tag(p.base));
            enc.put_u32(p.dims.len() as u32);
            for dim in &p.dims {
                enc.put_u32(dim.ops.len() as u32);
                for op in &dim.ops {
                    match *op {
                        Op::PushConst(v) => {
                            enc.put_u32(0);
                            enc.put_i64(v);
                        }
                        Op::PushVar(i) => {
                            enc.put_u32(1);
                            enc.put_u32(i as u32);
                        }
                        Op::Add => enc.put_u32(2),
                        Op::Sub => enc.put_u32(3),
                        Op::Mul => enc.put_u32(4),
                        Op::Div => enc.put_u32(5),
                    }
                }
            }
        }
    }

    /// Deserialize from XDR (client side of the first RPC stage).
    pub fn decode_xdr(dec: &mut XdrDecoder<'_>) -> IdlResult<Self> {
        let name = dec.get_string()?;
        let doc = dec.get_string()?;
        let n_scalars = dec.get_u32()? as usize;
        let mut scalar_table = Vec::with_capacity(n_scalars.min(64));
        for _ in 0..n_scalars {
            scalar_table.push(dec.get_string()?);
        }
        let n_params = dec.get_u32()? as usize;
        let mut params = Vec::with_capacity(n_params.min(64));
        for _ in 0..n_params {
            let pname = dec.get_string()?;
            let mode = untag_mode(dec.get_u32()?)?;
            let base = untag_base(dec.get_u32()?)?;
            let n_dims = dec.get_u32()? as usize;
            let mut dims = Vec::with_capacity(n_dims.min(8));
            for _ in 0..n_dims {
                let n_ops = dec.get_u32()? as usize;
                let mut ops = Vec::with_capacity(n_ops.min(64));
                for _ in 0..n_ops {
                    let op = match dec.get_u32()? {
                        0 => Op::PushConst(dec.get_i64()?),
                        1 => Op::PushVar(dec.get_u32()? as u16),
                        2 => Op::Add,
                        3 => Op::Sub,
                        4 => Op::Mul,
                        5 => Op::Div,
                        t => {
                            return Err(IdlError::Decode(format!(
                                "unknown size-program opcode {t}"
                            )))
                        }
                    };
                    ops.push(op);
                }
                dims.push(SizeProgram { ops });
            }
            params.push(CompiledParam {
                name: pname,
                mode,
                base,
                dims,
            });
        }
        Ok(Self {
            name,
            scalar_table,
            params,
            doc,
        })
    }
}

fn mode_tag(m: Mode) -> u32 {
    match m {
        Mode::In => 0,
        Mode::Out => 1,
        Mode::InOut => 2,
        Mode::Work => 3,
    }
}

fn untag_mode(t: u32) -> IdlResult<Mode> {
    match t {
        0 => Ok(Mode::In),
        1 => Ok(Mode::Out),
        2 => Ok(Mode::InOut),
        3 => Ok(Mode::Work),
        _ => Err(IdlError::Decode(format!("unknown mode tag {t}"))),
    }
}

fn base_tag(b: BaseType) -> u32 {
    match b {
        BaseType::Int => 0,
        BaseType::Long => 1,
        BaseType::Float => 2,
        BaseType::Double => 3,
    }
}

fn untag_base(t: u32) -> IdlResult<BaseType> {
    match t {
        0 => Ok(BaseType::Int),
        1 => Ok(BaseType::Long),
        2 => Ok(BaseType::Float),
        3 => Ok(BaseType::Double),
        _ => Err(IdlError::Decode(format!("unknown base type tag {t}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_one;

    fn dmmul() -> CompiledInterface {
        let def = parse_one(crate::stdlib()[0]).unwrap();
        CompiledInterface::compile(&def).unwrap()
    }

    #[test]
    fn compiles_dmmul() {
        let iface = dmmul();
        assert_eq!(iface.name, "dmmul");
        assert_eq!(iface.scalar_table, vec!["n"]);
        assert_eq!(iface.params.len(), 4);
        assert!(iface.params[0].is_scalar());
        assert_eq!(iface.params[1].dims.len(), 2);
    }

    #[test]
    fn layout_resolves_counts() {
        let iface = dmmul();
        let layout = iface.layout(&[("n", 8)]).unwrap();
        assert_eq!(layout[0].count, 1);
        assert_eq!(layout[1].count, 64);
        assert_eq!(layout[1].bytes, 512);
        assert_eq!(layout[3].mode, Mode::Out);
    }

    #[test]
    fn request_and_reply_bytes_for_dmmul() {
        let iface = dmmul();
        let n = 10i64;
        // A + B in, C out; scalars excluded.
        assert_eq!(
            iface.request_bytes(&[("n", n)]).unwrap(),
            2 * 8 * (n * n) as usize
        );
        assert_eq!(
            iface.reply_bytes(&[("n", n)]).unwrap(),
            8 * (n * n) as usize
        );
    }

    #[test]
    fn missing_scalar_is_error() {
        let iface = dmmul();
        assert!(matches!(iface.layout(&[("m", 8)]), Err(IdlError::Eval(_))));
    }

    #[test]
    fn xdr_roundtrip_preserves_interface() {
        for src in crate::stdlib() {
            let def = parse_one(src).unwrap();
            let iface = CompiledInterface::compile(&def).unwrap();
            let mut enc = XdrEncoder::new();
            iface.encode_xdr(&mut enc);
            let wire = enc.finish();
            let mut dec = XdrDecoder::new(&wire);
            let back = CompiledInterface::decode_xdr(&mut dec).unwrap();
            assert_eq!(back, iface);
            assert!(dec.is_empty());
        }
    }

    #[test]
    fn roundtripped_interface_computes_same_layout() {
        let iface = dmmul();
        let mut enc = XdrEncoder::new();
        iface.encode_xdr(&mut enc);
        let wire = enc.finish();
        let back = CompiledInterface::decode_xdr(&mut XdrDecoder::new(&wire)).unwrap();
        assert_eq!(
            back.layout(&[("n", 123)]).unwrap(),
            iface.layout(&[("n", 123)]).unwrap()
        );
    }

    #[test]
    fn corrupted_opcode_rejected() {
        let mut enc = XdrEncoder::new();
        enc.put_string("f");
        enc.put_string("");
        enc.put_u32(0); // no scalars
        enc.put_u32(1); // one param
        enc.put_string("x");
        enc.put_u32(0); // mode in
        enc.put_u32(3); // double
        enc.put_u32(1); // one dim
        enc.put_u32(1); // one op
        enc.put_u32(99); // bogus opcode
        let wire = enc.finish();
        assert!(matches!(
            CompiledInterface::decode_xdr(&mut XdrDecoder::new(&wire)),
            Err(IdlError::Decode(_))
        ));
    }

    #[test]
    fn malformed_program_stack_is_error() {
        let prog = SizeProgram { ops: vec![Op::Add] };
        assert!(matches!(prog.eval(&[]), Err(IdlError::Eval(_))));
        let prog = SizeProgram {
            ops: vec![Op::PushConst(1), Op::PushConst(2)],
        };
        assert!(matches!(prog.eval(&[]), Err(IdlError::Eval(_))));
    }

    #[test]
    fn var_slot_out_of_range_is_error() {
        let prog = SizeProgram {
            ops: vec![Op::PushVar(3)],
        };
        assert!(matches!(prog.eval(&[1, 2]), Err(IdlError::Eval(_))));
    }
}
