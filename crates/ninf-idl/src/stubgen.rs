//! The Ninf stub generator.
//!
//! "Binaries of computing libraries and applications are registered on the
//! server process as Ninf executables, which can be semi-automatically
//! generated with IDL descriptions using the Ninf stub generator" (§2.1).
//! Given a parsed `Define`, [`generate_handler_stub`] emits the Rust handler
//! skeleton a library author completes, and [`print_idl`] re-emits canonical
//! IDL text (used for registry listings and round-trip testing).

use std::fmt::Write as _;

use crate::ast::{BaseType, Define, Mode, Param};
use crate::expr::SizeExpr;

/// Re-emit a `Define` as canonical IDL source. `parse(print_idl(d))`
/// reproduces the AST exactly (asserted by tests).
pub fn print_idl(def: &Define) -> String {
    let mut out = String::new();
    let params = def
        .params
        .iter()
        .map(print_param)
        .collect::<Vec<_>>()
        .join(",\n             ");
    let _ = write!(out, "Define {}({params})", def.name);
    if let Some(doc) = &def.doc {
        let _ = write!(out, "\n\"{doc}\",");
    }
    for req in &def.required {
        let _ = write!(out, "\nRequired \"{req}\"");
    }
    if let Some(calls) = &def.calls {
        let _ = write!(
            out,
            "\nCalls \"{}\" {}({})",
            calls.convention,
            calls.callee,
            calls.args.join(", ")
        );
    }
    out.push(';');
    out
}

fn print_param(p: &Param) -> String {
    let dims: String = p
        .dims
        .iter()
        .map(|d| format!("[{}]", print_expr(d)))
        .collect();
    format!("{} {} {}{dims}", p.mode.keyword(), p.base.keyword(), p.name)
}

/// Print an expression without the redundant outer parentheses `Display`
/// adds.
fn print_expr(e: &SizeExpr) -> String {
    match e {
        SizeExpr::Binary { .. } => {
            let s = e.to_string();
            s[1..s.len() - 1].to_string()
        }
        other => other.to_string(),
    }
}

/// Generate a Rust handler skeleton for a `Define`: argument unpacking with
/// the right types and extents, a `TODO` where the library call goes, and
/// correctly-shaped outputs.
pub fn generate_handler_stub(def: &Define) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "/// Auto-generated Ninf stub for `{}`.", def.name);
    if let Some(doc) = &def.doc {
        let _ = writeln!(out, "/// {doc}");
    }
    let _ = writeln!(out, "/// IDL:");
    for line in print_idl(def).lines() {
        let _ = writeln!(out, "///     {line}");
    }
    let _ = writeln!(
        out,
        "pub fn {}_handler() -> ninf_server::Handler {{",
        def.name
    );
    let _ = writeln!(
        out,
        "    std::sync::Arc::new(move |args: &[ninf_protocol::Value]| {{"
    );

    // Unpack inputs in declaration order of sends() params.
    let mut arg_idx = 0usize;
    for p in &def.params {
        if !p.mode.sends() {
            continue;
        }
        if p.is_scalar() {
            let _ = writeln!(
                out,
                "        // {} {} {}",
                p.mode.keyword(),
                p.base.keyword(),
                p.name
            );
            let _ = writeln!(
                out,
                "        let {} = args[{arg_idx}].as_scalar_i64().ok_or(\"{} must be an integer scalar\")?;",
                rust_ident(&p.name),
                p.name
            );
        } else {
            let (variant, ty) = value_variant(p.base);
            let _ = writeln!(out, "        // {}", print_param(p));
            let _ = writeln!(
                out,
                "        let {}: &[{ty}] = match &args[{arg_idx}] {{",
                rust_ident(&p.name)
            );
            let _ = writeln!(out, "            ninf_protocol::Value::{variant}(v) => v,");
            let _ = writeln!(
                out,
                "            _ => return Err(\"{} must be a {ty} array\".into()),",
                p.name
            );
            let _ = writeln!(out, "        }};");
        }
        arg_idx += 1;
    }

    let callee = def
        .calls
        .as_ref()
        .map(|c| format!("{} via \"{}\"", c.callee, c.convention))
        .unwrap_or_else(|| "your library routine".to_string());
    let _ = writeln!(out, "        // TODO: call {callee} here.");

    // Produce outputs in declaration order of receives() params.
    let mut outputs = Vec::new();
    for p in &def.params {
        if !p.mode.receives() {
            continue;
        }
        let (variant, _ty) = value_variant(p.base);
        let extent = p
            .dims
            .iter()
            .map(print_expr)
            .collect::<Vec<_>>()
            .join(" * ");
        let ident = format!("out_{}", rust_ident(&p.name));
        if p.is_scalar() {
            let _ = writeln!(
                out,
                "        let {ident} = Default::default(); // scalar {}",
                p.name
            );
            outputs.push(format!(
                "ninf_protocol::Value::{}({ident})",
                scalar_variant(p.base)
            ));
        } else {
            let _ = writeln!(
                out,
                "        let {ident} = vec![Default::default(); ({extent}) as usize]; // {}",
                p.name
            );
            outputs.push(format!("ninf_protocol::Value::{variant}({ident})"));
        }
    }
    let _ = writeln!(out, "        Ok(vec![{}])", outputs.join(", "));
    let _ = writeln!(out, "    }})");
    let _ = writeln!(out, "}}");
    out
}

/// Generate the registration snippet binding the stub to a registry.
pub fn generate_registration(def: &Define) -> String {
    format!(
        "registry.register(r#\"{}\"#, {}_handler()).expect(\"{} IDL\");\n",
        print_idl(def),
        def.name,
        def.name
    )
}

fn value_variant(b: BaseType) -> (&'static str, &'static str) {
    match b {
        BaseType::Int => ("IntArray", "i32"),
        BaseType::Long => ("LongArray", "i64"),
        BaseType::Float => ("FloatArray", "f32"),
        BaseType::Double => ("DoubleArray", "f64"),
    }
}

fn scalar_variant(b: BaseType) -> &'static str {
    match b {
        BaseType::Int => "Int",
        BaseType::Long => "Long",
        BaseType::Float => "Float",
        BaseType::Double => "Double",
    }
}

/// Keep generated identifiers lowercase to satisfy Rust style.
fn rust_ident(name: &str) -> String {
    let lower = name.to_lowercase();
    if lower == name {
        lower
    } else {
        format!("{lower}_")
    }
}

/// Which modes contribute to request vs reply (re-exported for doc tables).
pub fn direction_of(mode: Mode) -> &'static str {
    match (mode.sends(), mode.receives()) {
        (true, true) => "in+out",
        (true, false) => "in",
        (false, true) => "out",
        (false, false) => "scratch",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_one;

    #[test]
    fn print_parse_roundtrip_stdlib() {
        for src in crate::stdlib() {
            let def = parse_one(src).unwrap();
            let printed = print_idl(&def);
            let reparsed = parse_one(&printed)
                .unwrap_or_else(|e| panic!("reparse of {} failed: {e}\n{printed}", def.name));
            assert_eq!(reparsed, def, "roundtrip mismatch for {}", def.name);
        }
    }

    #[test]
    fn stub_unpacks_all_inputs() {
        let def = parse_one(crate::stdlib()[0]).unwrap(); // dmmul
        let stub = generate_handler_stub(&def);
        assert!(stub.contains("pub fn dmmul_handler()"));
        assert!(stub.contains("let n = args[0]"));
        assert!(stub.contains("let a_: &[f64] = match &args[1]"));
        assert!(stub.contains("let b_: &[f64] = match &args[2]"));
        assert!(stub.contains("TODO: call mmul via \"C\""));
        // C is mode_out: allocated with the IDL extent.
        assert!(stub.contains("let out_c_ = vec![Default::default(); (n * n) as usize]"));
        assert!(stub.contains("Ok(vec![ninf_protocol::Value::DoubleArray(out_c_)])"));
    }

    #[test]
    fn stub_handles_inout_params() {
        let def = parse_one(crate::stdlib()[1]).unwrap(); // dgefa: A is inout
        let stub = generate_handler_stub(&def);
        // A appears both as an unpacked input and as an output.
        assert!(stub.contains("let a_: &[f64]"));
        assert!(stub.contains("out_a_"));
        assert!(stub.contains("out_ipvt"));
        assert!(stub.contains("out_info"));
    }

    #[test]
    fn registration_snippet_embeds_idl() {
        let def = parse_one(crate::stdlib()[4]).unwrap(); // ep
        let snippet = generate_registration(&def);
        assert!(snippet.contains("registry.register"));
        assert!(snippet.contains("Define ep("));
        assert!(snippet.contains("ep_handler()"));
    }

    #[test]
    fn mixed_case_names_get_safe_idents() {
        assert_eq!(rust_ident("A"), "a_");
        assert_eq!(rust_ident("ipvt"), "ipvt");
    }

    #[test]
    fn direction_labels() {
        assert_eq!(direction_of(Mode::In), "in");
        assert_eq!(direction_of(Mode::Out), "out");
        assert_eq!(direction_of(Mode::InOut), "in+out");
        assert_eq!(direction_of(Mode::Work), "scratch");
    }

    #[test]
    fn printed_expressions_keep_precedence() {
        let def =
            parse_one("Define f(mode_in int n, mode_out double v[n*(n+1)/2]) \"tri\";").unwrap();
        let printed = print_idl(&def);
        let reparsed = parse_one(&printed).unwrap();
        // Semantics preserved: same extent at a probe value.
        let scalars = [("n", 10i64)].into_iter().collect();
        assert_eq!(
            reparsed.params[1].dims[0].eval(&scalars).unwrap(),
            def.params[1].dims[0].eval(&scalars).unwrap(),
        );
    }
}
