//! Error types for IDL parsing, compilation, and interpretation.

use std::fmt;

/// Errors from IDL lexing, parsing, compilation, or size-program evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IdlError {
    /// Lexical error: unexpected character.
    Lex { line: u32, message: String },
    /// Syntax error with source line.
    Parse { line: u32, message: String },
    /// Semantically invalid interface (duplicate params, unknown names, ...).
    Semantic(String),
    /// Size-program evaluation failed (unknown scalar, division by zero,
    /// negative size, stack underflow in a corrupted program).
    Eval(String),
    /// Compiled interface failed to decode off the wire.
    Decode(String),
}

impl fmt::Display for IdlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IdlError::Lex { line, message } => write!(f, "IDL lex error at line {line}: {message}"),
            IdlError::Parse { line, message } => {
                write!(f, "IDL parse error at line {line}: {message}")
            }
            IdlError::Semantic(m) => write!(f, "IDL semantic error: {m}"),
            IdlError::Eval(m) => write!(f, "IDL size evaluation error: {m}"),
            IdlError::Decode(m) => write!(f, "compiled IDL decode error: {m}"),
        }
    }
}

impl std::error::Error for IdlError {}

impl From<ninf_xdr::XdrError> for IdlError {
    fn from(e: ninf_xdr::XdrError) -> Self {
        IdlError::Decode(e.to_string())
    }
}

/// Convenience alias.
pub type IdlResult<T> = Result<T, IdlError>;
