//! Hand-written lexer for Ninf IDL source text.

use crate::error::{IdlError, IdlResult};

/// A lexical token with its source line (for error reporting).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub kind: TokenKind,
    pub line: u32,
}

/// Token kinds of the Ninf IDL grammar.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`Define`, `mode_in`, `double`, parameter names…).
    Ident(String),
    /// Unsigned integer literal.
    Int(i64),
    /// Double-quoted string literal (documentation, `Required` objects,
    /// calling-convention names).
    Str(String),
    LParen,
    RParen,
    LBracket,
    RBracket,
    Comma,
    Semicolon,
    Plus,
    Minus,
    Star,
    Slash,
    /// End of input (single trailing token).
    Eof,
}

impl TokenKind {
    /// Short human-readable description for error messages.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Ident(s) => format!("identifier `{s}`"),
            TokenKind::Int(v) => format!("integer `{v}`"),
            TokenKind::Str(s) => format!("string \"{s}\""),
            TokenKind::LParen => "`(`".into(),
            TokenKind::RParen => "`)`".into(),
            TokenKind::LBracket => "`[`".into(),
            TokenKind::RBracket => "`]`".into(),
            TokenKind::Comma => "`,`".into(),
            TokenKind::Semicolon => "`;`".into(),
            TokenKind::Plus => "`+`".into(),
            TokenKind::Minus => "`-`".into(),
            TokenKind::Star => "`*`".into(),
            TokenKind::Slash => "`/`".into(),
            TokenKind::Eof => "end of input".into(),
        }
    }
}

/// Tokenize a full IDL source. `//` and `/* */` comments are skipped.
pub fn tokenize(src: &str) -> IdlResult<Vec<Token>> {
    let bytes = src.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    let mut line: u32 = 1;

    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '/' if bytes.get(i + 1) == Some(&b'*') => {
                i += 2;
                loop {
                    if i + 1 >= bytes.len() {
                        return Err(IdlError::Lex {
                            line,
                            message: "unterminated comment".into(),
                        });
                    }
                    if bytes[i] == b'\n' {
                        line += 1;
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        i += 2;
                        break;
                    }
                    i += 1;
                }
            }
            '(' => push_simple(&mut tokens, TokenKind::LParen, line, &mut i),
            ')' => push_simple(&mut tokens, TokenKind::RParen, line, &mut i),
            '[' => push_simple(&mut tokens, TokenKind::LBracket, line, &mut i),
            ']' => push_simple(&mut tokens, TokenKind::RBracket, line, &mut i),
            ',' => push_simple(&mut tokens, TokenKind::Comma, line, &mut i),
            ';' => push_simple(&mut tokens, TokenKind::Semicolon, line, &mut i),
            '+' => push_simple(&mut tokens, TokenKind::Plus, line, &mut i),
            '-' => push_simple(&mut tokens, TokenKind::Minus, line, &mut i),
            '*' => push_simple(&mut tokens, TokenKind::Star, line, &mut i),
            '/' => push_simple(&mut tokens, TokenKind::Slash, line, &mut i),
            '"' => {
                let start_line = line;
                i += 1;
                let begin = i;
                while i < bytes.len() && bytes[i] != b'"' {
                    if bytes[i] == b'\n' {
                        line += 1;
                    }
                    i += 1;
                }
                if i == bytes.len() {
                    return Err(IdlError::Lex {
                        line: start_line,
                        message: "unterminated string literal".into(),
                    });
                }
                let text = std::str::from_utf8(&bytes[begin..i]).map_err(|_| IdlError::Lex {
                    line: start_line,
                    message: "invalid UTF-8 in string".into(),
                })?;
                tokens.push(Token {
                    kind: TokenKind::Str(text.to_owned()),
                    line: start_line,
                });
                i += 1; // closing quote
            }
            c if c.is_ascii_digit() => {
                let begin = i;
                while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                }
                let text = &src[begin..i];
                let value = text.parse::<i64>().map_err(|_| IdlError::Lex {
                    line,
                    message: format!("integer literal `{text}` out of range"),
                })?;
                tokens.push(Token {
                    kind: TokenKind::Int(value),
                    line,
                });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let begin = i;
                while i < bytes.len() {
                    let c = bytes[i] as char;
                    if c.is_ascii_alphanumeric() || c == '_' {
                        i += 1;
                    } else {
                        break;
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Ident(src[begin..i].to_owned()),
                    line,
                });
            }
            other => {
                return Err(IdlError::Lex {
                    line,
                    message: format!("unexpected character `{other}`"),
                })
            }
        }
    }

    tokens.push(Token {
        kind: TokenKind::Eof,
        line,
    });
    Ok(tokens)
}

fn push_simple(tokens: &mut Vec<Token>, kind: TokenKind, line: u32, i: &mut usize) {
    tokens.push(Token { kind, line });
    *i += 1;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_define_header() {
        let ks = kinds("Define dmmul(mode_in int n)");
        assert_eq!(
            ks,
            vec![
                TokenKind::Ident("Define".into()),
                TokenKind::Ident("dmmul".into()),
                TokenKind::LParen,
                TokenKind::Ident("mode_in".into()),
                TokenKind::Ident("int".into()),
                TokenKind::Ident("n".into()),
                TokenKind::RParen,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lexes_dims_and_arith() {
        let ks = kinds("A[2*n+1]");
        assert_eq!(
            ks,
            vec![
                TokenKind::Ident("A".into()),
                TokenKind::LBracket,
                TokenKind::Int(2),
                TokenKind::Star,
                TokenKind::Ident("n".into()),
                TokenKind::Plus,
                TokenKind::Int(1),
                TokenKind::RBracket,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn strings_and_comments() {
        let ks = kinds("// top comment\n\"doc text\" /* mid */ Required");
        assert_eq!(
            ks,
            vec![
                TokenKind::Str("doc text".into()),
                TokenKind::Ident("Required".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn line_numbers_tracked() {
        let toks = tokenize("Define\nfoo").unwrap();
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2);
    }

    #[test]
    fn unterminated_string_is_error() {
        assert!(matches!(tokenize("\"oops"), Err(IdlError::Lex { .. })));
    }

    #[test]
    fn unterminated_comment_is_error() {
        assert!(matches!(tokenize("/* oops"), Err(IdlError::Lex { .. })));
    }

    #[test]
    fn unexpected_char_is_error() {
        assert!(matches!(tokenize("Define @"), Err(IdlError::Lex { .. })));
    }
}
