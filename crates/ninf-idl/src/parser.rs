//! Recursive-descent parser for Ninf IDL.
//!
//! Grammar (informal):
//!
//! ```text
//! source      := define*
//! define      := "Define" IDENT "(" [param ("," param)*] ")"
//!                [STRING] [","] clause* [";"]
//! clause      := "Required" STRING ("," STRING)*
//!              | "Calls" STRING IDENT "(" [IDENT ("," IDENT)*] ")" ";"
//! param       := mode type IDENT dim*           -- qualifiers may precede mode
//! mode        := "mode_in" | "mode_out" | "mode_inout" | "mode_work"
//! type        := "int" | "long" | "float" | "double"
//! dim         := "[" expr "]"
//! expr        := term (("+" | "-") term)*
//! term        := factor (("*" | "/") factor)*
//! factor      := INT | IDENT | "(" expr ")" | "-" factor
//! ```

use crate::ast::{BaseType, CallsClause, Define, Mode, Param};
use crate::error::{IdlError, IdlResult};
use crate::expr::{BinOp, SizeExpr};
use crate::lexer::{tokenize, Token, TokenKind};

/// Token-stream parser; construct with [`Parser::new`], drive with
/// [`Parser::parse_all`].
pub struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    /// Lex `src` and prepare to parse.
    pub fn new(src: &str) -> IdlResult<Self> {
        Ok(Self {
            tokens: tokenize(src)?,
            pos: 0,
        })
    }

    /// Parse every `Define` in the source.
    pub fn parse_all(&mut self) -> IdlResult<Vec<Define>> {
        let mut defines = Vec::new();
        while !self.at_eof() {
            defines.push(self.parse_define()?);
        }
        if defines.is_empty() {
            return Err(IdlError::Semantic("source contains no Define".into()));
        }
        Ok(defines)
    }

    fn parse_define(&mut self) -> IdlResult<Define> {
        self.expect_keyword("Define")?;
        let name = self.expect_ident()?;
        self.expect(TokenKind::LParen)?;

        let mut params = Vec::new();
        if !self.check(&TokenKind::RParen) {
            loop {
                params.push(self.parse_param()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect(TokenKind::RParen)?;

        // Optional documentation string, optionally followed by a comma.
        let doc = if let TokenKind::Str(s) = self.peek_kind().clone() {
            self.advance();
            self.eat(&TokenKind::Comma);
            Some(s)
        } else {
            None
        };

        let mut required = Vec::new();
        let mut calls = None;

        loop {
            match self.peek_kind().clone() {
                TokenKind::Ident(kw) if kw == "Required" => {
                    self.advance();
                    required.push(self.expect_string()?);
                    while self.eat(&TokenKind::Comma) {
                        required.push(self.expect_string()?);
                    }
                }
                TokenKind::Ident(kw) if kw == "Calls" => {
                    self.advance();
                    let convention = self.expect_string()?;
                    let callee = self.expect_ident()?;
                    self.expect(TokenKind::LParen)?;
                    let mut args = Vec::new();
                    if !self.check(&TokenKind::RParen) {
                        loop {
                            args.push(self.expect_ident()?);
                            if !self.eat(&TokenKind::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect(TokenKind::RParen)?;
                    calls = Some(CallsClause {
                        convention,
                        callee,
                        args,
                    });
                }
                _ => break,
            }
        }
        self.eat(&TokenKind::Semicolon);

        let define = Define {
            name,
            params,
            doc,
            required,
            calls,
        };
        validate(&define)?;
        Ok(define)
    }

    fn parse_param(&mut self) -> IdlResult<Param> {
        // Collect leading identifiers until the parameter name: qualifiers
        // (ignored, e.g. the paper's stray `long` in `long mode_in int n`),
        // exactly one mode keyword, and exactly one base type keyword; the
        // final identifier before `[`/`,`/`)` is the parameter name.
        let mut mode = None;
        let mut base = None;
        let mut name = None;

        loop {
            let kind = self.peek_kind().clone();
            match kind {
                TokenKind::Ident(word) => {
                    self.advance();
                    if let Some(m) = mode_keyword(&word) {
                        if mode.replace(m).is_some() {
                            return self.err(format!("duplicate mode keyword `{word}`"));
                        }
                    } else if let Some(b) = type_keyword(&word) {
                        // A type keyword before the mode (e.g. `long mode_in int n`)
                        // is treated as a storage qualifier and superseded by a later
                        // type keyword.
                        base = Some(b);
                    } else {
                        // Plain identifier: candidate parameter name. The last
                        // one wins; seeing two in a row is a syntax error.
                        if name.replace(word.clone()).is_some() {
                            return self.err(format!(
                                "unexpected identifier `{word}` after parameter name"
                            ));
                        }
                    }
                }
                TokenKind::LBracket | TokenKind::Comma | TokenKind::RParen => break,
                other => return self.err(format!("unexpected {} in parameter", other.describe())),
            }
        }

        let name = name.ok_or_else(|| self.err_at("parameter missing a name"))?;
        let mode =
            mode.ok_or_else(|| self.err_at(&format!("parameter `{name}` missing a mode keyword")))?;
        let base =
            base.ok_or_else(|| self.err_at(&format!("parameter `{name}` missing a base type")))?;

        let mut dims = Vec::new();
        while self.eat(&TokenKind::LBracket) {
            dims.push(self.parse_expr()?);
            self.expect(TokenKind::RBracket)?;
        }

        Ok(Param {
            name,
            mode,
            base,
            dims,
        })
    }

    fn parse_expr(&mut self) -> IdlResult<SizeExpr> {
        let mut lhs = self.parse_term()?;
        loop {
            let op = if self.eat(&TokenKind::Plus) {
                BinOp::Add
            } else if self.eat(&TokenKind::Minus) {
                BinOp::Sub
            } else {
                break;
            };
            let rhs = self.parse_term()?;
            lhs = SizeExpr::binary(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_term(&mut self) -> IdlResult<SizeExpr> {
        let mut lhs = self.parse_factor()?;
        loop {
            let op = if self.eat(&TokenKind::Star) {
                BinOp::Mul
            } else if self.eat(&TokenKind::Slash) {
                BinOp::Div
            } else {
                break;
            };
            let rhs = self.parse_factor()?;
            lhs = SizeExpr::binary(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_factor(&mut self) -> IdlResult<SizeExpr> {
        match self.peek_kind().clone() {
            TokenKind::Int(v) => {
                self.advance();
                Ok(SizeExpr::Const(v))
            }
            TokenKind::Ident(name) => {
                self.advance();
                Ok(SizeExpr::Var(name))
            }
            TokenKind::LParen => {
                self.advance();
                let inner = self.parse_expr()?;
                self.expect(TokenKind::RParen)?;
                Ok(inner)
            }
            TokenKind::Minus => {
                self.advance();
                let inner = self.parse_factor()?;
                Ok(SizeExpr::binary(BinOp::Sub, SizeExpr::Const(0), inner))
            }
            other => self.err(format!(
                "expected dimension expression, found {}",
                other.describe()
            )),
        }
    }

    // --- token-stream helpers ---

    fn at_eof(&self) -> bool {
        matches!(self.peek_kind(), TokenKind::Eof)
    }

    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn peek_kind(&self) -> &TokenKind {
        &self.peek().kind
    }

    fn advance(&mut self) {
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
    }

    fn check(&self, kind: &TokenKind) -> bool {
        self.peek_kind() == kind
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.check(kind) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: TokenKind) -> IdlResult<()> {
        if self.eat(&kind) {
            Ok(())
        } else {
            self.err(format!(
                "expected {}, found {}",
                kind.describe(),
                self.peek_kind().describe()
            ))
        }
    }

    fn expect_ident(&mut self) -> IdlResult<String> {
        match self.peek_kind().clone() {
            TokenKind::Ident(s) => {
                self.advance();
                Ok(s)
            }
            other => self.err(format!("expected identifier, found {}", other.describe())),
        }
    }

    fn expect_string(&mut self) -> IdlResult<String> {
        match self.peek_kind().clone() {
            TokenKind::Str(s) => {
                self.advance();
                Ok(s)
            }
            other => self.err(format!(
                "expected string literal, found {}",
                other.describe()
            )),
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> IdlResult<()> {
        match self.peek_kind().clone() {
            TokenKind::Ident(s) if s == kw => {
                self.advance();
                Ok(())
            }
            other => self.err(format!("expected `{kw}`, found {}", other.describe())),
        }
    }

    fn err<T>(&self, message: String) -> IdlResult<T> {
        Err(IdlError::Parse {
            line: self.peek().line,
            message,
        })
    }

    fn err_at(&self, message: &str) -> IdlError {
        IdlError::Parse {
            line: self.peek().line,
            message: message.to_owned(),
        }
    }
}

fn mode_keyword(word: &str) -> Option<Mode> {
    match word {
        "mode_in" => Some(Mode::In),
        "mode_out" => Some(Mode::Out),
        "mode_inout" => Some(Mode::InOut),
        "mode_work" => Some(Mode::Work),
        _ => None,
    }
}

fn type_keyword(word: &str) -> Option<BaseType> {
    match word {
        "int" => Some(BaseType::Int),
        "long" => Some(BaseType::Long),
        "float" => Some(BaseType::Float),
        "double" => Some(BaseType::Double),
        _ => None,
    }
}

/// Semantic checks: unique parameter names, dimension variables must name
/// scalar *input* parameters declared before use, `Calls` arguments must name
/// real parameters.
fn validate(def: &Define) -> IdlResult<()> {
    let mut seen: Vec<&str> = Vec::new();
    for p in &def.params {
        if seen.contains(&p.name.as_str()) {
            return Err(IdlError::Semantic(format!(
                "duplicate parameter `{}` in Define {}",
                p.name, def.name
            )));
        }
        for dim in &p.dims {
            for var in dim.variables() {
                let declared = def
                    .params
                    .iter()
                    .take_while(|q| q.name != p.name)
                    .any(|q| q.name == var && q.is_scalar() && q.mode.sends());
                if !declared {
                    return Err(IdlError::Semantic(format!(
                        "dimension of `{}` references `{var}`, which is not a preceding scalar input",
                        p.name
                    )));
                }
            }
        }
        seen.push(&p.name);
    }
    if let Some(calls) = &def.calls {
        for arg in &calls.args {
            if !def.params.iter().any(|p| &p.name == arg) {
                return Err(IdlError::Semantic(format!(
                    "Calls argument `{arg}` is not a parameter of Define {}",
                    def.name
                )));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_one;

    #[test]
    fn parses_paper_dmmul_verbatim() {
        // Exactly the example from §2.3, including the stray `long` qualifier.
        let src = r#"Define dmmul(long mode_in int n,
                        mode_in double A[n][n],
                        mode_in double B[n][n],
                        mode_out double C[n][n])
            "dmmul is double precision matrix multiply",
            Required "libxxx.o"
            Calls "C" mmul(n,A,B,C);"#;
        let def = parse_one(src).unwrap();
        assert_eq!(def.name, "dmmul");
        assert_eq!(def.params.len(), 4);
        assert_eq!(def.params[0].name, "n");
        assert_eq!(def.params[0].mode, Mode::In);
        assert_eq!(def.params[0].base, BaseType::Int);
        assert!(def.params[0].is_scalar());
        assert_eq!(def.params[1].dims.len(), 2);
        assert_eq!(def.params[3].mode, Mode::Out);
        assert_eq!(
            def.doc.as_deref(),
            Some("dmmul is double precision matrix multiply")
        );
        assert_eq!(def.required, vec!["libxxx.o"]);
        let calls = def.calls.unwrap();
        assert_eq!(calls.convention, "C");
        assert_eq!(calls.callee, "mmul");
        assert_eq!(calls.args, vec!["n", "A", "B", "C"]);
    }

    #[test]
    fn parses_arithmetic_dimensions() {
        let def = parse_one(
            r#"Define tri(mode_in int n, mode_out double T[n*(n+1)/2]) "packed triangle";"#,
        )
        .unwrap();
        let dim = &def.params[1].dims[0];
        let scalars = [("n", 10i64)].into_iter().collect();
        assert_eq!(dim.eval(&scalars).unwrap(), 55);
    }

    #[test]
    fn parses_multiple_defines() {
        let defs = crate::parse(
            r#"Define a(mode_in int n) "a";
               Define b(mode_in int m, mode_out double v[m]) "b";"#,
        )
        .unwrap();
        assert_eq!(defs.len(), 2);
        assert_eq!(defs[0].name, "a");
        assert_eq!(defs[1].name, "b");
    }

    #[test]
    fn rejects_duplicate_parameter() {
        let err = parse_one("Define f(mode_in int n, mode_in int n)").unwrap_err();
        assert!(matches!(err, IdlError::Semantic(_)));
    }

    #[test]
    fn rejects_forward_dimension_reference() {
        let err = parse_one("Define f(mode_in double A[m], mode_in int m)").unwrap_err();
        assert!(matches!(err, IdlError::Semantic(_)));
    }

    #[test]
    fn rejects_dimension_on_output_scalar() {
        // `k` is an output, so the client cannot size `A` from it.
        let err = parse_one("Define f(mode_out int k, mode_in double A[k])").unwrap_err();
        assert!(matches!(err, IdlError::Semantic(_)));
    }

    #[test]
    fn rejects_unknown_calls_argument() {
        let err = parse_one(r#"Define f(mode_in int n) Calls "C" g(x);"#).unwrap_err();
        assert!(matches!(err, IdlError::Semantic(_)));
    }

    #[test]
    fn rejects_param_without_mode() {
        let err = parse_one("Define f(int n)").unwrap_err();
        assert!(matches!(err, IdlError::Parse { .. }));
    }

    #[test]
    fn rejects_param_without_type() {
        let err = parse_one("Define f(mode_in n)").unwrap_err();
        assert!(matches!(err, IdlError::Parse { .. }));
    }

    #[test]
    fn rejects_empty_source() {
        assert!(matches!(
            crate::parse("  // nothing"),
            Err(IdlError::Semantic(_))
        ));
    }

    #[test]
    fn work_mode_parses() {
        let def = parse_one("Define f(mode_in int n, mode_work double scratch[n])").unwrap();
        assert_eq!(def.params[1].mode, Mode::Work);
    }

    #[test]
    fn unary_minus_in_dimension() {
        let def = parse_one("Define f(mode_in int n, mode_in double v[n--1])").unwrap();
        // n - (-1) == n + 1
        let scalars = [("n", 3i64)].into_iter().collect();
        assert_eq!(def.params[1].dims[0].eval(&scalars).unwrap(), 4);
    }
}
