//! Array-dimension expressions over scalar input arguments.
//!
//! Ninf IDL lets a dimension depend on scalar inputs ("matrix size, region of
//! usage, stride, etc. that are dependent on scalar input arguments are …
//! automatically inferred from IDL information", paper §2.3). The grammar is
//! ordinary integer arithmetic: `+ - * /`, parentheses, integer literals, and
//! scalar parameter names.

use std::collections::BTreeMap;
use std::fmt;

use crate::error::{IdlError, IdlResult};

/// An integer size expression tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SizeExpr {
    /// Integer literal.
    Const(i64),
    /// Reference to a scalar input parameter.
    Var(String),
    /// Binary operation.
    Binary {
        op: BinOp,
        lhs: Box<SizeExpr>,
        rhs: Box<SizeExpr>,
    },
}

/// Binary operators permitted in dimension expressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    /// Truncating integer division (fails on division by zero at eval time).
    Div,
}

impl BinOp {
    fn symbol(self) -> char {
        match self {
            BinOp::Add => '+',
            BinOp::Sub => '-',
            BinOp::Mul => '*',
            BinOp::Div => '/',
        }
    }
}

impl SizeExpr {
    /// Shorthand constructor for a binary node.
    pub fn binary(op: BinOp, lhs: SizeExpr, rhs: SizeExpr) -> Self {
        SizeExpr::Binary {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        }
    }

    /// Evaluate with the given scalar bindings.
    ///
    /// Fails on unknown variables, division by zero, overflow, or a negative
    /// result (array extents must be non-negative).
    pub fn eval(&self, scalars: &BTreeMap<&str, i64>) -> IdlResult<i64> {
        let v = self.eval_inner(scalars)?;
        if v < 0 {
            return Err(IdlError::Eval(format!(
                "dimension `{self}` evaluated to negative {v}"
            )));
        }
        Ok(v)
    }

    fn eval_inner(&self, scalars: &BTreeMap<&str, i64>) -> IdlResult<i64> {
        match self {
            SizeExpr::Const(v) => Ok(*v),
            SizeExpr::Var(name) => scalars
                .get(name.as_str())
                .copied()
                .ok_or_else(|| IdlError::Eval(format!("unknown scalar `{name}` in dimension"))),
            SizeExpr::Binary { op, lhs, rhs } => {
                let l = lhs.eval_inner(scalars)?;
                let r = rhs.eval_inner(scalars)?;
                let out = match op {
                    BinOp::Add => l.checked_add(r),
                    BinOp::Sub => l.checked_sub(r),
                    BinOp::Mul => l.checked_mul(r),
                    BinOp::Div => {
                        if r == 0 {
                            return Err(IdlError::Eval(format!("division by zero in `{self}`")));
                        }
                        l.checked_div(r)
                    }
                };
                out.ok_or_else(|| IdlError::Eval(format!("overflow evaluating `{self}`")))
            }
        }
    }

    /// Names of all scalar variables referenced by this expression.
    pub fn variables(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn collect_vars<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            SizeExpr::Const(_) => {}
            SizeExpr::Var(name) => out.push(name),
            SizeExpr::Binary { lhs, rhs, .. } => {
                lhs.collect_vars(out);
                rhs.collect_vars(out);
            }
        }
    }
}

impl fmt::Display for SizeExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SizeExpr::Const(v) => write!(f, "{v}"),
            SizeExpr::Var(name) => write!(f, "{name}"),
            SizeExpr::Binary { op, lhs, rhs } => write!(f, "({lhs} {} {rhs})", op.symbol()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bind(pairs: &[(&'static str, i64)]) -> BTreeMap<&'static str, i64> {
        pairs.iter().copied().collect()
    }

    #[test]
    fn eval_constants_and_vars() {
        assert_eq!(SizeExpr::Const(5).eval(&bind(&[])).unwrap(), 5);
        assert_eq!(
            SizeExpr::Var("n".into()).eval(&bind(&[("n", 7)])).unwrap(),
            7
        );
    }

    #[test]
    fn eval_arithmetic() {
        // 2*n + 1 with n = 10
        let e = SizeExpr::binary(
            BinOp::Add,
            SizeExpr::binary(BinOp::Mul, SizeExpr::Const(2), SizeExpr::Var("n".into())),
            SizeExpr::Const(1),
        );
        assert_eq!(e.eval(&bind(&[("n", 10)])).unwrap(), 21);
    }

    #[test]
    fn unknown_var_is_error() {
        let e = SizeExpr::Var("m".into());
        assert!(matches!(e.eval(&bind(&[("n", 1)])), Err(IdlError::Eval(_))));
    }

    #[test]
    fn division_by_zero_is_error() {
        let e = SizeExpr::binary(BinOp::Div, SizeExpr::Const(4), SizeExpr::Var("n".into()));
        assert!(matches!(e.eval(&bind(&[("n", 0)])), Err(IdlError::Eval(_))));
    }

    #[test]
    fn negative_result_is_error() {
        let e = SizeExpr::binary(BinOp::Sub, SizeExpr::Const(1), SizeExpr::Const(5));
        assert!(matches!(e.eval(&bind(&[])), Err(IdlError::Eval(_))));
    }

    #[test]
    fn overflow_is_error() {
        let e = SizeExpr::binary(BinOp::Mul, SizeExpr::Const(i64::MAX), SizeExpr::Const(2));
        assert!(matches!(e.eval(&bind(&[])), Err(IdlError::Eval(_))));
    }

    #[test]
    fn variables_deduplicated() {
        let e = SizeExpr::binary(
            BinOp::Mul,
            SizeExpr::Var("n".into()),
            SizeExpr::Var("n".into()),
        );
        assert_eq!(e.variables(), vec!["n"]);
    }

    #[test]
    fn display_is_parenthesized() {
        let e = SizeExpr::binary(BinOp::Add, SizeExpr::Var("n".into()), SizeExpr::Const(1));
        assert_eq!(e.to_string(), "(n + 1)");
    }
}
