//! Ninf IDL — the Interface Description Language of the Ninf system.
//!
//! Each routine registered on a Ninf computational server is described by an
//! IDL `Define` (SC'97 paper, §2.3):
//!
//! ```text
//! Define dmmul(mode_in int n,
//!              mode_in double A[n][n], mode_in double B[n][n],
//!              mode_out double C[n][n])
//! "dmmul is double precision matrix multiply",
//! Required "libxxx.o"
//! Calls "C" mmul(n, A, B, C);
//! ```
//!
//! Array dimensions are *expressions over scalar input arguments* (`n`,
//! `n*n`, `2*n+1`, …): the client does not know matrix sizes statically, so
//! at call time the server ships a **compiled interface** — a tiny stack
//! bytecode per dimension — which the client interprets to marshal arguments
//! (the paper's "two-stage RPC": "when the client calls the server, it
//! returns the compiled IDL information as interpretable code to the
//! client"). This crate provides:
//!
//! * [`parse`] / [`parse_one`] — IDL text → [`ast::Define`]
//! * [`expr::SizeExpr`] — dimension expressions with an evaluator
//! * [`compile::CompiledInterface`] — the interpretable form, XDR-serializable
//! * [`stdlib`] — the IDL sources for the routines used throughout the paper
//!   (dmmul, dgefa, dgesl, linpack, ep, dos)

pub mod ast;
pub mod compile;
pub mod error;
pub mod expr;
pub mod lexer;
pub mod parser;
pub mod stubgen;

pub use ast::{BaseType, Define, Mode, Param};
pub use compile::{CompiledInterface, CompiledParam, SizeProgram};
pub use error::{IdlError, IdlResult};
pub use expr::SizeExpr;
pub use stubgen::{generate_handler_stub, generate_registration, print_idl};

/// Parse a complete IDL source containing one or more `Define`s.
pub fn parse(src: &str) -> IdlResult<Vec<Define>> {
    parser::Parser::new(src)?.parse_all()
}

/// Parse an IDL source expected to contain exactly one `Define`.
pub fn parse_one(src: &str) -> IdlResult<Define> {
    let mut defs = parse(src)?;
    match defs.len() {
        1 => Ok(defs.pop().expect("len checked")),
        n => Err(IdlError::Semantic(format!(
            "expected exactly one Define, found {n}"
        ))),
    }
}

/// IDL sources for the routines exercised by the SC'97 evaluation.
///
/// These are registered on every live and simulated Ninf server in this
/// repository, mirroring the paper: `dgefa`/`dgesl` (Linpack LU +
/// back-substitution, §3.1), `linpack` (the combined solve used by the
/// multi-client benchmarks), `dmmul` (the running example of §2), `ep` (NAS
/// Parallel EP kernel, §4.3) and `dos` (the density-of-states EP-style
/// application mentioned at the end of §4.3).
pub fn stdlib() -> Vec<&'static str> {
    vec![
        // The §2.3 running example.
        r#"Define dmmul(mode_in int n,
                        mode_in double A[n][n], mode_in double B[n][n],
                        mode_out double C[n][n])
           "dmmul is double precision matrix multiply",
           Required "libdmmul.o"
           Calls "C" mmul(n, A, B, C);"#,
        // LU decomposition with partial pivoting (Linpack dgefa).
        r#"Define dgefa(mode_in int n,
                        mode_inout double A[n][n],
                        mode_out int ipvt[n],
                        mode_out int info[1])
           "dgefa factors a double precision matrix by gaussian elimination",
           Required "liblinpack.o"
           Calls "C" dgefa(n, A, ipvt, info);"#,
        // Back substitution (Linpack dgesl).
        r#"Define dgesl(mode_in int n,
                        mode_in double A[n][n],
                        mode_in int ipvt[n],
                        mode_inout double b[n])
           "dgesl solves A*x = b using the factors computed by dgefa",
           Required "liblinpack.o"
           Calls "C" dgesl(n, A, ipvt, b);"#,
        // Combined factor+solve, the unit of one benchmark Ninf_call.
        // In+out traffic totals 8n^2 + 20n bytes as in the paper's T_comm model:
        // A in (8n^2) + b in (8n) + x out (8n) + ipvt out (4n) -> 8n^2 + 20n.
        r#"Define linpack(mode_in int n,
                          mode_in double A[n][n],
                          mode_in double b[n],
                          mode_out double x[n],
                          mode_out int ipvt[n])
           "linpack solves a dense double precision system (dgefa + dgesl)",
           Required "liblinpack.o"
           Calls "C" linpack(n, A, b, x, ipvt);"#,
        // NAS Parallel EP kernel: 2^m Gaussian pair trials; O(1) communication.
        r#"Define ep(mode_in int m,
                     mode_out double sums[2],
                     mode_out double counts[10])
           "ep runs 2^m embarrassingly parallel Monte-Carlo trials",
           Required "libnaspar.o"
           Calls "C" ep(m, sums, counts);"#,
        // Density-of-states Monte-Carlo estimate (EP-style chemistry app).
        r#"Define dos(mode_in int m, mode_in int bins,
                      mode_out double hist[bins])
           "dos estimates a density of states by Monte-Carlo sampling",
           Required "libdos.o"
           Calls "C" dos(m, bins, hist);"#,
        // Factor + reciprocal condition estimate (Linpack dgeco).
        r#"Define dgeco(mode_in int n,
                        mode_inout double A[n][n],
                        mode_out int ipvt[n],
                        mode_out double rcond[1])
           "dgeco factors a matrix and estimates its reciprocal condition number",
           Required "liblinpack.o"
           Calls "C" dgeco(n, A, ipvt, rcond);"#,
        // Treecode-style evaluation sweep: the field of n *fixed* particles
        // at an O(1) per-iteration probe grid — O(n) input that repeats
        // across calls, O(1) output (the argument-cache workload).
        r#"Define nbody(mode_in int n, mode_in int step,
                        mode_in double masses[n],
                        mode_in double pos[3*n],
                        mode_out double diag[5])
           "nbody evaluates softened gravity of n fixed sources at 64 probe points",
           Required "libnbody.o"
           Calls "C" nbody(n, step, masses, pos, diag);"#,
    ]
}

/// Parse and compile the whole [`stdlib`].
pub fn stdlib_interfaces() -> Vec<CompiledInterface> {
    stdlib()
        .into_iter()
        .map(|src| {
            let def = parse_one(src).expect("stdlib IDL must parse");
            CompiledInterface::compile(&def).expect("stdlib IDL must compile")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stdlib_parses_and_compiles() {
        let ifaces = stdlib_interfaces();
        assert_eq!(ifaces.len(), 8);
        let names: Vec<&str> = ifaces.iter().map(|i| i.name.as_str()).collect();
        assert_eq!(
            names,
            ["dmmul", "dgefa", "dgesl", "linpack", "ep", "dos", "dgeco", "nbody"]
        );
    }

    #[test]
    fn linpack_wire_size_matches_paper_formula() {
        // Paper §3.1: T_comm carries 8n^2 + 20n bytes for a matrix size n.
        let iface = stdlib_interfaces().remove(3);
        assert_eq!(iface.name, "linpack");
        for n in [100i64, 600, 1000, 1400, 1600] {
            let scalars = [("n", n)];
            let total =
                iface.request_bytes(&scalars).unwrap() + iface.reply_bytes(&scalars).unwrap();
            assert_eq!(total as i64, 8 * n * n + 20 * n, "n = {n}");
        }
    }

    #[test]
    fn parse_one_rejects_multiple() {
        let two = format!("{}\n{}", stdlib()[0], stdlib()[1]);
        assert!(parse_one(&two).is_err());
    }
}
