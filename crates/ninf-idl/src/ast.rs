//! Abstract syntax tree for Ninf IDL `Define`s.

use crate::expr::SizeExpr;

/// Argument transfer mode (paper §2.3: "access modes (input/output)").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mode {
    /// Shipped client → server only.
    In,
    /// Shipped server → client only.
    Out,
    /// Shipped both ways.
    InOut,
    /// Scratch space allocated on the server, never shipped.
    Work,
}

impl Mode {
    /// Whether the argument travels with the request.
    pub fn sends(self) -> bool {
        matches!(self, Mode::In | Mode::InOut)
    }

    /// Whether the argument travels with the reply.
    pub fn receives(self) -> bool {
        matches!(self, Mode::Out | Mode::InOut)
    }

    /// The IDL keyword for this mode.
    pub fn keyword(self) -> &'static str {
        match self {
            Mode::In => "mode_in",
            Mode::Out => "mode_out",
            Mode::InOut => "mode_inout",
            Mode::Work => "mode_work",
        }
    }
}

/// Element base types supported by the Ninf argument marshaller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BaseType {
    /// 32-bit signed integer (`int`).
    Int,
    /// 64-bit signed integer (`long`).
    Long,
    /// IEEE-754 single precision (`float`).
    Float,
    /// IEEE-754 double precision (`double`).
    Double,
}

impl BaseType {
    /// On-wire bytes per element under XDR.
    pub fn wire_bytes(self) -> usize {
        match self {
            BaseType::Int | BaseType::Float => 4,
            BaseType::Long | BaseType::Double => 8,
        }
    }

    /// The IDL keyword for this type.
    pub fn keyword(self) -> &'static str {
        match self {
            BaseType::Int => "int",
            BaseType::Long => "long",
            BaseType::Float => "float",
            BaseType::Double => "double",
        }
    }
}

/// One formal parameter of a `Define`.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Parameter name; referenced by dimension expressions of later params.
    pub name: String,
    /// Transfer mode.
    pub mode: Mode,
    /// Element type.
    pub base: BaseType,
    /// Array dimensions, outermost first. Empty means scalar.
    pub dims: Vec<SizeExpr>,
}

impl Param {
    /// Whether this parameter is a scalar (no dimensions).
    pub fn is_scalar(&self) -> bool {
        self.dims.is_empty()
    }
}

/// A `Calls` clause: calling convention, callee symbol, and the argument
/// names forwarded to it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallsClause {
    /// Calling convention string, e.g. `"C"` or `"Fortran"`.
    pub convention: String,
    /// Symbol of the local library routine the server invokes.
    pub callee: String,
    /// Names of the `Define` parameters forwarded, in callee order.
    pub args: Vec<String>,
}

/// A complete parsed `Define`.
#[derive(Debug, Clone, PartialEq)]
pub struct Define {
    /// Exported routine name (what clients pass to `Ninf_call`).
    pub name: String,
    /// Formal parameters in declaration order.
    pub params: Vec<Param>,
    /// Documentation string, if present.
    pub doc: Option<String>,
    /// `Required` object files / libraries for server-side linking.
    pub required: Vec<String>,
    /// The `Calls` clause, if present.
    pub calls: Option<CallsClause>,
}

impl Define {
    /// Names of scalar input parameters, in declaration order.
    ///
    /// These are exactly the values a dimension expression may reference, and
    /// the values the client must place in the call header before any array
    /// payload can be sized.
    pub fn scalar_inputs(&self) -> impl Iterator<Item = &Param> {
        self.params
            .iter()
            .filter(|p| p.is_scalar() && p.mode.sends())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_directions() {
        assert!(Mode::In.sends() && !Mode::In.receives());
        assert!(!Mode::Out.sends() && Mode::Out.receives());
        assert!(Mode::InOut.sends() && Mode::InOut.receives());
        assert!(!Mode::Work.sends() && !Mode::Work.receives());
    }

    #[test]
    fn wire_bytes_match_xdr() {
        assert_eq!(BaseType::Int.wire_bytes(), 4);
        assert_eq!(BaseType::Float.wire_bytes(), 4);
        assert_eq!(BaseType::Long.wire_bytes(), 8);
        assert_eq!(BaseType::Double.wire_bytes(), 8);
    }

    #[test]
    fn keywords_roundtrip_naming() {
        for m in [Mode::In, Mode::Out, Mode::InOut, Mode::Work] {
            assert!(m.keyword().starts_with("mode_"));
        }
        for b in [
            BaseType::Int,
            BaseType::Long,
            BaseType::Float,
            BaseType::Double,
        ] {
            assert!(!b.keyword().is_empty());
        }
    }
}
