//! Property tests for the IDL pipeline: random dimension expressions are
//! printed as IDL source, parsed back, compiled to bytecode, shipped through
//! XDR, and must evaluate identically to direct AST evaluation.

use std::collections::BTreeMap;

use ninf_idl::compile::CompiledInterface;
use ninf_idl::expr::{BinOp, SizeExpr};
use ninf_idl::{parse_one, IdlError};
use ninf_xdr::{XdrDecoder, XdrEncoder};
use proptest::prelude::*;

/// Random expression over the scalar `n`, with small constants so most
/// evaluations stay positive and in range.
fn arb_expr() -> impl Strategy<Value = SizeExpr> {
    let leaf = prop_oneof![
        (1i64..20).prop_map(SizeExpr::Const),
        Just(SizeExpr::Var("n".into())),
    ];
    leaf.prop_recursive(3, 24, 2, |inner| {
        (
            inner.clone(),
            inner,
            prop_oneof![Just(BinOp::Add), Just(BinOp::Mul)],
        )
            .prop_map(|(l, r, op)| SizeExpr::binary(op, l, r))
    })
}

proptest! {
    /// Printing an expression as a dimension, parsing the Define, compiling,
    /// and evaluating the bytecode gives the same extent as evaluating the
    /// original tree directly.
    #[test]
    fn parse_compile_eval_agree(expr in arb_expr(), n in 1i64..100) {
        let src = format!(
            "Define f(mode_in int n, mode_out double v[{expr}]) \"generated\";"
        );
        let def = parse_one(&src).unwrap();
        let iface = CompiledInterface::compile(&def).unwrap();

        let mut bindings = BTreeMap::new();
        bindings.insert("n", n);
        let direct = expr.eval(&bindings);
        let via_layout = iface.layout(&[("n", n)]);

        match (direct, via_layout) {
            (Ok(extent), Ok(layout)) => prop_assert_eq!(layout[1].count as i64, extent),
            (Err(_), Err(_)) => {}
            (d, v) => prop_assert!(false, "divergence: direct={d:?} layout={v:?}"),
        }
    }

    /// Compiled interfaces survive XDR roundtrips regardless of expression shape.
    #[test]
    fn compiled_interface_xdr_roundtrip(expr in arb_expr()) {
        let src = format!(
            "Define f(mode_in int n, mode_inout double v[{expr}][2]) \"generated\";"
        );
        let def = parse_one(&src).unwrap();
        let iface = CompiledInterface::compile(&def).unwrap();
        let mut enc = XdrEncoder::new();
        iface.encode_xdr(&mut enc);
        let wire = enc.finish();
        let back = CompiledInterface::decode_xdr(&mut XdrDecoder::new(&wire)).unwrap();
        prop_assert_eq!(back, iface);
    }

    /// The parser never panics on arbitrary printable input.
    #[test]
    fn parser_never_panics(src in "\\PC{0,200}") {
        let _ = ninf_idl::parse(&src);
    }

    /// Request/reply byte accounting is consistent with the full layout.
    #[test]
    fn byte_accounting_consistent(n in 1i64..200) {
        for iface in ninf_idl::stdlib_interfaces() {
            let scalars: Vec<(&str, i64)> = iface
                .scalar_table
                .iter()
                .map(|s| (s.as_str(), n))
                .collect();
            let layout = match iface.layout(&scalars) {
                Ok(l) => l,
                Err(IdlError::Eval(_)) => continue,
                Err(e) => return Err(TestCaseError::fail(format!("{e}"))),
            };
            let arrays: usize = layout
                .iter()
                .filter(|l| {
                    iface.params.iter().any(|p| p.name == l.name && !p.is_scalar())
                })
                .map(|l| {
                    let mut total = 0;
                    if l.mode.sends() { total += l.bytes; }
                    if l.mode.receives() { total += l.bytes; }
                    total
                })
                .sum();
            let req = iface.request_bytes(&scalars).unwrap();
            let rep = iface.reply_bytes(&scalars).unwrap();
            prop_assert_eq!(req + rep, arrays, "interface {}", iface.name);
        }
    }
}
