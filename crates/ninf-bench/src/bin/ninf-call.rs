//! `ninf-call` — command-line Ninf client.
//!
//! ```text
//! ninf-call [--deadline <secs>] [--retries <n>] <addr> <command>
//!
//! ninf-call <addr> list                     # routines the server exports
//! ninf-call <addr> interface <routine>      # show its compiled interface
//! ninf-call <addr> load                     # server load report
//! ninf-call <addr> ep <m>                   # run 2^m EP trials remotely
//! ninf-call <addr> linpack <n>              # generate + solve an n x n system
//! ninf-call <addr> query "<Ninf_query>"     # database query (GET/LIST/INFO/DIMS)
//! ```
//!
//! `--deadline` bounds every connect/read/write on the wire; a server that
//! accepts but never replies then fails with a typed timeout instead of
//! hanging the call. `--retries` re-dials the server with exponential
//! backoff on retryable (non-remote) errors.

use std::time::Duration;

use ninf_client::{CallOptions, NinfClient};
use ninf_protocol::Value;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut options = CallOptions::default();
    while let Some(flag) = args.first().filter(|a| a.starts_with("--")).cloned() {
        match flag.as_str() {
            "--deadline" => {
                args.remove(0);
                let secs: f64 = parse_num(args.first(), "--deadline needs seconds");
                options.deadline = Some(Duration::from_secs_f64(secs));
                args.remove(0);
            }
            "--retries" => {
                args.remove(0);
                options.retries = parse_num(args.first(), "--retries needs a count");
                args.remove(0);
            }
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown flag `{other}`")),
        }
    }
    let (addr, cmd, rest) = match args.as_slice() {
        [addr, cmd, rest @ ..] => (addr.clone(), cmd.clone(), rest.to_vec()),
        _ => usage("need <addr> and a command"),
    };

    match cmd.as_str() {
        "list" => {
            let mut client = connect(&addr, options);
            for (name, doc) in client.list_routines().unwrap_or_else(die) {
                println!("{name:<10} {doc}");
            }
        }
        "interface" => {
            let routine = rest
                .first()
                .unwrap_or_else(|| usage("interface needs a routine"));
            let mut client = connect(&addr, options);
            let iface = client.query_interface(routine).unwrap_or_else(die).clone();
            println!("routine : {}", iface.name);
            println!("doc     : {}", iface.doc);
            println!("scalars : {:?}", iface.scalar_table);
            for p in &iface.params {
                println!(
                    "  {:<8} {:?} {} dim(s): {}",
                    p.name,
                    p.base,
                    p.mode.keyword(),
                    p.dims.len()
                );
            }
        }
        "load" => {
            let mut client = connect(&addr, options);
            let r = client.query_load().unwrap_or_else(die);
            println!(
                "pes={} running={} queued={} load={:.2} cpu={:.1}%",
                r.pes, r.running, r.queued, r.load_average, r.cpu_utilization
            );
        }
        "ep" => {
            let m: i32 = parse_num(rest.first(), "ep needs the trial exponent m");
            let mut client = connect(&addr, options);
            let t0 = std::time::Instant::now();
            let out = client.ninf_call("ep", &[Value::Int(m)]).unwrap_or_else(die);
            let dt = t0.elapsed().as_secs_f64();
            let Value::DoubleArray(sums) = &out[0] else {
                unreachable!()
            };
            let Value::DoubleArray(counts) = &out[1] else {
                unreachable!()
            };
            let accepted: f64 = counts.iter().sum();
            println!(
                "2^{m} trials in {dt:.3}s: sx={:.3} sy={:.3} accepted={accepted} ({:.4} of trials)",
                sums[0],
                sums[1],
                accepted / 2f64.powi(m)
            );
        }
        "linpack" => {
            let n: usize = parse_num(rest.first(), "linpack needs the matrix order n");
            let (a, b) = ninf_exec::random_matrix(n, 1997);
            let mut client = connect(&addr, options);
            let t0 = std::time::Instant::now();
            let out = client
                .ninf_call(
                    "linpack",
                    &[
                        Value::Int(n as i32),
                        Value::DoubleArray(a.as_slice().to_vec()),
                        Value::DoubleArray(b.clone()),
                    ],
                )
                .unwrap_or_else(die);
            let dt = t0.elapsed().as_secs_f64();
            let Value::DoubleArray(x) = &out[0] else {
                unreachable!()
            };
            let resid = ninf_exec::residual_check(&a, x, &b);
            let mflops = ninf_exec::linpack_flops(n as u64) as f64 / dt / 1e6;
            println!(
                "solved {n}x{n} in {dt:.3}s ({mflops:.1} Mflops observed), residual check {resid:.2}"
            );
            println!(
                "moved {} bytes out / {} back (8n^2+20n = {})",
                client.bytes_sent(),
                client.bytes_received(),
                ninf_exec::linpack_message_bytes(n as u64)
            );
        }
        "query" => {
            let q = rest.join(" ");
            if q.is_empty() {
                usage("query needs a Ninf_query string");
            }
            let (desc, values) = ninf_db::ninf_query(&addr, &q).unwrap_or_else(|e| {
                eprintln!("error: {e}");
                std::process::exit(1);
            });
            println!("{desc}");
            for v in values {
                match v {
                    Value::DoubleArray(d) if d.len() > 12 => {
                        println!("  [{} doubles] {:?} ...", d.len(), &d[..8])
                    }
                    other => println!("  {other:?}"),
                }
            }
        }
        other => usage(&format!("unknown command `{other}`")),
    }
}

fn connect(addr: &str, options: CallOptions) -> NinfClient {
    let mut attempt = 0u32;
    loop {
        match NinfClient::connect_with(addr, options) {
            Ok(client) => return client,
            Err(e) if attempt < options.retries && e.is_retryable() => {
                std::thread::sleep(options.backoff_delay(attempt, 0));
                attempt += 1;
            }
            Err(e) => {
                eprintln!("cannot connect to {addr}: {e}");
                std::process::exit(1);
            }
        }
    }
}

fn parse_num<T: std::str::FromStr>(v: Option<&String>, msg: &str) -> T {
    v.and_then(|s| s.parse().ok()).unwrap_or_else(|| usage(msg))
}

fn die<T>(e: ninf_protocol::ProtocolError) -> T {
    eprintln!("error: {e}");
    std::process::exit(1);
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!(
        "usage: ninf-call [--deadline <secs>] [--retries <n>] <addr> <list | interface <routine> | load | ep <m> | linpack <n> | query \"...\">"
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}
