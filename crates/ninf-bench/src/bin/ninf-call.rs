//! `ninf-call` — command-line Ninf client.
//!
//! ```text
//! ninf-call [--deadline <secs>] [--retries <n>] [--json] <addr> <command>
//!
//! ninf-call <addr> list                     # routines the server exports
//! ninf-call <addr> interface <routine>      # show its compiled interface
//! ninf-call <addr> load                     # server load report
//! ninf-call <addr> ep <m>                   # run 2^m EP trials remotely
//! ninf-call <addr> linpack <n>              # generate + solve an n x n system
//! ninf-call <addr> query "<Ninf_query>"     # database query (GET/LIST/INFO/DIMS)
//! ```
//!
//! `--deadline` bounds every connect/read/write on the wire; a server that
//! accepts but never replies then fails with a typed timeout instead of
//! hanging the call. `--retries` re-checks-out with exponential backoff on
//! retryable (non-remote) errors. Connections come from the process-wide
//! multiplexed stream pool — every command in one invocation shares a
//! single connection to the server rather than dialing per call. `--json`
//! (for `ep` and `linpack`) emits the call's timing decomposition —
//! connect, interface fetch, marshal, server wall time, transfer, total —
//! plus `stream_reused` (whether the measured call rode an already-open
//! pooled stream) and the argument-cache accounting — `bytes_sent` on the
//! wire, `args_refd` (argument slots shipped as digests), `args_refilled`
//! (slots the server asked back inline) — as one JSON object on stdout
//! instead of prose; the server-side wall time is joined from the server's
//! own §4.1 stats via `QueryStats`.

use std::time::Duration;

use ninf_bench::cli::{parse_args, CliError};
use ninf_client::{CallOptions, CallTiming, NinfClient};
use ninf_protocol::Value;
use ninf_reactor::global_pool;

fn main() {
    let parsed = match parse_args(
        std::env::args().skip(1),
        &["--deadline", "--retries"],
        &["--json"],
    ) {
        Ok(p) => p,
        Err(CliError::Help) => usage(""),
        Err(CliError::Bad(msg)) => usage(&msg),
    };
    let mut options = CallOptions::default();
    match parsed.parse::<f64>("--deadline") {
        Ok(Some(secs)) => options.deadline = Some(Duration::from_secs_f64(secs)),
        Ok(None) => {}
        Err(_) => usage("--deadline needs seconds"),
    }
    match parsed.parse::<u32>("--retries") {
        Ok(Some(n)) => options.retries = n,
        Ok(None) => {}
        Err(_) => usage("--retries needs a count"),
    }
    let json = parsed.has("--json");
    let (addr, cmd, rest) = match parsed.positionals.as_slice() {
        [addr, cmd, rest @ ..] => (addr.clone(), cmd.clone(), rest.to_vec()),
        _ => usage("need <addr> and a command"),
    };
    if json && !matches!(cmd.as_str(), "ep" | "linpack") {
        usage("--json is supported for `ep` and `linpack`");
    }

    match cmd.as_str() {
        "list" => {
            let mut client = connect(&addr, options);
            for (name, doc) in client.list_routines().unwrap_or_else(die) {
                println!("{name:<10} {doc}");
            }
        }
        "interface" => {
            let routine = rest
                .first()
                .unwrap_or_else(|| usage("interface needs a routine"));
            let mut client = connect(&addr, options);
            let iface = client.query_interface(routine).unwrap_or_else(die).clone();
            println!("routine : {}", iface.name);
            println!("doc     : {}", iface.doc);
            println!("scalars : {:?}", iface.scalar_table);
            for p in &iface.params {
                println!(
                    "  {:<8} {:?} {} dim(s): {}",
                    p.name,
                    p.base,
                    p.mode.keyword(),
                    p.dims.len()
                );
            }
        }
        "load" => {
            let mut client = connect(&addr, options);
            let r = client.query_load().unwrap_or_else(die);
            println!(
                "pes={} running={} queued={} load={:.2} cpu={:.1}%",
                r.pes, r.running, r.queued, r.load_average, r.cpu_utilization
            );
        }
        "ep" => {
            let m: i32 = parse_num(rest.first(), "ep needs the trial exponent m");
            let timed = timed_call(&addr, options, "ep", vec![Value::Int(m)]);
            if json {
                print_json("ep", m as i64, None, &timed);
                return;
            }
            let (out, dt) = timed.expect_ok();
            let Value::DoubleArray(sums) = &out[0] else {
                unreachable!()
            };
            let Value::DoubleArray(counts) = &out[1] else {
                unreachable!()
            };
            let accepted: f64 = counts.iter().sum();
            println!(
                "2^{m} trials in {dt:.3}s: sx={:.3} sy={:.3} accepted={accepted} ({:.4} of trials)",
                sums[0],
                sums[1],
                accepted / 2f64.powi(m)
            );
        }
        "linpack" => {
            let n: usize = parse_num(rest.first(), "linpack needs the matrix order n");
            let (a, b) = ninf_exec::random_matrix(n, 1997);
            let timed = timed_call(
                &addr,
                options,
                "linpack",
                vec![
                    Value::Int(n as i32),
                    Value::DoubleArray(a.as_slice().to_vec()),
                    Value::DoubleArray(b.clone()),
                ],
            );
            if json {
                let flops = ninf_exec::linpack_flops(n as u64);
                print_json("linpack", n as i64, Some(flops), &timed);
                return;
            }
            let (out, dt) = timed.expect_ok();
            let Value::DoubleArray(x) = &out[0] else {
                unreachable!()
            };
            let resid = ninf_exec::residual_check(&a, x, &b);
            let mflops = ninf_exec::linpack_flops(n as u64) as f64 / dt / 1e6;
            println!(
                "solved {n}x{n} in {dt:.3}s ({mflops:.1} Mflops observed), residual check {resid:.2}"
            );
            println!(
                "moved {} bytes out / {} back (8n^2+20n = {})",
                timed.bytes_sent,
                timed.bytes_received,
                ninf_exec::linpack_message_bytes(n as u64)
            );
        }
        "query" => {
            let q = rest.join(" ");
            if q.is_empty() {
                usage("query needs a Ninf_query string");
            }
            let (desc, values) = ninf_db::ninf_query(&addr, &q).unwrap_or_else(|e| {
                eprintln!("error: {e}");
                std::process::exit(1);
            });
            println!("{desc}");
            for v in values {
                match v {
                    Value::DoubleArray(d) if d.len() > 12 => {
                        println!("  [{} doubles] {:?} ...", d.len(), &d[..8])
                    }
                    other => println!("  {other:?}"),
                }
            }
        }
        other => usage(&format!("unknown command `{other}`")),
    }
}

/// One measured call: outcome, timing decomposition, and the server-side
/// wall time joined from `QueryStats`.
struct TimedCall {
    result: Result<Vec<Value>, ninf_protocol::ProtocolError>,
    /// Initial dial (the in-call `timing.connect` only counts redials).
    connect: f64,
    timing: CallTiming,
    /// Server-observed wall time of this call (`T_complete − T_submit` on
    /// the server clock), when the stats join succeeded.
    server_wall: Option<f64>,
    /// Whether the measured call's checkout reused an already-open pooled
    /// stream.
    stream_reused: bool,
    bytes_sent: usize,
    bytes_received: usize,
}

impl TimedCall {
    fn expect_ok(&self) -> (&[Value], f64) {
        match &self.result {
            Ok(out) => (out, self.timing.total),
            Err(e) => die_ref(e),
        }
    }
}

/// Mark the server's stats cursor on one pooled checkout, issue the call
/// on another (which reuses the stream the cursor client dialed), and join
/// the server-side record for it.
fn timed_call(addr: &str, options: CallOptions, routine: &str, args: Vec<Value>) -> TimedCall {
    // The cursor client's checkout dials the pooled stream; the measured
    // call below then checks the same stream out again — a pool hit.
    let mut stats = connect(addr, options);
    let cursor = stats.query_stats(u64::MAX).map(|(_, total, _)| total).ok();
    let t0 = std::time::Instant::now();
    let mut client = connect(addr, options);
    let connect = t0.elapsed().as_secs_f64();
    let stream_reused = client.stream_reused();
    let result = client.ninf_call(routine, &args);
    let timing = client.last_timing().unwrap_or_default();
    let server_wall = cursor.and_then(|since| {
        let (_, _, records) = stats.query_stats(since).ok()?;
        records
            .iter()
            .rev()
            .find(|r| r.routine == routine)
            .map(|r| r.total())
    });
    TimedCall {
        result,
        connect,
        timing,
        server_wall,
        stream_reused,
        bytes_sent: client.bytes_sent(),
        bytes_received: client.bytes_received(),
    }
}

/// Emit the per-call timing decomposition as one JSON object on stdout.
fn print_json(routine: &str, n: i64, flops: Option<u64>, timed: &TimedCall) {
    println!(
        "{}",
        serde_json::to_string_pretty(&call_json(routine, n, flops, timed)).expect("serialize")
    );
    if timed.result.is_err() {
        std::process::exit(1);
    }
}

/// The `--json` document. The key set is documented in
/// `docs/OBSERVABILITY.md` ("`ninf-call --json` schema") and a test below
/// holds the two in lockstep.
fn call_json(routine: &str, n: i64, flops: Option<u64>, timed: &TimedCall) -> serde_json::Value {
    let t = timed.timing;
    let mut timings = serde_json::Map::new();
    timings.insert(
        "connect".into(),
        serde_json::json!(timed.connect + t.connect),
    );
    timings.insert("interface".into(), serde_json::json!(t.interface));
    timings.insert("marshal".into(), serde_json::json!(t.marshal));
    timings.insert("roundtrip".into(), serde_json::json!(t.roundtrip));
    if let Some(wall) = timed.server_wall {
        timings.insert("server_wall".into(), serde_json::json!(wall));
        // Wire time: what the round trip spent outside the server. Clamped
        // at zero — client and server clocks are not synchronized, so the
        // raw difference can go (meaninglessly) negative; the raw value is
        // surfaced separately as `clock_skew` so skew stays observable.
        timings.insert(
            "transfer".into(),
            serde_json::json!((t.roundtrip - wall).max(0.0)),
        );
        timings.insert("clock_skew".into(), serde_json::json!(t.roundtrip - wall));
    }
    timings.insert("total".into(), serde_json::json!(t.total));
    let mut doc = serde_json::Map::new();
    doc.insert("routine".into(), serde_json::json!(routine));
    doc.insert("n".into(), serde_json::json!(n));
    doc.insert("ok".into(), serde_json::json!(timed.result.is_ok()));
    if let Err(e) = &timed.result {
        doc.insert("error".into(), serde_json::json!(e.to_string()));
    }
    doc.insert("timings".into(), serde_json::Value::Object(timings));
    doc.insert(
        "stream_reused".into(),
        serde_json::json!(timed.stream_reused),
    );
    doc.insert("attempts".into(), serde_json::json!(t.attempts));
    doc.insert(
        "request_bytes".into(),
        serde_json::json!(t.request_bytes as u64),
    );
    doc.insert(
        "reply_bytes".into(),
        serde_json::json!(t.reply_bytes as u64),
    );
    doc.insert(
        "bytes_sent".into(),
        serde_json::json!(timed.bytes_sent as u64),
    );
    doc.insert("args_refd".into(), serde_json::json!(t.args_refd));
    doc.insert("args_refilled".into(), serde_json::json!(t.args_refilled));
    if let (Some(flops), true) = (flops, timed.result.is_ok()) {
        doc.insert(
            "mflops".into(),
            serde_json::json!(flops as f64 / t.total / 1e6),
        );
    }
    serde_json::Value::Object(doc)
}

/// Check a pooled client out of the process-wide stream pool (dialing only
/// when no live stream to `addr` exists yet).
fn connect(addr: &str, options: CallOptions) -> NinfClient {
    let mut attempt = 0u32;
    loop {
        match NinfClient::connect_pooled(addr, options, global_pool().clone()) {
            Ok(client) => return client,
            Err(e) if attempt < options.retries && e.is_retryable() => {
                std::thread::sleep(options.backoff_delay(attempt, 0));
                attempt += 1;
            }
            Err(e) => {
                eprintln!("cannot connect to {addr}: {e}");
                std::process::exit(1);
            }
        }
    }
}

fn parse_num<T: std::str::FromStr>(v: Option<&String>, msg: &str) -> T {
    v.and_then(|s| s.parse().ok()).unwrap_or_else(|| usage(msg))
}

fn die<T>(e: ninf_protocol::ProtocolError) -> T {
    die_ref(&e)
}

fn die_ref<T>(e: &ninf_protocol::ProtocolError) -> T {
    eprintln!("error: {e}");
    if let ninf_protocol::ProtocolError::UnsupportedVersion { got, want } = e {
        if *got < *want {
            eprintln!(
                "hint: the server speaks frame version {got}, this client needs v{want} \
                 (checksummed framing); upgrade the server — retrying will not help"
            );
        } else {
            eprintln!(
                "hint: the server speaks frame version {got}, newer than this client's \
                 v{want}; upgrade this client — retrying will not help"
            );
        }
    }
    std::process::exit(1);
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!(
        "usage: ninf-call [--deadline <secs>] [--retries <n>] [--json] <addr> \
         <list | interface <routine> | load | ep <m> | linpack <n> | query \"...\">"
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn timed(ok: bool) -> TimedCall {
        TimedCall {
            result: if ok {
                Ok(vec![])
            } else {
                Err(ninf_protocol::ProtocolError::Frame("boom".into()))
            },
            connect: 0.001,
            timing: CallTiming::default(),
            server_wall: Some(0.5),
            stream_reused: true,
            bytes_sent: 10,
            bytes_received: 10,
        }
    }

    /// Flatten a document's keys the way the doc table writes them:
    /// top-level names plus `timings.<name>` for the nested object.
    fn flat_keys(doc: &serde_json::Value, out: &mut BTreeSet<String>) {
        for (k, v) in doc.as_object().expect("object").iter() {
            if k == "timings" {
                for (tk, _) in v.as_object().expect("timings object").iter() {
                    out.insert(format!("timings.{tk}"));
                }
            } else {
                out.insert(k.clone());
            }
        }
    }

    /// The `--json` key set and the table in docs/OBSERVABILITY.md must
    /// not drift apart: every backticked key in the schema table appears
    /// in an emitted document and vice versa. The union of a successful
    /// call (with flops, with a stats join) and a failed one covers every
    /// optional key.
    #[test]
    fn json_schema_matches_documented_key_set() {
        let mut emitted = BTreeSet::new();
        flat_keys(
            &call_json("linpack", 600, Some(1_000_000), &timed(true)),
            &mut emitted,
        );
        flat_keys(&call_json("ep", 20, None, &timed(false)), &mut emitted);

        let doc = std::fs::read_to_string(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../docs/OBSERVABILITY.md"
        ))
        .expect("read docs/OBSERVABILITY.md");
        let section = doc
            .split("## `ninf-call --json` schema")
            .nth(1)
            .expect("doc has the `ninf-call --json` schema section")
            .split("\n## ")
            .next()
            .unwrap();
        let documented: BTreeSet<String> = section
            .lines()
            .filter_map(|l| {
                let rest = l.strip_prefix("| `")?;
                Some(rest.split('`').next()?.to_string())
            })
            .collect();
        assert!(!documented.is_empty(), "schema table parsed empty");
        assert_eq!(
            documented, emitted,
            "docs/OBSERVABILITY.md schema table and call_json() disagree"
        );
    }
}
