//! codec-bench: measure the v2 zero-copy codec against the v1 per-element
//! path and regenerate `results/BENCH_codec.json`.
//!
//! Two claims are pinned by the emitted JSON:
//!
//! 1. **Codec throughput** — encode+decode of a 1024×1024 f64 matrix via
//!    the chunked fast path is ≥3× the per-element `put_f64`/`get_f64`
//!    loop the v1 codec used.
//! 2. **No end-to-end regression** — live `lan-linpack` mean Mflops at
//!    c = 1/4/8 (seed 1997) under checksummed v2 framing stays at the
//!    level recorded in `results/BENCH_loadgen.json`.
//!
//! Usage: `codec-bench [--out results/BENCH_codec.json] [--quick]`
//! `--quick` (or `NINF_BENCH_QUICK=1`) trims samples for CI smoke runs.

use std::time::Instant;

use ninf_loadgen::{run_scenario, scenario};
use ninf_xdr::{Bytes, XdrDecoder, XdrEncoder};

const N: usize = 1024;
const SEED: u64 = 1997;

fn encode_fast(data: &[f64]) -> Bytes {
    let mut enc = XdrEncoder::with_capacity(data.len() * 8 + 4);
    enc.put_f64_array(data);
    enc.finish()
}

fn encode_legacy(data: &[f64]) -> Bytes {
    let mut enc = XdrEncoder::with_capacity(data.len() * 8 + 4);
    enc.put_u32(data.len() as u32);
    for &x in data {
        enc.put_f64(x);
    }
    enc.finish()
}

fn decode_fast(wire: &[u8]) -> Vec<f64> {
    let mut dec = XdrDecoder::new(wire);
    dec.get_f64_array().expect("valid wire")
}

fn decode_legacy(wire: &[u8]) -> Vec<f64> {
    let mut dec = XdrDecoder::new(wire);
    let n = dec.get_u32().expect("length") as usize;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(dec.get_f64().expect("element"));
    }
    out
}

/// Median seconds per call of `f` over `samples` timed runs.
fn median_secs<O>(samples: usize, mut f: impl FnMut() -> O) -> f64 {
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            std::hint::black_box(f());
            start.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|a, b| a.total_cmp(b));
    times[times.len() / 2]
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path = "results/BENCH_codec.json".to_string();
    let mut quick = std::env::var_os("NINF_BENCH_QUICK").is_some();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => out_path = it.next().expect("--out takes a path").clone(),
            "--quick" => quick = true,
            other => {
                eprintln!("usage: codec-bench [--out <path>] [--quick] (got {other})");
                std::process::exit(2);
            }
        }
    }
    let samples = if quick { 5 } else { 15 };
    let bytes = (N * N * 8) as f64;
    let gib = 1024.0 * 1024.0 * 1024.0;

    // Measure on a worker thread, where real encodes happen (client call
    // threads, server connection threads). The main thread's glibc arena
    // trims its heap top back to the OS after each multi-megabyte free, so
    // every iteration would re-fault its pages in and measure the kernel,
    // not the codec.
    let (t_enc_fast, t_enc_legacy, t_dec_fast, t_dec_legacy) = std::thread::spawn(move || {
        let data: Vec<f64> = (0..N * N).map(|i| i as f64 * 0.5).collect();
        let wire = encode_fast(&data);
        assert_eq!(
            wire,
            encode_legacy(&data),
            "fast and legacy encodings must be byte-identical"
        );
        assert_eq!(decode_fast(&wire), data, "fast decode must round-trip");
        (
            median_secs(samples, || encode_fast(&data)),
            median_secs(samples, || encode_legacy(&data)),
            median_secs(samples, || decode_fast(&wire)),
            median_secs(samples, || decode_legacy(&wire)),
        )
    })
    .join()
    .expect("measurement thread");
    let combined_speedup = (t_enc_legacy + t_dec_legacy) / (t_enc_fast + t_dec_fast);
    eprintln!(
        "encode: fast {:.1} ms vs legacy {:.1} ms ({:.2}x); decode: fast {:.1} ms vs legacy {:.1} ms ({:.2}x); combined {combined_speedup:.2}x",
        t_enc_fast * 1e3,
        t_enc_legacy * 1e3,
        t_enc_legacy / t_enc_fast,
        t_dec_fast * 1e3,
        t_dec_legacy * 1e3,
        t_dec_legacy / t_dec_fast,
    );

    // End-to-end: live lan-linpack under v2 framing, same seed and client
    // counts as results/BENCH_loadgen.json.
    let sc = scenario("lan-linpack").expect("lan-linpack scenario exists");
    let mut linpack = Vec::new();
    for clients in [1usize, 4, 8] {
        let report = run_scenario(&sc, clients, SEED)
            .unwrap_or_else(|e| panic!("lan-linpack c={clients} failed: {e}"));
        eprintln!(
            "lan-linpack c={clients}: {:.0} Mflops mean, {} ok / {} calls",
            report.fleet.perf.mean, report.fleet.ok, report.fleet.calls
        );
        linpack.push(serde_json::json!({
            "clients": clients,
            "mflops_mean": report.fleet.perf.mean,
            "ok": report.fleet.ok,
            "calls": report.fleet.calls,
        }));
    }

    let doc = serde_json::json!({
        "bench": "codec",
        "seed": SEED,
        "matrix_n": N,
        "payload_bytes": bytes as u64,
        "samples": samples,
        "encode": {
            "fast_secs": t_enc_fast,
            "legacy_secs": t_enc_legacy,
            "fast_gib_per_sec": bytes / t_enc_fast / gib,
            "legacy_gib_per_sec": bytes / t_enc_legacy / gib,
            "speedup": t_enc_legacy / t_enc_fast,
        },
        "decode": {
            "fast_secs": t_dec_fast,
            "legacy_secs": t_dec_legacy,
            "fast_gib_per_sec": bytes / t_dec_fast / gib,
            "legacy_gib_per_sec": bytes / t_dec_legacy / gib,
            "speedup": t_dec_legacy / t_dec_fast,
        },
        "combined_speedup": combined_speedup,
        "lan_linpack": linpack,
        "baseline": {
            "file": "results/BENCH_loadgen.json",
            "note": "lan-linpack mflops_mean at c=1/4/8 must be no worse than the pre-v2 run recorded there",
        },
    });
    std::fs::write(
        &out_path,
        serde_json::to_string_pretty(&doc).expect("serialize") + "\n",
    )
    .unwrap_or_else(|e| panic!("write {out_path}: {e}"));
    eprintln!("wrote {out_path}");
    if combined_speedup < 3.0 {
        eprintln!("WARNING: combined speedup {combined_speedup:.2}x is below the 3x target");
        // Quick mode is a smoke run (few samples, noisy shared runners):
        // it fails on panic or a broken codec, not on a noisy ratio.
        if !quick {
            std::process::exit(1);
        }
    }
}
