//! `ninfd` — run a Ninf computational server (and optionally a database
//! server) from the command line.
//!
//! ```text
//! ninfd [--addr 0.0.0.0:5656] [--pes 4] [--mode task|data] \
//!       [--policy fcfs|sjf|fpfs|fpmpfs] [--core reactor|threaded] \
//!       [--workers N] [--db-addr 0.0.0.0:5657] \
//!       [--trace] [--metrics-addr 0.0.0.0:9156] [--windows-ms 1000] \
//!       [--wan bw=4m,delay=20ms,loss=0.01]
//! ```
//!
//! Serves the stdlib routines (dmmul, dgefa, dgesl, linpack, ep, dos) until
//! killed. With `--db-addr`, also serves the builtin numerical datasets.
//! `--trace` arms the in-process flight recorder (same effect as setting
//! `NINF_TRACE=1`): spans are recorded for traced calls and served over the
//! `QueryTrace` protocol message. `--metrics-addr` exposes the server's
//! metrics registry as Prometheus text on a plain-TCP HTTP endpoint.
//! `--windows-ms` arms time-series telemetry: the registry captures a
//! metric window snapshot every N ms into a bounded ring, served over the
//! `QueryMetrics` protocol message (sweep controllers poll it). Without the
//! flag the window path is disarmed and costs nothing. `--wan <spec>`
//! shapes the server's reply direction through a shared emulated WAN link
//! (token-bucket bandwidth, propagation delay; see `LinkShape::parse` for
//! the grammar). Shaping lives in the per-connection write path, so it
//! requires `--core threaded` — the reactor's workers must never sleep.

use ninf_server::{
    builtin::register_stdlib, ExecMode, NinfServer, Registry, SchedPolicy, ServerConfig, ServerCore,
};

fn main() {
    let mut addr = "127.0.0.1:5656".to_string();
    let mut db_addr: Option<String> = None;
    let mut pes = 4usize;
    let mut mode = ExecMode::TaskParallel;
    let mut policy = SchedPolicy::Fcfs;
    let mut threaded_core = false;
    let mut workers = 8usize;
    let mut trace = false;
    let mut metrics_addr: Option<String> = None;
    let mut arg_cache_bytes = ninf_server::DEFAULT_ARG_CACHE_BYTES;
    let mut windows_ms: Option<u64> = None;
    let mut wan: Option<ninf_protocol::LinkShape> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => addr = args.next().unwrap_or_else(|| usage("--addr needs a value")),
            "--db-addr" => {
                db_addr = Some(
                    args.next()
                        .unwrap_or_else(|| usage("--db-addr needs a value")),
                )
            }
            "--pes" => {
                pes = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--pes needs a positive integer"))
            }
            "--mode" => {
                mode = match args.next().as_deref() {
                    Some("task") => ExecMode::TaskParallel,
                    Some("data") => ExecMode::DataParallel,
                    _ => usage("--mode is task or data"),
                }
            }
            "--policy" => {
                policy = match args.next().as_deref() {
                    Some("fcfs") => SchedPolicy::Fcfs,
                    Some("sjf") => SchedPolicy::Sjf,
                    Some("fpfs") => SchedPolicy::Fpfs,
                    Some("fpmpfs") => SchedPolicy::Fpmpfs,
                    _ => usage("--policy is fcfs|sjf|fpfs|fpmpfs"),
                }
            }
            "--core" => {
                threaded_core = match args.next().as_deref() {
                    Some("reactor") => false,
                    Some("threaded") => true,
                    _ => usage("--core is reactor or threaded"),
                }
            }
            "--workers" => {
                workers = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--workers needs a positive integer"))
            }
            "--trace" => trace = true,
            "--arg-cache-bytes" => {
                arg_cache_bytes = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--arg-cache-bytes needs a byte count (0 disables)"))
            }
            "--metrics-addr" => {
                metrics_addr = Some(
                    args.next()
                        .unwrap_or_else(|| usage("--metrics-addr needs a value")),
                )
            }
            "--windows-ms" => {
                windows_ms = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&ms| ms > 0)
                        .unwrap_or_else(|| {
                            usage("--windows-ms needs a positive millisecond count")
                        }),
                )
            }
            "--wan" => {
                let spec = args.next().unwrap_or_else(|| usage("--wan needs a spec"));
                wan = Some(ninf_protocol::LinkShape::parse(&spec).unwrap_or_else(|e| {
                    usage(&format!("--wan: {e}"));
                }));
            }
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown argument `{other}`")),
        }
    }

    if wan.is_some() && !threaded_core {
        usage("--wan requires --core threaded (reactor workers must not sleep)");
    }
    if trace {
        ninf_obs::recorder::global().set_enabled(true);
    }
    let mut registry = Registry::new();
    register_stdlib(&mut registry, matches!(mode, ExecMode::DataParallel));
    let core = if threaded_core {
        ServerCore::ThreadPerConnection
    } else {
        ServerCore::Reactor { workers }
    };
    let server = NinfServer::start(
        &addr,
        registry,
        ServerConfig {
            pes,
            mode,
            policy,
            core,
            arg_cache_bytes,
            wan,
        },
    )
    .unwrap_or_else(|e| {
        eprintln!("cannot bind {addr}: {e}");
        std::process::exit(1);
    });
    eprintln!(
        "ninfd: serving dmmul dgefa dgesl dgeco linpack ep dos at {} ({} PEs, {}, {}, {} core)",
        server.addr(),
        pes,
        mode.name(),
        policy.name(),
        if threaded_core { "threaded" } else { "reactor" }
    );
    if let Some(shape) = wan {
        eprintln!("ninfd: reply direction shaped as a WAN link: {shape}");
    }

    if let Some(a) = metrics_addr {
        match ninf_obs::http::serve_metrics(server.metrics().registry().clone(), &a) {
            Ok(bound) => eprintln!("ninfd: metrics at http://{bound}/metrics"),
            Err(e) => {
                eprintln!("cannot bind metrics on {a}: {e}");
                std::process::exit(1);
            }
        }
    }
    if trace || ninf_obs::recorder::global().enabled() {
        eprintln!("ninfd: flight recorder armed (QueryTrace serves spans)");
    }
    if let Some(ms) = windows_ms {
        server
            .metrics()
            .registry()
            .start_window_sampler(std::time::Duration::from_millis(ms));
        eprintln!("ninfd: metric windows armed at {ms} ms (QueryMetrics serves series)");
    }

    let _db = db_addr.map(|a| {
        let db = ninf_db::DbServer::start(&a, ninf_db::builtin_datasets()).unwrap_or_else(|e| {
            eprintln!("cannot bind database on {a}: {e}");
            std::process::exit(1);
        });
        eprintln!("ninfd: database server at {}", db.addr());
        db
    });

    // Periodic one-line status, forever.
    loop {
        std::thread::sleep(std::time::Duration::from_secs(30));
        let report = server.stats().load_report();
        eprintln!(
            "ninfd: {} calls done, {} running, {} queued",
            server.stats().completed(),
            report.running,
            report.queued
        );
    }
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!(
        "usage: ninfd [--addr host:port] [--pes N] [--mode task|data] \
         [--policy fcfs|sjf|fpfs|fpmpfs] [--core reactor|threaded] [--workers N] \
         [--db-addr host:port] [--trace] [--metrics-addr host:port] \
         [--arg-cache-bytes N] [--windows-ms N] [--wan spec]"
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}
