//! `ninf-trace` — join per-process flight-recorder spans into one
//! cross-process call tree and export Chrome `trace_event` JSON.
//!
//! ```text
//! ninf-trace demo  [--n 64] [--out trace.json]
//! ninf-trace fetch <addr>... [--trace <id>] [--merge <chrome.json>] [--out <path>]
//! ninf-trace sim   [--clients 4] [--n 600] [--out <path>]
//! ninf-trace diff  <a.json> <b.json>
//! ninf-trace check <chrome.json> [--slack-us 1000]
//! ninf-trace metrics <addr>
//! ```
//!
//! * `demo` runs one metaserver-routed `Ninf_call` against an in-process
//!   fleet with tracing armed and prints the resulting call tree — the
//!   zero-setup way to see the span schema.
//! * `fetch` drains the flight recorder of live processes over the
//!   `QueryTrace` protocol message (`--trace` limits to one trace id, as
//!   printed by `ninf-load`'s CSV; ids parse as hex when `0x`-prefixed or
//!   16 digits wide, decimal otherwise) and joins them — `--merge` folds in
//!   spans already exported to a Chrome JSON file (e.g. by
//!   `ninf-load --trace-out`).
//! * `sim` renders a simulated LAN run in the same span schema, so a live
//!   trace and its simulated twin diff side by side with `diff`.
//! * `check` validates a Chrome trace file: it must parse, spans must nest
//!   within their parents, and every client call span must have matching
//!   server spans (CI uses this as the trace smoke test).
//! * `metrics` is the `curl`-equivalent read of a metrics endpoint.
//!
//! Output files load directly in Perfetto (<https://ui.perfetto.dev>) or
//! `chrome://tracing`.

use ninf_client::NinfClient;
use ninf_metaserver::{Balancing, Directory, Metaserver, ServerEntry};
use ninf_obs::export::{
    chrome_trace_json, client_server_coverage, dedup, diff_summary, parse_chrome_trace,
    render_tree, validate_nesting,
};
use ninf_obs::{recorder, Span, TraceContext};
use ninf_protocol::Value;
use ninf_server::{
    builtin::register_stdlib, ExecMode, NinfServer, Registry, SchedPolicy, ServerConfig,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        usage("a subcommand is required");
    };
    match cmd.as_str() {
        "demo" => demo(&args[1..]),
        "fetch" => fetch(&args[1..]),
        "sim" => sim(&args[1..]),
        "diff" => diff(&args[1..]),
        "check" => check(&args[1..]),
        "metrics" => metrics(&args[1..]),
        "--help" | "-h" => usage(""),
        other => usage(&format!("unknown subcommand `{other}`")),
    }
}

/// Pull `--flag value` out of an argument list; the rest are positionals.
fn split_flags(args: &[String], flags: &[&str]) -> (Vec<(String, String)>, Vec<String>) {
    let mut values = Vec::new();
    let mut positional = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if flags.contains(&a.as_str()) {
            match it.next() {
                Some(v) => values.push((a.clone(), v.clone())),
                None => usage(&format!("{a} needs a value")),
            }
        } else if a == "--help" || a == "-h" {
            usage("");
        } else if a.starts_with("--") {
            usage(&format!("unknown flag `{a}`"));
        } else {
            positional.push(a.clone());
        }
    }
    (values, positional)
}

fn flag_value<'a>(values: &'a [(String, String)], flag: &str) -> Option<&'a str> {
    values
        .iter()
        .find(|(f, _)| f == flag)
        .map(|(_, v)| v.as_str())
}

/// Trace ids print as 16 hex digits in the load generator's CSV; accept
/// that, `0x`-prefixed hex, or plain decimal.
fn parse_trace_id(raw: &str) -> u64 {
    let parsed = if let Some(hex) = raw.strip_prefix("0x") {
        u64::from_str_radix(hex, 16)
    } else if raw.len() == 16 {
        u64::from_str_radix(raw, 16)
    } else {
        raw.parse()
    };
    parsed.unwrap_or_else(|_| usage(&format!("`{raw}` is not a trace id")))
}

fn write_or_print(spans: &[Span], out: Option<&str>) {
    match out {
        Some(path) => {
            std::fs::write(path, chrome_trace_json(spans)).unwrap_or_else(|e| {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(1);
            });
            eprintln!(
                "# wrote {} span(s) to {path} (open in Perfetto)",
                spans.len()
            );
        }
        None => eprintln!(
            "# {} span(s); pass --out <path> for Chrome JSON",
            spans.len()
        ),
    }
}

/// One traced, metaserver-routed call against an in-process fleet.
fn demo(args: &[String]) {
    let (values, extra) = split_flags(args, &["--n", "--out"]);
    if let Some(extra) = extra.first() {
        usage(&format!("unexpected argument `{extra}`"));
    }
    let n: usize = flag_value(&values, "--n")
        .map(|v| v.parse().unwrap_or_else(|_| usage("--n needs an integer")))
        .unwrap_or(64);

    recorder::global().set_enabled(true);
    let mut dir = Directory::new();
    let mut servers = Vec::new();
    for i in 0..2 {
        let mut registry = Registry::new();
        register_stdlib(&mut registry, false);
        let server = NinfServer::start(
            "127.0.0.1:0",
            registry,
            ServerConfig {
                pes: 2,
                mode: ExecMode::TaskParallel,
                policy: SchedPolicy::Fcfs,
                core: Default::default(),
                ..ServerConfig::default()
            },
        )
        .expect("start in-process server");
        dir.register(ServerEntry {
            name: format!("node{i}"),
            addr: server.addr().to_string(),
            bandwidth_bytes_per_sec: 10e6,
            linpack_mflops: 100.0,
        });
        servers.push(server);
    }
    let meta = Metaserver::new(dir, Balancing::RoundRobin);

    // The client's own root span, parent of everything downstream.
    let ctx = TraceContext::root();
    let start = ninf_obs::now_us();
    let (a, b) = ninf_exec::matgen(n);
    let call_args = vec![
        Value::Int(n as i32),
        Value::DoubleArray(a.as_slice().to_vec()),
        Value::DoubleArray(b),
    ];
    let (outcome, trace_id) = meta.ninf_call_traced("linpack", &call_args, Some(ctx));
    recorder::global().record(
        Span::at(ctx, "call", "client", start)
            .with_detail(format!("routine=linpack n={n} ok={}", outcome.is_ok())),
    );
    outcome.expect("demo call succeeds");
    assert_eq!(trace_id, ctx.trace_id);

    // The server records its "reply" span just after the bytes go out, so
    // give its connection thread a beat before draining the recorder.
    std::thread::sleep(std::time::Duration::from_millis(20));
    let spans = dedup(&recorder::global().snapshot(trace_id));
    println!("{}", render_tree(&spans));
    // Same-process clocks: the tree must nest and cover client → server.
    // The slack absorbs scheduling skew — the server stamps its "reply"
    // span end after `send` returns, which can trail the client's read.
    validate_nesting(&spans, 10_000).expect("spans nest");
    let covered = client_server_coverage(&spans).expect("client calls reach the server");
    eprintln!(
        "# trace {trace_id:016x}: {} span(s), {} client call(s) with server spans",
        spans.len(),
        covered
    );
    write_or_print(&spans, flag_value(&values, "--out"));
    for s in servers {
        s.shutdown();
    }
}

/// Drain live processes' recorders over QueryTrace and join the spans.
fn fetch(args: &[String]) {
    let (values, addrs) = split_flags(args, &["--trace", "--merge", "--out", "--slack-us"]);
    let trace_id = flag_value(&values, "--trace")
        .map(parse_trace_id)
        .unwrap_or(0);
    let mut spans: Vec<Span> = Vec::new();
    if let Some(path) = flag_value(&values, "--merge") {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(1);
        });
        let mut merged = parse_chrome_trace(&text).unwrap_or_else(|e| {
            eprintln!("{path}: {e}");
            std::process::exit(1);
        });
        if trace_id != 0 {
            merged.retain(|s| s.trace_id == trace_id);
        }
        eprintln!("# merged {} span(s) from {path}", merged.len());
        spans.append(&mut merged);
    }
    if addrs.is_empty() && spans.is_empty() {
        usage("fetch needs at least one <addr> or --merge <file>");
    }
    for addr in &addrs {
        match NinfClient::connect(addr).and_then(|mut c| c.query_trace(trace_id)) {
            Ok((process, dropped, mut remote)) => {
                eprintln!(
                    "# {addr} ({process}): {} span(s), {dropped} dropped by the ring",
                    remote.len()
                );
                spans.append(&mut remote);
            }
            Err(e) => {
                eprintln!("error: cannot fetch spans from {addr}: {e}");
                std::process::exit(1);
            }
        }
    }
    let spans = dedup(&spans);
    println!("{}", render_tree(&spans));
    write_or_print(&spans, flag_value(&values, "--out"));
}

/// A simulated LAN run in the live span schema.
fn sim(args: &[String]) {
    let (values, extra) = split_flags(args, &["--clients", "--n", "--seed", "--out"]);
    if let Some(extra) = extra.first() {
        usage(&format!("unexpected argument `{extra}`"));
    }
    let parse_or = |flag: &str, default: u64| -> u64 {
        flag_value(&values, flag)
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| usage(&format!("{flag} needs an integer")))
            })
            .unwrap_or(default)
    };
    let clients = parse_or("--clients", 4) as usize;
    let n = parse_or("--n", 600);
    let seed = parse_or("--seed", 1997);

    let scenario = ninf_sim::Scenario::lan(
        ninf_machine::j90(),
        clients,
        ninf_sim::Workload::Linpack { n },
        ExecMode::TaskParallel,
        SchedPolicy::Fcfs,
        seed,
    );
    let (cell, calls) = ninf_sim::World::new(scenario).run_detailed();
    let spans = ninf_sim::spans_from_metrics(&calls);
    println!("{}", render_tree(&spans));
    eprintln!(
        "# sim: {} call(s), {} clients, perf mean {:.2} Mflops",
        calls.len(),
        cell.clients,
        cell.perf.mean
    );
    write_or_print(&spans, flag_value(&values, "--out"));
}

/// Per-(process, name) mean-duration comparison of two trace files.
fn diff(args: &[String]) {
    let (_, files) = split_flags(args, &[]);
    let [a, b] = files.as_slice() else {
        usage("diff needs exactly two <chrome.json> files");
    };
    let load = |path: &str| -> Vec<Span> {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(1);
        });
        parse_chrome_trace(&text).unwrap_or_else(|e| {
            eprintln!("{path}: {e}");
            std::process::exit(1);
        })
    };
    print!("{}", diff_summary(a, &load(a), b, &load(b)));
}

/// Validate a Chrome trace file (parse, nesting, client↔server coverage).
fn check(args: &[String]) {
    let (values, files) = split_flags(args, &["--slack-us"]);
    let [path] = files.as_slice() else {
        usage("check needs exactly one <chrome.json> file");
    };
    let slack: u64 = flag_value(&values, "--slack-us")
        .map(|v| {
            v.parse()
                .unwrap_or_else(|_| usage("--slack-us needs an integer"))
        })
        .unwrap_or(1_000);
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(1);
    });
    let spans = parse_chrome_trace(&text).unwrap_or_else(|e| {
        eprintln!("check failed: {path} does not parse: {e}");
        std::process::exit(1);
    });
    if spans.is_empty() {
        eprintln!("check failed: {path} contains no spans");
        std::process::exit(1);
    }
    if let Err(e) = validate_nesting(&spans, slack) {
        eprintln!("check failed: spans do not nest (slack {slack}µs): {e}");
        std::process::exit(1);
    }
    let covered = match client_server_coverage(&spans) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("check failed: {e}");
            std::process::exit(1);
        }
    };
    let traces: std::collections::BTreeSet<u64> = spans.iter().map(|s| s.trace_id).collect();
    println!(
        "ok: {} span(s), {} trace(s), {} client call(s) with matching server spans",
        spans.len(),
        traces.len(),
        covered
    );
}

/// `curl`-equivalent read of a Prometheus metrics endpoint.
fn metrics(args: &[String]) {
    let (_, addrs) = split_flags(args, &[]);
    let [addr] = addrs.as_slice() else {
        usage("metrics needs exactly one <addr>");
    };
    match ninf_obs::http::fetch_metrics(addr) {
        Ok(body) => print!("{body}"),
        Err(e) => {
            eprintln!("error: cannot read metrics from {addr}: {e}");
            std::process::exit(1);
        }
    }
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!(
        "usage: ninf-trace demo  [--n 64] [--out trace.json]\n\
        \x20      ninf-trace fetch <addr>... [--trace <id>] [--merge <chrome.json>] [--out <path>]\n\
        \x20      ninf-trace sim   [--clients 4] [--n 600] [--seed 1997] [--out <path>]\n\
        \x20      ninf-trace diff  <a.json> <b.json>\n\
        \x20      ninf-trace check <chrome.json> [--slack-us 1000]\n\
        \x20      ninf-trace metrics <addr>"
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}
