//! `ninf-trace` — join per-process flight-recorder spans into one
//! cross-process call tree and export Chrome `trace_event` JSON.
//!
//! ```text
//! ninf-trace demo  [--n 64] [--out trace.json]
//! ninf-trace fetch <addr>... [--trace <id>] [--merge <chrome.json>] [--out <path>]
//! ninf-trace sim   [--clients 4] [--n 600] [--out <path>]
//! ninf-trace diff  <a.json> <b.json>
//! ninf-trace check <chrome.json> [--slack-us 1000]
//! ninf-trace metrics <addr>
//! ninf-trace timeline <sweep.json> [--metric <name>] [--source <substr>]
//! ```
//!
//! * `demo` runs one metaserver-routed `Ninf_call` against an in-process
//!   fleet with tracing armed and prints the resulting call tree — the
//!   zero-setup way to see the span schema.
//! * `fetch` drains the flight recorder of live processes over the
//!   `QueryTrace` protocol message (`--trace` limits to one trace id, as
//!   printed by `ninf-load`'s CSV; ids parse as hex when `0x`-prefixed or
//!   16 digits wide, decimal otherwise) and joins them — `--merge` folds in
//!   spans already exported to a Chrome JSON file (e.g. by
//!   `ninf-load --trace-out`).
//! * `sim` renders a simulated LAN run in the same span schema, so a live
//!   trace and its simulated twin diff side by side with `diff`.
//! * `check` validates a Chrome trace file: it must parse, spans must nest
//!   within their parents, and every client call span must have matching
//!   server spans (CI uses this as the trace smoke test).
//! * `metrics` is the `curl`-equivalent read of a metrics endpoint.
//! * `timeline` renders the merged per-window fleet view from a sweep
//!   report (`ninf-load --sweep --json <path>`): client-side offered /
//!   issued / completed counts per window joined against one metric
//!   column per remote series, remote times already corrected onto the
//!   sweep clock by the controller's skew estimate.
//!
//! Output files load directly in Perfetto (<https://ui.perfetto.dev>) or
//! `chrome://tracing`.

use ninf_client::NinfClient;
use ninf_metaserver::{Balancing, Directory, Metaserver, ServerEntry};
use ninf_obs::export::{
    chrome_trace_json, client_server_coverage, dedup, diff_summary, parse_chrome_trace,
    render_tree, validate_nesting,
};
use ninf_obs::{recorder, Span, TraceContext};
use ninf_protocol::Value;
use ninf_server::{
    builtin::register_stdlib, ExecMode, NinfServer, Registry, SchedPolicy, ServerConfig,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        usage("a subcommand is required");
    };
    match cmd.as_str() {
        "demo" => demo(&args[1..]),
        "fetch" => fetch(&args[1..]),
        "sim" => sim(&args[1..]),
        "diff" => diff(&args[1..]),
        "check" => check(&args[1..]),
        "metrics" => metrics(&args[1..]),
        "timeline" => timeline(&args[1..]),
        "--help" | "-h" => usage(""),
        other => usage(&format!("unknown subcommand `{other}`")),
    }
}

/// Pull `--flag value` out of an argument list; the rest are positionals.
fn split_flags(args: &[String], flags: &[&str]) -> (Vec<(String, String)>, Vec<String>) {
    let mut values = Vec::new();
    let mut positional = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if flags.contains(&a.as_str()) {
            match it.next() {
                Some(v) => values.push((a.clone(), v.clone())),
                None => usage(&format!("{a} needs a value")),
            }
        } else if a == "--help" || a == "-h" {
            usage("");
        } else if a.starts_with("--") {
            usage(&format!("unknown flag `{a}`"));
        } else {
            positional.push(a.clone());
        }
    }
    (values, positional)
}

fn flag_value<'a>(values: &'a [(String, String)], flag: &str) -> Option<&'a str> {
    values
        .iter()
        .find(|(f, _)| f == flag)
        .map(|(_, v)| v.as_str())
}

/// Trace ids print as 16 hex digits in the load generator's CSV; accept
/// that, `0x`-prefixed hex, or plain decimal.
fn parse_trace_id(raw: &str) -> u64 {
    let parsed = if let Some(hex) = raw.strip_prefix("0x") {
        u64::from_str_radix(hex, 16)
    } else if raw.len() == 16 {
        u64::from_str_radix(raw, 16)
    } else {
        raw.parse()
    };
    parsed.unwrap_or_else(|_| usage(&format!("`{raw}` is not a trace id")))
}

fn write_or_print(spans: &[Span], out: Option<&str>) {
    match out {
        Some(path) => {
            std::fs::write(path, chrome_trace_json(spans)).unwrap_or_else(|e| {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(1);
            });
            eprintln!(
                "# wrote {} span(s) to {path} (open in Perfetto)",
                spans.len()
            );
        }
        None => eprintln!(
            "# {} span(s); pass --out <path> for Chrome JSON",
            spans.len()
        ),
    }
}

/// One traced, metaserver-routed call against an in-process fleet.
fn demo(args: &[String]) {
    let (values, extra) = split_flags(args, &["--n", "--out"]);
    if let Some(extra) = extra.first() {
        usage(&format!("unexpected argument `{extra}`"));
    }
    let n: usize = flag_value(&values, "--n")
        .map(|v| v.parse().unwrap_or_else(|_| usage("--n needs an integer")))
        .unwrap_or(64);

    recorder::global().set_enabled(true);
    let mut dir = Directory::new();
    let mut servers = Vec::new();
    for i in 0..2 {
        let mut registry = Registry::new();
        register_stdlib(&mut registry, false);
        let server = NinfServer::start(
            "127.0.0.1:0",
            registry,
            ServerConfig {
                pes: 2,
                mode: ExecMode::TaskParallel,
                policy: SchedPolicy::Fcfs,
                core: Default::default(),
                ..ServerConfig::default()
            },
        )
        .expect("start in-process server");
        dir.register(ServerEntry {
            name: format!("node{i}"),
            addr: server.addr().to_string(),
            bandwidth_bytes_per_sec: 10e6,
            linpack_mflops: 100.0,
        });
        servers.push(server);
    }
    let meta = Metaserver::new(dir, Balancing::RoundRobin);

    // The client's own root span, parent of everything downstream.
    let ctx = TraceContext::root();
    let start = ninf_obs::now_us();
    let (a, b) = ninf_exec::matgen(n);
    let call_args = vec![
        Value::Int(n as i32),
        Value::DoubleArray(a.as_slice().to_vec()),
        Value::DoubleArray(b),
    ];
    let (outcome, trace_id) = meta.ninf_call_traced("linpack", &call_args, Some(ctx));
    recorder::global().record(
        Span::at(ctx, "call", "client", start)
            .with_detail(format!("routine=linpack n={n} ok={}", outcome.is_ok())),
    );
    outcome.expect("demo call succeeds");
    assert_eq!(trace_id, ctx.trace_id);

    // The server records its "reply" span just after the bytes go out, so
    // give its connection thread a beat before draining the recorder.
    std::thread::sleep(std::time::Duration::from_millis(20));
    let spans = dedup(&recorder::global().snapshot(trace_id));
    println!("{}", render_tree(&spans));
    // Same-process clocks: the tree must nest and cover client → server.
    // The slack absorbs scheduling skew — the server stamps its "reply"
    // span end after `send` returns, which can trail the client's read.
    validate_nesting(&spans, 10_000).expect("spans nest");
    let covered = client_server_coverage(&spans).expect("client calls reach the server");
    eprintln!(
        "# trace {trace_id:016x}: {} span(s), {} client call(s) with server spans",
        spans.len(),
        covered
    );
    write_or_print(&spans, flag_value(&values, "--out"));
    for s in servers {
        s.shutdown();
    }
}

/// Drain live processes' recorders over QueryTrace and join the spans.
fn fetch(args: &[String]) {
    let (values, addrs) = split_flags(args, &["--trace", "--merge", "--out", "--slack-us"]);
    let trace_id = flag_value(&values, "--trace")
        .map(parse_trace_id)
        .unwrap_or(0);
    let mut spans: Vec<Span> = Vec::new();
    if let Some(path) = flag_value(&values, "--merge") {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(1);
        });
        let mut merged = parse_chrome_trace(&text).unwrap_or_else(|e| {
            eprintln!("{path}: {e}");
            std::process::exit(1);
        });
        if trace_id != 0 {
            merged.retain(|s| s.trace_id == trace_id);
        }
        eprintln!("# merged {} span(s) from {path}", merged.len());
        spans.append(&mut merged);
    }
    if addrs.is_empty() && spans.is_empty() {
        usage("fetch needs at least one <addr> or --merge <file>");
    }
    for addr in &addrs {
        match NinfClient::connect(addr).and_then(|mut c| c.query_trace(trace_id)) {
            Ok((process, dropped, mut remote)) => {
                eprintln!(
                    "# {addr} ({process}): {} span(s), {dropped} dropped by the ring",
                    remote.len()
                );
                spans.append(&mut remote);
            }
            Err(e) => {
                eprintln!("error: cannot fetch spans from {addr}: {e}");
                std::process::exit(1);
            }
        }
    }
    let spans = dedup(&spans);
    println!("{}", render_tree(&spans));
    write_or_print(&spans, flag_value(&values, "--out"));
}

/// A simulated LAN run in the live span schema.
fn sim(args: &[String]) {
    let (values, extra) = split_flags(args, &["--clients", "--n", "--seed", "--out"]);
    if let Some(extra) = extra.first() {
        usage(&format!("unexpected argument `{extra}`"));
    }
    let parse_or = |flag: &str, default: u64| -> u64 {
        flag_value(&values, flag)
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| usage(&format!("{flag} needs an integer")))
            })
            .unwrap_or(default)
    };
    let clients = parse_or("--clients", 4) as usize;
    let n = parse_or("--n", 600);
    let seed = parse_or("--seed", 1997);

    let scenario = ninf_sim::Scenario::lan(
        ninf_machine::j90(),
        clients,
        ninf_sim::Workload::Linpack { n },
        ExecMode::TaskParallel,
        SchedPolicy::Fcfs,
        seed,
    );
    let (cell, calls) = ninf_sim::World::new(scenario).run_detailed();
    let spans = ninf_sim::spans_from_metrics(&calls);
    println!("{}", render_tree(&spans));
    eprintln!(
        "# sim: {} call(s), {} clients, perf mean {:.2} Mflops",
        calls.len(),
        cell.clients,
        cell.perf.mean
    );
    write_or_print(&spans, flag_value(&values, "--out"));
}

/// Per-(process, name) mean-duration comparison of two trace files.
fn diff(args: &[String]) {
    let (_, files) = split_flags(args, &[]);
    let [a, b] = files.as_slice() else {
        usage("diff needs exactly two <chrome.json> files");
    };
    let load = |path: &str| -> Vec<Span> {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(1);
        });
        parse_chrome_trace(&text).unwrap_or_else(|e| {
            eprintln!("{path}: {e}");
            std::process::exit(1);
        })
    };
    print!("{}", diff_summary(a, &load(a), b, &load(b)));
}

/// Validate a Chrome trace file (parse, nesting, client↔server coverage).
fn check(args: &[String]) {
    let (values, files) = split_flags(args, &["--slack-us"]);
    let [path] = files.as_slice() else {
        usage("check needs exactly one <chrome.json> file");
    };
    let slack: u64 = flag_value(&values, "--slack-us")
        .map(|v| {
            v.parse()
                .unwrap_or_else(|_| usage("--slack-us needs an integer"))
        })
        .unwrap_or(1_000);
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(1);
    });
    let spans = parse_chrome_trace(&text).unwrap_or_else(|e| {
        eprintln!("check failed: {path} does not parse: {e}");
        std::process::exit(1);
    });
    if spans.is_empty() {
        eprintln!("check failed: {path} contains no spans");
        std::process::exit(1);
    }
    if let Err(e) = validate_nesting(&spans, slack) {
        eprintln!("check failed: spans do not nest (slack {slack}µs): {e}");
        std::process::exit(1);
    }
    let covered = match client_server_coverage(&spans) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("check failed: {e}");
            std::process::exit(1);
        }
    };
    let traces: std::collections::BTreeSet<u64> = spans.iter().map(|s| s.trace_id).collect();
    println!(
        "ok: {} span(s), {} trace(s), {} client call(s) with matching server spans",
        spans.len(),
        traces.len(),
        covered
    );
}

/// `curl`-equivalent read of a Prometheus metrics endpoint.
fn metrics(args: &[String]) {
    let (_, addrs) = split_flags(args, &[]);
    let [addr] = addrs.as_slice() else {
        usage("metrics needs exactly one <addr>");
    };
    match ninf_obs::http::fetch_metrics(addr) {
        Ok(body) => print!("{body}"),
        Err(e) => {
            eprintln!("error: cannot read metrics from {addr}: {e}");
            std::process::exit(1);
        }
    }
}

/// Merged per-window fleet view of a `ninf-load --sweep` JSON report.
fn timeline(args: &[String]) {
    let (values, files) = split_flags(args, &["--metric", "--source"]);
    let [path] = files.as_slice() else {
        usage("timeline needs exactly one <sweep.json> file");
    };
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(1);
    });
    let doc = serde_json::from_str(&text).unwrap_or_else(|e| {
        eprintln!("timeline failed: {path} does not parse: {e}");
        std::process::exit(1);
    });
    match render_timeline(
        &doc,
        flag_value(&values, "--metric"),
        flag_value(&values, "--source"),
    ) {
        Ok(rendered) => print!("{rendered}"),
        Err(e) => {
            eprintln!("timeline failed: {e}");
            std::process::exit(1);
        }
    }
}

/// Metric projected into the per-remote column when `--metric` is absent:
/// first one present in the series wins.
const TIMELINE_DEFAULT_METRICS: &[&str] = &[
    "ninf_server_inflight_calls",
    "ninf_server_calls_total",
    "ninf_meta_calls_total",
];

/// Render the sweep report's merged timeline as one table: client-side
/// windows on the left, one column per remote series on the right, all on
/// the controller's clock (remote `t`s arrive skew-corrected in the JSON).
fn render_timeline(
    doc: &serde_json::Value,
    metric: Option<&str>,
    source_filter: Option<&str>,
) -> Result<String, String> {
    use std::collections::BTreeMap;
    use std::fmt::Write as _;

    if doc.get("benchmark").and_then(|v| v.as_str()) != Some("sweep") {
        return Err(
            "not a sweep report (expected top-level benchmark=\"sweep\"; \
                    produce one with `ninf-load --sweep --json <path>`)"
                .into(),
        );
    }
    let tl = doc
        .get("timeline")
        .ok_or("sweep report has no `timeline` object")?;
    let window_secs = tl
        .get("window_secs")
        .and_then(|v| v.as_f64())
        .filter(|w| *w > 0.0)
        .ok_or("timeline.window_secs is missing or non-positive")?;

    // Client-side buckets, keyed by window index.
    struct ClientRow {
        t: f64,
        offered: u64,
        issued: u64,
        ok: u64,
        errors: u64,
        latency_mean_s: f64,
    }
    let mut client: BTreeMap<u64, ClientRow> = BTreeMap::new();
    let num = |v: &serde_json::Value, key: &str| v.get(key).and_then(|x| x.as_f64());
    for w in tl
        .get("client")
        .and_then(|v| v.as_array())
        .map(|v| v.as_slice())
        .unwrap_or_default()
    {
        let Some(idx) = w.get("window").and_then(|v| v.as_u64()) else {
            continue;
        };
        client.insert(
            idx,
            ClientRow {
                t: num(w, "t").unwrap_or(idx as f64 * window_secs),
                offered: num(w, "offered").unwrap_or(0.0) as u64,
                issued: num(w, "issued").unwrap_or(0.0) as u64,
                ok: num(w, "ok").unwrap_or(0.0) as u64,
                errors: num(w, "errors").unwrap_or(0.0) as u64,
                latency_mean_s: num(w, "latency_mean_s").unwrap_or(0.0),
            },
        );
    }

    // Remote series → one (source, metric, bucket→value) column each.
    struct RemoteCol {
        source: String,
        metric: String,
        skew_s: f64,
        polls: u64,
        dropped: u64,
        cells: BTreeMap<u64, f64>,
    }
    let mut cols: Vec<RemoteCol> = Vec::new();
    for r in tl
        .get("remotes")
        .and_then(|v| v.as_array())
        .map(|v| v.as_slice())
        .unwrap_or_default()
    {
        let source = r
            .get("source")
            .and_then(|v| v.as_str())
            .unwrap_or("?")
            .to_string();
        if let Some(want) = source_filter {
            if !source.contains(want) {
                continue;
            }
        }
        let frames = r
            .get("frames")
            .and_then(|v| v.as_array())
            .map(|v| v.as_slice())
            .unwrap_or_default();
        let has = |name: &str| {
            frames.iter().any(|f| {
                f.get("samples")
                    .and_then(|v| v.as_array())
                    .is_some_and(|ss| {
                        ss.iter()
                            .any(|s| s.get("name").and_then(|v| v.as_str()) == Some(name))
                    })
            })
        };
        // Resolve this series' metric: the explicit --metric, a preferred
        // default it actually exports, or its first exported name.
        let metric = match metric {
            Some(m) => m.to_string(),
            None => TIMELINE_DEFAULT_METRICS
                .iter()
                .find(|m| has(m))
                .map(|m| m.to_string())
                .or_else(|| {
                    frames.iter().find_map(|f| {
                        f.get("samples")
                            .and_then(|v| v.as_array())
                            .and_then(|ss| ss.first())
                            .and_then(|s| s.get("name"))
                            .and_then(|v| v.as_str())
                            .map(|s| s.to_string())
                    })
                })
                .unwrap_or_default(),
        };
        let mut cells = BTreeMap::new();
        for f in frames {
            // Bucket each frame by its (already skew-corrected) time onto
            // the client window grid; a later frame in the bucket wins.
            let Some(t) = num(f, "t").filter(|t| *t >= 0.0) else {
                continue;
            };
            let idx = (t / window_secs) as u64;
            let Some(samples) = f.get("samples").and_then(|v| v.as_array()) else {
                continue;
            };
            for s in samples {
                if s.get("name").and_then(|v| v.as_str()) == Some(metric.as_str()) {
                    if let Some(v) = num(s, "value") {
                        cells.insert(idx, v);
                    }
                }
            }
        }
        cols.push(RemoteCol {
            source,
            metric,
            skew_s: num(r, "clock_skew_s").unwrap_or(0.0),
            polls: r.get("polls").and_then(|v| v.as_u64()).unwrap_or(0),
            dropped: r.get("dropped").and_then(|v| v.as_u64()).unwrap_or(0),
            cells,
        });
    }
    if client.is_empty() && cols.iter().all(|c| c.cells.is_empty()) {
        return Err("timeline is empty: no client windows and no remote frames \
                    (remote series stay empty when the target registry was \
                    never armed — start ninfd with --windows-ms)"
            .into());
    }

    let mut out = String::new();
    let scenario = doc.get("scenario").and_then(|v| v.as_str()).unwrap_or("?");
    let clients = doc.get("clients").and_then(|v| v.as_u64()).unwrap_or(0);
    let seed = doc.get("seed").and_then(|v| v.as_u64()).unwrap_or(0);
    let points = doc
        .get("points")
        .and_then(|v| v.as_array())
        .map(|p| p.len())
        .unwrap_or(0);
    writeln!(
        out,
        "# sweep {scenario}: {clients} client(s), seed {seed}, {points} stage(s), \
         window {window_secs:.2}s"
    )
    .unwrap();
    match doc.get("knee") {
        Some(k) if !k.is_null() => {
            let saturated = k.get("saturated").and_then(|v| v.as_bool()) == Some(true);
            writeln!(
                out,
                "# knee: stage {} at {:.1} Hz offered, {:.1} Hz through, mean {:.1} ms — {}",
                k.get("stage").and_then(|v| v.as_u64()).unwrap_or(0),
                num(k, "offered_hz").unwrap_or(0.0),
                num(k, "throughput_hz").unwrap_or(0.0),
                num(k, "latency_mean_s").unwrap_or(0.0) * 1e3,
                if saturated {
                    "saturated"
                } else {
                    "unsaturated"
                },
            )
            .unwrap();
        }
        _ => writeln!(out, "# knee: not reached").unwrap(),
    }
    for (i, c) in cols.iter().enumerate() {
        writeln!(
            out,
            "# r{i} = {} {} (skew {:+.4}s, {} poll(s), {} dropped, {} window(s))",
            c.source,
            if c.metric.is_empty() {
                "<no samples>"
            } else {
                &c.metric
            },
            c.skew_s,
            c.polls,
            c.dropped,
            c.cells.len(),
        )
        .unwrap();
    }

    write!(
        out,
        "window       t  offered  issued      ok    errs  lat(ms)"
    )
    .unwrap();
    for i in 0..cols.len() {
        write!(out, "  {:>10}", format!("r{i}")).unwrap();
    }
    writeln!(out, "  ok/window").unwrap();

    let first = client
        .keys()
        .next()
        .copied()
        .into_iter()
        .chain(cols.iter().filter_map(|c| c.cells.keys().next().copied()))
        .min()
        .unwrap_or(0);
    let last = client
        .keys()
        .next_back()
        .copied()
        .into_iter()
        .chain(
            cols.iter()
                .filter_map(|c| c.cells.keys().next_back().copied()),
        )
        .max()
        .unwrap_or(0);
    let peak_ok = client.values().map(|r| r.ok).max().unwrap_or(0).max(1);
    for idx in first..=last {
        match client.get(&idx) {
            Some(r) => write!(
                out,
                "{idx:>6}  {:>6.2}  {:>7}  {:>6}  {:>6}  {:>6}  {:>7.1}",
                r.t,
                r.offered,
                r.issued,
                r.ok,
                r.errors,
                r.latency_mean_s * 1e3,
            )
            .unwrap(),
            None => write!(
                out,
                "{idx:>6}  {:>6.2}  {:>7}  {:>6}  {:>6}  {:>6}  {:>7}",
                idx as f64 * window_secs,
                "-",
                "-",
                "-",
                "-",
                "-",
            )
            .unwrap(),
        }
        for c in &cols {
            match c.cells.get(&idx) {
                Some(v) => write!(out, "  {v:>10.1}").unwrap(),
                None => write!(out, "  {:>10}", "-").unwrap(),
            }
        }
        let bar = client
            .get(&idx)
            .map(|r| (r.ok * 32).div_ceil(peak_ok) as usize)
            .unwrap_or(0);
        writeln!(out, "  {}", "#".repeat(bar)).unwrap();
    }
    Ok(out)
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!(
        "usage: ninf-trace demo  [--n 64] [--out trace.json]\n\
        \x20      ninf-trace fetch <addr>... [--trace <id>] [--merge <chrome.json>] [--out <path>]\n\
        \x20      ninf-trace sim   [--clients 4] [--n 600] [--seed 1997] [--out <path>]\n\
        \x20      ninf-trace diff  <a.json> <b.json>\n\
        \x20      ninf-trace check <chrome.json> [--slack-us 1000]\n\
        \x20      ninf-trace metrics <addr>\n\
        \x20      ninf-trace timeline <sweep.json> [--metric <name>] [--source <substr>]"
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}

#[cfg(test)]
mod tests {
    use super::render_timeline;

    const SWEEP_DOC: &str = r#"{
        "benchmark": "sweep", "scenario": "lan-ep", "clients": 2, "seed": 1997,
        "stage_secs": 1.0, "base_rate_hz": 10.0, "wall_secs": 2.0,
        "schedule_fnv": "0x0000000000000001",
        "points": [
            {"stage": 0, "offered_hz": 20.0, "throughput_hz": 19.0},
            {"stage": 1, "offered_hz": 40.0, "throughput_hz": 21.0}
        ],
        "knee": {"stage": 0, "offered_hz": 20.0, "throughput_hz": 19.0,
                 "latency_mean_s": 0.05, "saturated": true},
        "timeline": {
            "window_secs": 1.0,
            "client": [
                {"window": 0, "t": 0.0, "offered": 20, "issued": 20, "ok": 19,
                 "errors": 1, "latency_mean_s": 0.05},
                {"window": 1, "t": 1.0, "offered": 40, "issued": 38, "ok": 21,
                 "errors": 0, "latency_mean_s": 0.42}
            ],
            "remotes": [{
                "source": "server@127.0.0.1:9999", "clock_skew_s": -0.001,
                "interval_s": 1.0, "total": 2, "dropped": 0, "polls": 4,
                "frames": [
                    {"window": 0, "t": 0.4, "samples": [
                        {"name": "ninf_server_inflight_calls", "kind": "gauge",
                         "value": 3.0, "count": 0}]},
                    {"window": 1, "t": 1.4, "samples": [
                        {"name": "ninf_server_inflight_calls", "kind": "gauge",
                         "value": 7.0, "count": 0}]}
                ]
            }]
        }
    }"#;

    #[test]
    fn renders_merged_client_and_remote_rows() {
        let doc = serde_json::from_str(SWEEP_DOC).expect("fixture parses");
        let out = render_timeline(&doc, None, None).expect("renders");
        // Header names the knee and the remote column's resolved metric.
        assert!(out.contains("knee: stage 0 at 20.0 Hz offered"), "{out}");
        assert!(
            out.contains("r0 = server@127.0.0.1:9999 ninf_server_inflight_calls"),
            "{out}"
        );
        // Both windows appear with the client counts joined to the remote
        // gauge bucketed by its corrected time (0.4s -> window 0).
        let w0 = out.lines().find(|l| l.starts_with("     0")).unwrap();
        assert!(w0.contains("19") && w0.contains("3.0"), "{w0}");
        let w1 = out.lines().find(|l| l.starts_with("     1")).unwrap();
        assert!(w1.contains("21") && w1.contains("7.0"), "{w1}");
    }

    #[test]
    fn source_filter_and_missing_metric_leave_holes() {
        let doc = serde_json::from_str(SWEEP_DOC).expect("fixture parses");
        // A source filter that matches nothing drops the remote column but
        // keeps the client view.
        let out = render_timeline(&doc, None, Some("meta@")).expect("renders");
        assert!(!out.contains("r0 ="), "{out}");
        // Asking for a metric the series never exported leaves `-` cells.
        let out = render_timeline(&doc, Some("no_such_metric"), None).expect("renders");
        assert!(out.contains("-"), "{out}");
    }

    #[test]
    fn rejects_non_sweep_documents() {
        let doc = serde_json::from_str(r#"{"benchmark": "c10k"}"#).unwrap();
        let err = render_timeline(&doc, None, None).unwrap_err();
        assert!(err.contains("not a sweep report"), "{err}");
    }
}
