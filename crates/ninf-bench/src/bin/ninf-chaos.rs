//! `ninf-chaos` — deterministic chaos/conformance driver for the live stack.
//!
//! ```text
//! ninf-chaos list                                    # scenario menu
//! ninf-chaos run    --scenario <name> --seed <u64>   # one run, print transcript
//! ninf-chaos replay --scenario <name> --seed <u64>   # reproduce a hunt finding
//! ninf-chaos hunt   [--scenario <name>] --seeds A..B # sweep seeds, report violations
//! ninf-chaos diff   [--clients 1,4,8] [--seed <u64>] [--tolerance <f64>]
//! ```
//!
//! Every run is a pure function of `(scenario, seed)`: the same pair prints a
//! byte-identical transcript, so a `hunt` finding is fully reproduced by the
//! `replay` line it prints — no logs, cores, or timing archaeology needed.
//! `diff` runs the live `lan-linpack` scalability sweep against the matched
//! simulator scenario and compares normalized shapes within tolerance
//! (policy in docs/TESTING.md).

use ninf_bench::cli::{parse_args, parse_list, CliError};
use ninf_testkit::{
    chaos, chaos_names, live_vs_sim, run_chaos, ChaosRun, Inject, DEFAULT_TOLERANCE,
};

fn main() {
    let parsed = match parse_args(
        std::env::args().skip(1),
        &[
            "--scenario|-s",
            "--seed",
            "--seeds",
            "--clients",
            "--tolerance",
        ],
        // --violate-exactly-once is deliberately undocumented: it plants a
        // duplicate completion record so CI can prove the checkers bite.
        &["--violate-exactly-once"],
    ) {
        Ok(p) => p,
        Err(CliError::Help) => usage(""),
        Err(CliError::Bad(msg)) => usage(&msg),
    };
    let inject = if parsed.has("--violate-exactly-once") {
        Inject::DuplicateCompletion
    } else {
        Inject::None
    };
    let cmd = parsed
        .positionals
        .first()
        .map(String::as_str)
        .unwrap_or_else(|| usage("a command is required"));
    if parsed.positionals.len() > 1 {
        usage(&format!("unexpected argument `{}`", parsed.positionals[1]));
    }
    match cmd {
        "list" => {
            for name in chaos_names() {
                let spec = chaos(name).expect("listed scenario exists");
                println!("{name:<12} fp={:#018x}  {}", spec.fingerprint(), spec.about);
            }
        }
        // `replay` is `run` under a name that states intent: the argument
        // pair IS the reproducer, so replaying a finding is just re-running.
        "run" | "replay" => {
            let scenario = parsed
                .value("--scenario")
                .unwrap_or_else(|| usage("--scenario is required (try list)"))
                .to_string();
            let seed = seed_of(&parsed);
            let run = run_or_die(&scenario, seed, inject);
            print!("{}", run.transcript);
            if !run.pass() {
                eprintln!("{}", reproducer(&scenario, seed));
                std::process::exit(1);
            }
        }
        "hunt" => {
            let seeds = match parsed.value("--seeds") {
                Some(raw) => parse_seed_range(raw),
                None => usage("hunt needs --seeds A..B"),
            };
            let scenarios: Vec<String> = match parsed.value("--scenario") {
                Some(name) => vec![name.to_string()],
                None => chaos_names().iter().map(|s| s.to_string()).collect(),
            };
            let mut violations = 0usize;
            let mut runs = 0usize;
            for name in &scenarios {
                for seed in seeds.clone() {
                    let run = run_or_die(name, seed, inject);
                    runs += 1;
                    if run.pass() {
                        continue;
                    }
                    violations += 1;
                    println!(
                        "VIOLATION scenario={name} seed={seed} fingerprint={:#018x}",
                        run.fingerprint
                    );
                    for line in run.violations() {
                        println!("  {line}");
                    }
                    println!("  reproduce: {}", reproducer(name, seed));
                }
            }
            println!(
                "HUNT {}: {} violation(s) in {} run(s), scenarios=[{}], seeds={}..{}",
                if violations == 0 { "CLEAN" } else { "FAIL" },
                violations,
                runs,
                scenarios.join(","),
                seeds.start,
                seeds.end
            );
            if violations > 0 {
                std::process::exit(1);
            }
        }
        "diff" => {
            let clients: Vec<usize> = match parsed.value("--clients") {
                Some(raw) => match parse_list(raw, "--clients") {
                    Ok(v) if !v.is_empty() => v,
                    Ok(_) => usage("--clients needs at least one count"),
                    Err(CliError::Bad(msg)) => usage(&msg),
                    Err(CliError::Help) => usage(""),
                },
                None => vec![1, 4, 8],
            };
            let seed = seed_of(&parsed);
            let tolerance = match parsed.parse::<f64>("--tolerance") {
                Ok(v) => v.unwrap_or(DEFAULT_TOLERANCE),
                Err(CliError::Bad(msg)) => usage(&msg),
                Err(CliError::Help) => usage(""),
            };
            match live_vs_sim(&clients, seed, tolerance) {
                Ok(report) => {
                    print!("{}", report.render());
                    if !report.pass() {
                        std::process::exit(1);
                    }
                }
                Err(e) => {
                    eprintln!("error: differential failed to run: {e}");
                    std::process::exit(1);
                }
            }
        }
        other => usage(&format!("unknown command `{other}`")),
    }
}

fn seed_of(parsed: &ninf_bench::cli::Parsed) -> u64 {
    match parsed.parse("--seed") {
        Ok(v) => v.unwrap_or(1997),
        Err(CliError::Bad(msg)) => usage(&msg),
        Err(CliError::Help) => usage(""),
    }
}

fn run_or_die(name: &str, seed: u64, inject: Inject) -> ChaosRun {
    let spec =
        chaos(name).unwrap_or_else(|| usage(&format!("unknown scenario `{name}` (try list)")));
    run_chaos(&spec, seed, inject).unwrap_or_else(|e| {
        eprintln!("error: scenario {name} seed {seed} failed to run: {e}");
        std::process::exit(1);
    })
}

/// The exact command line that reproduces a finding.
fn reproducer(scenario: &str, seed: u64) -> String {
    format!(
        "cargo run --release -p ninf-bench --bin ninf-chaos -- replay --scenario {scenario} --seed {seed}"
    )
}

/// Parse `A..B` (half-open, like a Rust range) into a seed range.
fn parse_seed_range(raw: &str) -> std::ops::Range<u64> {
    let parse_half = |s: &str| -> u64 {
        s.trim()
            .parse()
            .unwrap_or_else(|_| usage(&format!("invalid seed `{s}` in --seeds (want A..B)")))
    };
    let (a, b) = raw
        .split_once("..")
        .unwrap_or_else(|| usage("--seeds wants a range A..B"));
    let (start, end) = (parse_half(a), parse_half(b));
    if start >= end {
        usage(&format!("empty seed range {start}..{end}"));
    }
    start..end
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!(
        "usage: ninf-chaos <command> [flags]\n\
        \x20 list                                      scenario menu\n\
        \x20 run    --scenario <name> [--seed <u64>]   one seeded run, print transcript\n\
        \x20 replay --scenario <name> --seed <u64>     reproduce a hunt finding exactly\n\
        \x20 hunt   [--scenario <name>] --seeds A..B   sweep seeds; print reproducers, exit 1 on violation\n\
        \x20 diff   [--clients <list>] [--seed <u64>] [--tolerance <f64>]\n\
        \x20                                           live-vs-sim scalability differential\n\
         scenarios: {}",
        chaos_names().join(", ")
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}
