//! `repro` — regenerate every table and figure of the SC'97 Ninf paper.
//!
//! ```text
//! repro [--experiment <id>]... [--seed <u64>] [--json <path>] [--csv <dir>]
//!       [--live-check <addr>] [--list]
//! ```
//!
//! `--live-check` sanity-checks a live server through the process-wide
//! multiplexed stream pool (two EP calls; the second must reuse the first's
//! connection) before — or, with no `--experiment`, instead of — the
//! deterministic experiment suite.

use std::io::Write;

use ninf_bench::cli::{parse_args, CliError};

fn main() {
    let parsed = match parse_args(
        std::env::args().skip(1),
        &[
            "--experiment|-e",
            "--seed",
            "--json",
            "--csv",
            "--live-check",
        ],
        &["--list"],
    ) {
        Ok(p) => p,
        Err(CliError::Help) => usage(""),
        Err(CliError::Bad(msg)) => usage(&msg),
    };
    if let Some(extra) = parsed.positionals.first() {
        usage(&format!("unexpected argument `{extra}`"));
    }

    if parsed.has("--list") {
        for id in ninf_sim::experiments::all_ids() {
            println!("{id}");
        }
        return;
    }

    let ids: Vec<String> = parsed
        .values("--experiment")
        .into_iter()
        .map(str::to_string)
        .collect();

    if let Some(addr) = parsed.value("--live-check") {
        live_check(addr);
        if ids.is_empty() {
            return;
        }
    }
    let seed: u64 = match parsed.parse("--seed") {
        Ok(v) => v.unwrap_or(1997),
        Err(CliError::Bad(msg)) => usage(&msg),
        Err(CliError::Help) => usage(""),
    };

    eprintln!("# seed = {seed} (results are a pure function of the seed)");
    let outs = if ids.is_empty() {
        ninf_bench::run_all(seed)
    } else {
        match ninf_bench::run_selected(&ids, seed) {
            Ok(o) => o,
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
        }
    };

    for out in &outs {
        print!("{}", ninf_bench::render(out));
    }

    if let Some(dir) = parsed.value("--csv") {
        let dir = std::path::PathBuf::from(dir);
        let mut count = 0;
        for out in &outs {
            count += ninf_bench::write_csv(out, &dir).expect("write csv").len();
        }
        eprintln!("# wrote {count} CSV files to {}", dir.display());
    }

    if let Some(path) = parsed.value("--json") {
        let doc = ninf_bench::to_json(&outs, seed);
        let mut f = std::fs::File::create(path).expect("create json output");
        writeln!(
            f,
            "{}",
            serde_json::to_string_pretty(&doc).expect("serialize")
        )
        .expect("write json");
        eprintln!("# wrote {path}");
    }
}

/// Two pooled EP calls against a live server: the first checkout dials,
/// the second must reuse the same multiplexed stream.
fn live_check(addr: &str) {
    use ninf_client::{CallOptions, NinfClient};
    use ninf_protocol::Value;
    let opts = CallOptions::with_deadline(std::time::Duration::from_secs(10));
    let pool = ninf_reactor::global_pool();
    for round in 0..2 {
        let mut client = NinfClient::connect_pooled(addr, opts, pool.clone()).unwrap_or_else(|e| {
            eprintln!("error: live-check cannot reach {addr}: {e}");
            std::process::exit(1);
        });
        if round > 0 && !client.stream_reused() {
            eprintln!("error: live-check checkout {round} did not reuse the pooled stream");
            std::process::exit(1);
        }
        if let Err(e) = client.ninf_call("ep", &[Value::Int(6)]) {
            eprintln!("error: live-check call {round} failed: {e}");
            std::process::exit(1);
        }
    }
    eprintln!("# live-check {addr}: 2 EP calls ok over 1 pooled stream (stream_reused=true)");
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!(
        "usage: repro [--experiment <id>]... [--seed <u64>] [--json <path>] [--csv <dir>]\n\
        \x20      [--live-check <addr>] [--list]\n\
         ids: {}",
        ninf_sim::experiments::all_ids().join(", ")
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}
