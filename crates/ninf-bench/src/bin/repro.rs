//! `repro` — regenerate every table and figure of the SC'97 Ninf paper.
//!
//! ```text
//! repro [--experiment <id>]... [--seed <u64>] [--json <path>] [--list]
//! ```

use std::io::Write;

fn main() {
    let mut ids: Vec<String> = Vec::new();
    let mut seed: u64 = 1997;
    let mut json_path: Option<String> = None;
    let mut csv_dir: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--list" => {
                for id in ninf_sim::experiments::all_ids() {
                    println!("{id}");
                }
                return;
            }
            "--experiment" | "-e" => {
                ids.push(
                    args.next()
                        .unwrap_or_else(|| usage("--experiment needs an id")),
                );
            }
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage("--seed needs an integer"));
            }
            "--json" => {
                json_path = Some(args.next().unwrap_or_else(|| usage("--json needs a path")));
            }
            "--csv" => {
                csv_dir = Some(
                    args.next()
                        .unwrap_or_else(|| usage("--csv needs a directory")),
                );
            }
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown argument `{other}`")),
        }
    }

    eprintln!("# seed = {seed} (results are a pure function of the seed)");
    let outs = if ids.is_empty() {
        ninf_bench::run_all(seed)
    } else {
        match ninf_bench::run_selected(&ids, seed) {
            Ok(o) => o,
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
        }
    };

    for out in &outs {
        print!("{}", ninf_bench::render(out));
    }

    if let Some(dir) = csv_dir {
        let dir = std::path::PathBuf::from(dir);
        let mut count = 0;
        for out in &outs {
            count += ninf_bench::write_csv(out, &dir).expect("write csv").len();
        }
        eprintln!("# wrote {count} CSV files to {}", dir.display());
    }

    if let Some(path) = json_path {
        let doc = ninf_bench::to_json(&outs, seed);
        let mut f = std::fs::File::create(&path).expect("create json output");
        writeln!(
            f,
            "{}",
            serde_json::to_string_pretty(&doc).expect("serialize")
        )
        .expect("write json");
        eprintln!("# wrote {path}");
    }
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!(
        "usage: repro [--experiment <id>]... [--seed <u64>] [--json <path>] [--csv <dir>] [--list]\n\
         ids: {}",
        ninf_sim::experiments::all_ids().join(", ")
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}
