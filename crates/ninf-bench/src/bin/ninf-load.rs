//! `ninf-load` — multi-client live load generator and measurement driver.
//!
//! ```text
//! ninf-load --scenario <name> [--clients <list>] [--seed <u64>]
//!           [--json <path>] [--csv <dir>] [--addr <host:port>]
//!           [--server-core reactor|threaded]
//!           [--trace] [--trace-out <path>] [--no-arg-cache]
//!           [--compare-sim] [--assert-zero-errors] [--list]
//!
//! ninf-load --list                                  # scenario menu
//! ninf-load --scenario lan-linpack --clients 1,4,8  # Table 3-shaped sweep
//! ninf-load --scenario lan-ep --addr 127.0.0.1:5656 # against a live ninfd
//! ninf-load --scenario lan-ep --sweep               # coordinated rate ramp
//! ninf-load --scenario wan-streams --streams 1,2,4,8,16 \
//!           --wan bw=4m,delay=20ms,loss=0.01,congestion=0.015,seed=1997
//! ```
//!
//! Each client-count in `--clients` is one full live run: the scenario's
//! target is spawned (or dialed, with `--addr`), N real client threads issue
//! `Ninf_call`s over TCP per the workload spec, and the run is reported with
//! the §4.1 vocabulary — per-call Mflops, latency percentiles, and the
//! server-side `T_response`/`T_wait` decomposition. `--trace` arms the
//! flight recorder for the whole sweep (every call carries trace context;
//! per-call trace ids land in the CSV/JSON); `--trace-out` additionally
//! writes every span this process recorded — for in-process targets that is
//! the client, metaserver, *and* server side — as Chrome `trace_event` JSON
//! loadable in Perfetto (merge spans fetched from external servers with
//! `ninf-trace fetch --merge`). `--compare-sim` re-runs
//! the simulator's Table 3/4 experiment in-process at the same seed and
//! prints the live and simulated scalability shapes side by side.
//!
//! `--sweep` switches to the DiPerF-style coordinated saturation sweep: one
//! controller ramps the open-loop offered rate over `--sweep-stages` stages
//! of `--stage-secs` each (stage k offers k+1× the scenario's base rate),
//! polls every server's `QueryMetrics` window ring while the ramp runs, and
//! reports the throughput/latency-vs-offered-load curve with an automatic
//! latency-slope knee estimate plus the clock-skew-corrected merged
//! timeline. The client count is the single (first) `--clients` value.
//! External targets (`--addr`) should run `ninfd --windows-ms` to serve
//! window series; a disarmed server yields an empty series, not an error.
//! With `--sweep`, `--compare-sim` runs the simulator's `sweep-lan` client
//! ramp at the same seed and prints the two knee locations side by side,
//! and `--json`/`--csv` emit the sweep report schema instead of per-run
//! reports.
//!
//! `--wan <spec>` installs client-side link shaping (token-bucket bandwidth
//! cap, propagation delay, seeded loss — see `ninf_protocol::LinkShape`) on
//! the call connection and every bulk lane; `off` clears a scenario's
//! default. `--streams <list>` switches to the parallel-stream goodput
//! curve: one full run per stream count `N`, reporting bulk payload bytes
//! over wall time per point — the GridFTP-style throughput-vs-N shape
//! committed as `results/BENCH_wan.json`.

use std::io::Write as _;

use ninf_bench::cli::{parse_args, parse_list, CliError};
use ninf_loadgen::{
    run_scenario, run_sweep, scenario, scenario_names, RunReport, SweepConfig, SweepReport, Target,
};
use ninf_server::ServerCore;

fn main() {
    let parsed = match parse_args(
        std::env::args().skip(1),
        &[
            "--scenario|-s",
            "--clients|-c",
            "--seed",
            "--json",
            "--csv",
            "--addr",
            "--server-core",
            "--trace-out",
            "--sweep-stages",
            "--stage-secs",
            "--window-ms",
            "--wan",
            "--streams",
        ],
        &[
            "--list",
            "--compare-sim",
            "--assert-zero-errors",
            "--trace",
            "--no-arg-cache",
            "--sweep",
        ],
    ) {
        Ok(p) => p,
        Err(CliError::Help) => usage(""),
        Err(CliError::Bad(msg)) => usage(&msg),
    };
    if let Some(extra) = parsed.positionals.first() {
        usage(&format!("unexpected argument `{extra}`"));
    }

    if parsed.has("--list") {
        for name in scenario_names() {
            let sc = scenario(name).expect("listed scenario exists");
            println!("{name:<14} {}", sc.about);
        }
        return;
    }

    let name = parsed
        .value("--scenario")
        .unwrap_or_else(|| usage("--scenario is required (or --list)"));
    let mut sc =
        scenario(name).unwrap_or_else(|| usage(&format!("unknown scenario `{name}` (try --list)")));
    if let Some(addr) = parsed.value("--addr") {
        sc.target = Target::External(addr.to_string());
    }
    if parsed.has("--no-arg-cache") {
        sc.spec.options.arg_cache = false;
    }
    if let Some(raw) = parsed.value("--wan") {
        if raw == "off" {
            sc.spec.options.wan = None;
        } else {
            match ninf_protocol::LinkShape::parse(raw) {
                Ok(shape) => sc.spec.options.wan = Some(shape),
                Err(e) => usage(&format!("--wan: {e}")),
            }
        }
    }
    if let Some(which) = parsed.value("--server-core") {
        let core = match which {
            "reactor" => ServerCore::default(),
            "threaded" => ServerCore::ThreadPerConnection,
            _ => usage("--server-core is reactor or threaded"),
        };
        match &mut sc.target {
            Target::Spawn { core: c, .. } => *c = core,
            _ => usage("--server-core only applies to scenarios that spawn one server"),
        }
    }
    let clients: Vec<usize> = match parsed.value("--clients") {
        Some(raw) => match parse_list(raw, "--clients") {
            Ok(v) if !v.is_empty() => v,
            Ok(_) => usage("--clients needs at least one count"),
            Err(CliError::Bad(msg)) => usage(&msg),
            Err(CliError::Help) => usage(""),
        },
        None => vec![4],
    };
    let seed: u64 = match parsed.parse("--seed") {
        Ok(v) => v.unwrap_or(1997),
        Err(CliError::Bad(msg)) => usage(&msg),
        Err(CliError::Help) => usage(""),
    };

    let trace_out = parsed.value("--trace-out");
    if parsed.has("--trace") || trace_out.is_some() {
        ninf_obs::recorder::global().set_enabled(true);
        eprintln!("# flight recorder armed");
    }

    // `--streams`: the parallel-stream goodput curve (the GridFTP shape).
    // One full run per stream count; a run's goodput is its bulk-shipped
    // payload bytes over its wall time, so the curve directly answers "how
    // many parallel lanes does this link reward?".
    if let Some(raw) = parsed.value("--streams") {
        if parsed.has("--sweep") {
            usage("--streams and --sweep are mutually exclusive");
        }
        let list: Vec<u32> = match parse_list(raw, "--streams") {
            Ok(v) if !v.is_empty() && v.iter().all(|&n| n >= 1) => v,
            Ok(_) => usage("--streams needs a comma list of counts >= 1"),
            Err(CliError::Bad(msg)) => usage(&msg),
            Err(CliError::Help) => usage(""),
        };
        let c = clients[0];
        eprintln!("# goodput curve: scenario {name}, {c} client(s), seed {seed}, N in {list:?}");
        if let Some(shape) = &sc.spec.options.wan {
            eprintln!("# client-side link shape: {shape}");
        }
        let mut points = Vec::new();
        for &n in &list {
            sc.spec.options.streams = n;
            // Each curve point is an independent cold-start measurement. A
            // spawned target gets a fresh port per run, but an external
            // `--addr` is one destination across the whole curve — without
            // this, run N's pre-shipped digests turn run N+1's uploads
            // into refs and its goodput reads as zero.
            if let Target::External(addr) = &sc.target {
                ninf_client::argmem::forget_destination(addr);
            }
            eprintln!("# running N={n} stream(s) ...");
            match run_scenario(&sc, c, seed) {
                Ok(report) => points.push(wan_point(n, &report)),
                Err(e) => {
                    eprintln!("error: run with {n} stream(s) failed: {e}");
                    std::process::exit(1);
                }
            }
        }
        print!("{}", render_wan_curve(&sc, seed, &points));
        if let Some(path) = parsed.value("--json") {
            let doc = wan_json(&sc, seed, c, &points);
            let mut f = std::fs::File::create(path).expect("create json output");
            writeln!(
                f,
                "{}",
                serde_json::to_string_pretty(&doc).expect("serialize")
            )
            .expect("write json");
            eprintln!("# wrote {path}");
        }
        if parsed.has("--assert-zero-errors") {
            let errors: usize = points.iter().map(|p| p.errors).sum();
            if errors > 0 {
                eprintln!("error: {errors} call(s) failed across the curve");
                std::process::exit(1);
            }
            eprintln!("# zero errors across {} point(s)", points.len());
        }
        return;
    }

    if parsed.has("--sweep") {
        let mut cfg = SweepConfig::default();
        match parsed.parse::<usize>("--sweep-stages") {
            Ok(Some(n)) if n > 0 => cfg.stages = n,
            Ok(Some(_)) => usage("--sweep-stages needs a positive count"),
            Ok(None) => {}
            Err(CliError::Bad(msg)) => usage(&msg),
            Err(CliError::Help) => usage(""),
        }
        match parsed.parse::<f64>("--stage-secs") {
            Ok(Some(s)) if s > 0.0 => cfg.stage_secs = s,
            Ok(Some(_)) => usage("--stage-secs needs a positive duration"),
            Ok(None) => {}
            Err(CliError::Bad(msg)) => usage(&msg),
            Err(CliError::Help) => usage(""),
        }
        match parsed.parse::<u64>("--window-ms") {
            Ok(Some(ms)) if ms > 0 => cfg.window = std::time::Duration::from_millis(ms),
            Ok(Some(_)) => usage("--window-ms needs a positive millisecond count"),
            Ok(None) => {}
            Err(CliError::Bad(msg)) => usage(&msg),
            Err(CliError::Help) => usage(""),
        }
        let c = clients[0];
        eprintln!(
            "# sweep: scenario {name}, {c} client(s), seed {seed}, {} stage(s) x {:.1}s",
            cfg.stages, cfg.stage_secs
        );
        let report = match run_sweep(&sc, c, seed, &cfg) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("error: sweep failed: {e}");
                std::process::exit(1);
            }
        };
        print!("{}", render_live_sweep(&report));
        if parsed.has("--compare-sim") {
            print!("{}", compare_sim_sweep(&report, seed));
        }
        if let Some(dir) = parsed.value("--csv") {
            let dir = std::path::PathBuf::from(dir);
            let files = report.write_csv(&dir).expect("write sweep csv");
            eprintln!("# wrote {} CSV files to {}", files.len(), dir.display());
        }
        if let Some(path) = parsed.value("--json") {
            let mut f = std::fs::File::create(path).expect("create json output");
            writeln!(
                f,
                "{}",
                serde_json::to_string_pretty(&report.to_json()).expect("serialize")
            )
            .expect("write json");
            eprintln!("# wrote {path}");
        }
        if let Some(path) = trace_out {
            let rec = ninf_obs::recorder::global();
            let spans = ninf_obs::export::dedup(&rec.snapshot(0));
            let json = ninf_obs::export::chrome_trace_json(&spans);
            std::fs::write(path, json).expect("write trace output");
            eprintln!("# wrote {} span(s) to {path}", spans.len());
        }
        if parsed.has("--assert-zero-errors") {
            let errors: usize = report.points.iter().map(|p| p.errors).sum();
            if errors > 0 {
                eprintln!("error: {errors} call(s) failed across the sweep");
                std::process::exit(1);
            }
            eprintln!("# zero errors across {} stage(s)", report.points.len());
        }
        return;
    }

    eprintln!("# scenario {name}, seed {seed}: {}", sc.about);
    let mut reports = Vec::new();
    for &c in &clients {
        eprintln!("# running {c} client(s) ...");
        match run_scenario(&sc, c, seed) {
            Ok(report) => {
                print!("{}", render(&report));
                reports.push(report);
            }
            Err(e) => {
                eprintln!("error: run with {c} client(s) failed: {e}");
                std::process::exit(1);
            }
        }
    }

    print!("{}", render_sweep(&reports));
    if parsed.has("--compare-sim") {
        print!("{}", compare_sim(&reports, seed));
    }
    // Process-wide argument-cache counters: how many argument slots this
    // sweep shipped as digests and how many the servers asked back inline.
    let (argref_sent, argref_refilled) = (
        ninf_client::argmem::argref_sent().get(),
        ninf_client::argmem::argref_refilled().get(),
    );
    eprintln!("# arg cache: {argref_sent} ref(s) sent, {argref_refilled} refilled inline");

    if let Some(dir) = parsed.value("--csv") {
        let dir = std::path::PathBuf::from(dir);
        let mut count = 0;
        for r in &reports {
            count += r.write_csv(&dir).expect("write csv").len();
        }
        eprintln!("# wrote {count} CSV files to {}", dir.display());
    }
    if let Some(path) = parsed.value("--json") {
        let doc = sweep_json(&reports, seed);
        let mut f = std::fs::File::create(path).expect("create json output");
        writeln!(
            f,
            "{}",
            serde_json::to_string_pretty(&doc).expect("serialize")
        )
        .expect("write json");
        eprintln!("# wrote {path}");
    }

    if let Some(path) = trace_out {
        let rec = ninf_obs::recorder::global();
        let spans = ninf_obs::export::dedup(&rec.snapshot(0));
        let json = ninf_obs::export::chrome_trace_json(&spans);
        std::fs::write(path, json).expect("write trace output");
        eprintln!(
            "# wrote {} span(s) to {path} ({} dropped by the ring)",
            spans.len(),
            rec.dropped()
        );
    }

    if parsed.has("--assert-zero-errors") {
        let errors: usize = reports.iter().map(|r| r.fleet.errors()).sum();
        if errors > 0 {
            eprintln!("error: {errors} call(s) failed across the sweep");
            std::process::exit(1);
        }
        eprintln!("# zero errors across {} run(s)", reports.len());
    }
}

/// One stream count's worth of the goodput curve.
struct WanPoint {
    streams: u32,
    /// Bulk payload bytes shipped over the lanes (retransmits excluded).
    bulk_bytes: u64,
    /// Chunk retransmits forced by losses.
    retransmits: u64,
    wall_secs: f64,
    /// `bulk_bytes / wall_secs`.
    goodput: f64,
    ok: usize,
    errors: usize,
    latency_mean_s: f64,
}

/// Fold one run into its curve point.
fn wan_point(streams: u32, r: &RunReport) -> WanPoint {
    let bulk_bytes: u64 = r.calls.iter().map(|c| c.timing.bulk_bytes as u64).sum();
    let retransmits: u64 = r
        .calls
        .iter()
        .map(|c| u64::from(c.timing.bulk_retransmits))
        .sum();
    WanPoint {
        streams,
        bulk_bytes,
        retransmits,
        wall_secs: r.wall_secs,
        goodput: if r.wall_secs > 0.0 {
            bulk_bytes as f64 / r.wall_secs
        } else {
            0.0
        },
        ok: r.fleet.ok,
        errors: r.fleet.errors(),
        latency_mean_s: r.fleet.latency.mean,
    }
}

/// The goodput-vs-streams table, with the best-N / N=1 ratio the WAN
/// acceptance gate checks.
fn render_wan_curve(sc: &ninf_loadgen::Scenario, seed: u64, points: &[WanPoint]) -> String {
    let mut s = format!(
        "=================================================================\n\
         parallel-stream goodput curve: {} seed={} wan={}\n\
         =================================================================\n\
         streams  bulk-MiB  wall-s   goodput-MiB/s  retx  ok     errors  lat-mean\n",
        sc.name,
        seed,
        sc.spec
            .options
            .wan
            .map(|w| w.to_string())
            .unwrap_or_else(|| "off".into()),
    );
    for p in points {
        s += &format!(
            "{:<8} {:<9.2} {:<8.2} {:<14.3} {:<5} {:<6} {:<7} {:.4}s\n",
            p.streams,
            p.bulk_bytes as f64 / (1024.0 * 1024.0),
            p.wall_secs,
            p.goodput / (1024.0 * 1024.0),
            p.retransmits,
            p.ok,
            p.errors,
            p.latency_mean_s,
        );
    }
    let base = points.iter().find(|p| p.streams == 1);
    let best = points.iter().max_by(|a, b| a.goodput.total_cmp(&b.goodput));
    if let (Some(base), Some(best)) = (base, best) {
        if base.goodput > 0.0 {
            s += &format!(
                "best: N={} at {:.3} MiB/s = {:.2}x the N=1 goodput\n",
                best.streams,
                best.goodput / (1024.0 * 1024.0),
                best.goodput / base.goodput
            );
        }
    }
    s
}

/// The committed `results/BENCH_wan.json` document.
fn wan_json(
    sc: &ninf_loadgen::Scenario,
    seed: u64,
    clients: usize,
    points: &[WanPoint],
) -> serde_json::Value {
    serde_json::json!({
        "benchmark": "wan-streams",
        "scenario": sc.name,
        "seed": seed,
        "clients": clients as u64,
        "wan": sc.spec.options.wan.map(|w| w.to_string()),
        "chunk_bytes": sc.spec.options.chunk_bytes,
        "lane_deadline_ms": sc.spec.options.lane_deadline.map(|d| d.as_millis() as u64),
        "calls_per_client": sc.spec.calls_per_client as u64,
        "points": points.iter().map(|p| serde_json::json!({
            "streams": p.streams,
            "goodput_bytes_per_sec": p.goodput,
            "bulk_bytes": p.bulk_bytes,
            "retransmits": p.retransmits,
            "wall_secs": p.wall_secs,
            "ok": p.ok as u64,
            "errors": p.errors as u64,
            "latency_mean_s": p.latency_mean_s,
        })).collect::<Vec<_>>(),
    })
}

/// One run, rendered in the paper's table vocabulary.
fn render(r: &RunReport) -> String {
    let mut s = format!(
        "-----------------------------------------------------------------\n\
         {} c={} seed={} ({})\n\
         -----------------------------------------------------------------\n",
        r.scenario, r.clients, r.seed, r.workload
    );
    s += &format!(
        "calls {} ok {} errors {} (remote {}, timeout {}, transport {}) retries {}\n",
        r.fleet.calls,
        r.fleet.ok,
        r.fleet.errors(),
        r.fleet.remote_errors,
        r.fleet.timeouts,
        r.fleet.transport_errors,
        r.fleet.retries
    );
    s += &format!(
        "latency  mean {:.4}s  p50 {:.4}s  p95 {:.4}s  p99 {:.4}s\n",
        r.fleet.latency.mean, r.fleet.p50, r.fleet.p95, r.fleet.p99
    );
    if r.fleet.perf_calls > 0 {
        s += &format!(
            "per-call Mflops  mean {:.2}  max {:.2}  min {:.2}",
            r.fleet.perf.mean, r.fleet.perf.max, r.fleet.perf.min
        );
        if let Some(agg) = r.aggregate_mflops() {
            s += &format!("  (aggregate {agg:.2})");
        }
        s.push('\n');
    }
    s += &format!(
        "throughput {:.2} calls/s over {:.2}s wall\n",
        r.fleet.calls_per_sec, r.wall_secs
    );
    if let Some(server) = &r.server {
        s += &format!(
            "server (n={})  T_response mean {:.4}s max {:.4}s  T_wait mean {:.4}s max {:.4}s  service mean {:.4}s\n",
            server.records,
            server.response.mean,
            server.response.max,
            server.wait.mean,
            server.wait.max,
            server.service.mean
        );
    }
    s += "per-client:\n";
    for c in &r.per_client {
        s += &format!(
            "  client {:<3} calls {:<4} ok {:<4} err {:<3} mean {:.4}s p95 {:.4}s",
            c.client,
            c.calls,
            c.ok,
            c.errors(),
            c.latency.mean,
            c.p95
        );
        if c.perf_calls > 0 {
            s += &format!("  {:.2} Mflops", c.perf.mean);
        }
        s.push('\n');
    }
    s
}

/// The sweep summary: the Table 3/4 shape — one row per client count.
fn render_sweep(reports: &[RunReport]) -> String {
    let mut s = String::from(
        "=================================================================\n\
         scalability sweep (Table 3/4 shape)\n\
         =================================================================\n\
         clients  mean-Mflops  max      min      p95-lat   errors\n",
    );
    for r in reports {
        let perf = |v: f64| {
            if r.fleet.perf_calls > 0 {
                format!("{v:.2}")
            } else {
                "-".into()
            }
        };
        s += &format!(
            "{:<8} {:<12} {:<8} {:<8} {:<9.4} {}\n",
            r.clients,
            perf(r.fleet.perf.mean),
            perf(r.fleet.perf.max),
            perf(r.fleet.perf.min),
            r.fleet.p95,
            r.fleet.errors()
        );
    }
    s
}

/// Live-vs-sim comparison: re-run the simulator's 1-PE LAN Linpack table
/// (Table 3) in-process at the same seed and set the two scalability shapes
/// side by side, each normalized to its own c=1 run.
///
/// Absolute numbers differ by design — the sim models the paper's J90 and
/// n∈{600,1000,1400}, the live run measures this host — so the comparable
/// signal is the *decline shape* of per-call Mflops as clients contend.
fn compare_sim(reports: &[RunReport], seed: u64) -> String {
    let sim = match ninf_sim::experiments::run("table3", seed) {
        Some(out) => out,
        None => return String::from("# --compare-sim: sim experiment table3 unavailable\n"),
    };
    // Pick the sim's smallest-n workload row set (closest to the live rig).
    let cells: Vec<&serde_json::Value> = match sim.json.as_array() {
        Some(cells) => cells
            .iter()
            .filter(|c| c["workload"].as_str().is_some_and(|w| w == "linpack n=600"))
            .collect(),
        None => Vec::new(),
    };
    let sim_at = |clients: usize| -> Option<(f64, f64, f64)> {
        let cell = cells
            .iter()
            .find(|c| c["clients"].as_u64() == Some(clients as u64))?;
        Some((
            cell["perf"]["mean"].as_f64()?,
            cell["response"]["mean"].as_f64()?,
            cell["wait"]["mean"].as_f64()?,
        ))
    };

    let mut s = String::from(
        "=================================================================\n\
         live vs sim (Table 3 shape, each normalized to its own c=1)\n\
         =================================================================\n\
         clients  live-Mflops  live-norm  sim-Mflops  sim-norm   sim-T_wait\n",
    );
    let live_base = reports
        .iter()
        .find(|r| r.clients == 1)
        .map(|r| r.fleet.perf.mean);
    let sim_base = sim_at(1).map(|(m, _, _)| m);
    for r in reports {
        let live_norm = match live_base {
            Some(b) if b > 0.0 => format!("{:.3}", r.fleet.perf.mean / b),
            _ => "-".into(),
        };
        let (sim_m, sim_norm, sim_wait) = match (sim_at(r.clients), sim_base) {
            (Some((m, _resp, wait)), Some(b)) if b > 0.0 => (
                format!("{m:.2}"),
                format!("{:.3}", m / b),
                format!("{wait:.3}s"),
            ),
            (Some((m, _resp, wait)), _) => (format!("{m:.2}"), "-".into(), format!("{wait:.3}s")),
            _ => ("-".into(), "-".into(), "-".into()),
        };
        s += &format!(
            "{:<8} {:<12.2} {:<10} {:<11} {:<10} {}\n",
            r.clients, r.fleet.perf.mean, live_norm, sim_m, sim_norm, sim_wait
        );
    }
    s += "# sim rows: table3, linpack n=600 on the modeled J90; live rows: this host.\n\
          # the comparable signal is the normalized per-call decline, not absolutes.\n";
    s
}

/// The coordinated sweep: curve, knee, and merged-timeline summary.
fn render_live_sweep(r: &SweepReport) -> String {
    let mut s = format!(
        "=================================================================\n\
         coordinated saturation sweep: {} c={} seed={} (base {:.1} Hz/client)\n\
         =================================================================\n\
         stage  rate/client  offered-Hz  calls  ok     err  tput-Hz  lat-mean   lat-p95\n",
        r.scenario, r.clients, r.seed, r.base_rate_hz
    );
    for p in &r.points {
        s += &format!(
            "{:<6} {:<12.1} {:<11.1} {:<6} {:<6} {:<4} {:<8.2} {:<10.4} {:<10.4}\n",
            p.stage,
            p.rate_hz_per_client,
            p.offered_hz,
            p.calls,
            p.ok,
            p.errors,
            p.throughput_hz,
            p.latency.mean,
            p.latency_p95_s,
        );
    }
    match &r.knee {
        Some(k) if k.saturated => {
            s += &format!(
                "knee: stage {} at {:.1} Hz offered ({:.2} Hz delivered, {:.4}s mean latency) — saturated\n",
                k.stage, k.offered_hz, k.throughput_hz, k.latency_mean_s
            );
        }
        Some(k) => {
            s += &format!(
                "knee: not reached; highest measured {:.1} Hz offered ({:.2} Hz delivered) — ramp further\n",
                k.offered_hz, k.throughput_hz
            );
        }
        None => s += "knee: no data\n",
    }
    s += &format!(
        "timeline: {:.0} ms windows, {} client bucket(s)",
        r.timeline.window_secs * 1e3,
        r.timeline.client.len()
    );
    for remote in &r.timeline.remotes {
        s += &format!(
            "; {} {} window(s) (skew {:+.4}s, {} poll(s), {} dropped)",
            remote.source,
            remote.frames.len(),
            remote.clock_skew_s,
            remote.polls,
            remote.dropped
        );
    }
    s += &format!(
        "\nschedule fingerprint {:#018x} over {:.2}s wall\n",
        r.schedule_fnv, r.wall_secs
    );
    s
}

/// Live-vs-sim knee comparison for `--sweep`: run the simulator's
/// `sweep-lan` client ramp at the same seed and put the two knees side by
/// side. The axes differ by design — the live ramp scales an open-loop
/// rate at fixed clients, the sim ramps closed-loop clients — so the live
/// knee is also restated in client-equivalents at the scenario's base
/// rate, the unit the sim knee uses.
fn compare_sim_sweep(r: &SweepReport, seed: u64) -> String {
    let sim = match ninf_sim::experiments::run("sweep-lan", seed) {
        Some(out) => out,
        None => return String::from("# --compare-sim: sim experiment sweep-lan unavailable\n"),
    };
    let mut s = String::from(
        "=================================================================\n\
         live vs sim saturation knee (sweep-lan cross-check)\n\
         =================================================================\n",
    );
    match &r.knee {
        Some(k) => {
            let client_equiv = if r.base_rate_hz > 0.0 {
                k.offered_hz / r.base_rate_hz
            } else {
                0.0
            };
            s += &format!(
                "live: knee at {:.1} Hz offered ≈ {client_equiv:.1} client-equivalents at {:.1} Hz each (saturated={})\n",
                k.offered_hz, r.base_rate_hz, k.saturated
            );
        }
        None => s += "live: no knee estimate\n",
    }
    let knee = &sim.json["knee"];
    match (knee["clients"].as_u64(), knee["latency_s"].as_f64()) {
        (Some(c), Some(lat)) => {
            s += &format!(
                "sim:  knee at c={c} clients ({:.3} Hz, {lat:.3}s mean latency, saturated={})\n",
                knee["throughput_hz"].as_f64().unwrap_or(0.0),
                knee["saturated"].as_bool().unwrap_or(false)
            );
        }
        _ => s += "sim:  no knee in sweep-lan output\n",
    }
    s += "# same latency-elasticity rule both sides; axes differ (rate ramp vs client ramp),\n\
          # so compare knee *existence and order of magnitude*, not absolutes.\n";
    s
}

/// The whole sweep as one JSON document (experiments.json schema family).
fn sweep_json(reports: &[RunReport], seed: u64) -> serde_json::Value {
    let mut doc = serde_json::Map::new();
    doc.insert("seed".into(), serde_json::json!(seed));
    if let Some(first) = reports.first() {
        doc.insert(
            "scenario".into(),
            serde_json::json!(first.scenario.as_str()),
        );
        doc.insert(
            "workload".into(),
            serde_json::json!(first.workload.as_str()),
        );
    }
    doc.insert(
        "argref_sent".into(),
        serde_json::json!(ninf_client::argmem::argref_sent().get()),
    );
    doc.insert(
        "argref_refilled".into(),
        serde_json::json!(ninf_client::argmem::argref_refilled().get()),
    );
    doc.insert(
        "runs".into(),
        serde_json::Value::Array(reports.iter().map(|r| r.to_json()).collect()),
    );
    serde_json::Value::Object(doc)
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!(
        "usage: ninf-load --scenario <name> [--clients <list>] [--seed <u64>]\n\
        \x20                [--json <path>] [--csv <dir>] [--addr <host:port>]\n\
        \x20                [--server-core reactor|threaded]\n\
        \x20                [--trace] [--trace-out <path>] [--no-arg-cache]\n\
        \x20                [--sweep] [--sweep-stages <n>] [--stage-secs <s>]\n\
        \x20                [--window-ms <ms>]\n\
        \x20                [--wan <spec|off>] [--streams <list>]\n\
        \x20                [--compare-sim] [--assert-zero-errors] [--list]\n\
         scenarios: {}",
        scenario_names().join(", ")
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}
