//! Tiny shared argument parser for the workspace binaries.
//!
//! Every binary (`repro`, `ninf-call`, `ninf-load`, `ninfd`) historically
//! hand-rolled its flag loop, and they disagreed on the basics — some
//! rejected unknown flags, some silently treated them as positionals. This
//! module gives them one behavior: declared flags parse anywhere on the
//! line, `--help`/`-h` asks for usage, and *anything else starting with
//! `--` is an error* naming the offending flag.

/// Parse outcome that isn't a successful parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CliError {
    /// `--help` / `-h` was given: print usage, exit 0.
    Help,
    /// Malformed command line; the message names the problem.
    Bad(String),
}

/// Parsed command line: flag occurrences in order, plus positionals.
#[derive(Debug, Default, Clone)]
pub struct Parsed {
    values: Vec<(String, String)>,
    switches: Vec<String>,
    /// Non-flag arguments, in order.
    pub positionals: Vec<String>,
}

impl Parsed {
    /// Last value given for `flag` (canonical name), if any.
    pub fn value(&self, flag: &str) -> Option<&str> {
        self.values
            .iter()
            .rev()
            .find(|(f, _)| f == flag)
            .map(|(_, v)| v.as_str())
    }

    /// Every value given for `flag`, in order.
    pub fn values(&self, flag: &str) -> Vec<&str> {
        self.values
            .iter()
            .filter(|(f, _)| f == flag)
            .map(|(_, v)| v.as_str())
            .collect()
    }

    /// Whether switch `flag` appeared.
    pub fn has(&self, flag: &str) -> bool {
        self.switches.iter().any(|f| f == flag)
    }

    /// Parse `flag`'s value as `T`; `Ok(None)` when absent, `Err` naming the
    /// flag when present but malformed.
    pub fn parse<T: std::str::FromStr>(&self, flag: &str) -> Result<Option<T>, CliError> {
        match self.value(flag) {
            None => Ok(None),
            Some(raw) => raw
                .parse()
                .map(Some)
                .map_err(|_| CliError::Bad(format!("invalid value `{raw}` for {flag}"))),
        }
    }
}

/// A flag spec is its canonical name optionally followed by `|`-separated
/// aliases, e.g. `"--experiment|-e"`. Matches are recorded under the
/// canonical name.
fn canonical<'a>(specs: &'a [&'a str], arg: &str) -> Option<&'a str> {
    specs.iter().copied().find_map(|spec| {
        let mut names = spec.split('|');
        let canon = names.next().expect("non-empty spec");
        (canon == arg || names.any(|a| a == arg)).then_some(canon)
    })
}

/// Parse `args` against declared value-taking flags and boolean switches.
///
/// Unknown `--flags` are rejected. A literal `--` ends flag parsing; the
/// rest are positionals.
pub fn parse_args(
    args: impl IntoIterator<Item = String>,
    value_flags: &[&str],
    switch_flags: &[&str],
) -> Result<Parsed, CliError> {
    let mut parsed = Parsed::default();
    let mut args = args.into_iter();
    let mut flags_done = false;
    while let Some(arg) = args.next() {
        if flags_done || !arg.starts_with('-') || arg == "-" {
            parsed.positionals.push(arg);
            continue;
        }
        if arg == "--" {
            flags_done = true;
        } else if arg == "--help" || arg == "-h" {
            return Err(CliError::Help);
        } else if let Some(canon) = canonical(value_flags, &arg) {
            let value = args
                .next()
                .ok_or_else(|| CliError::Bad(format!("{canon} needs a value")))?;
            parsed.values.push((canon.to_string(), value));
        } else if let Some(canon) = canonical(switch_flags, &arg) {
            parsed.switches.push(canon.to_string());
        } else {
            return Err(CliError::Bad(format!("unknown flag `{arg}` (try --help)")));
        }
    }
    Ok(parsed)
}

/// Parse a comma-separated list of numbers (e.g. `--clients 1,4,8`).
pub fn parse_list<T: std::str::FromStr>(raw: &str, flag: &str) -> Result<Vec<T>, CliError> {
    raw.split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|s| {
            s.parse()
                .map_err(|_| CliError::Bad(format!("invalid value `{s}` for {flag}")))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn flags_anywhere_positionals_kept_in_order() {
        let p = parse_args(
            sv(&["a", "--seed", "7", "b", "--list", "c"]),
            &["--seed"],
            &["--list"],
        )
        .unwrap();
        assert_eq!(p.value("--seed"), Some("7"));
        assert!(p.has("--list"));
        assert_eq!(p.positionals, vec!["a", "b", "c"]);
    }

    #[test]
    fn unknown_flag_is_rejected_by_name() {
        let err = parse_args(sv(&["--bogus"]), &["--seed"], &[]).unwrap_err();
        assert_eq!(
            err,
            CliError::Bad("unknown flag `--bogus` (try --help)".into())
        );
    }

    #[test]
    fn help_is_signalled() {
        assert_eq!(
            parse_args(sv(&["-h"]), &[], &[]).unwrap_err(),
            CliError::Help
        );
        assert_eq!(
            parse_args(sv(&["--help"]), &[], &[]).unwrap_err(),
            CliError::Help
        );
    }

    #[test]
    fn aliases_resolve_to_canonical_and_repeat() {
        let p = parse_args(
            sv(&["--experiment", "t3", "-e", "t4"]),
            &["--experiment|-e"],
            &[],
        )
        .unwrap();
        assert_eq!(p.values("--experiment"), vec!["t3", "t4"]);
    }

    #[test]
    fn missing_value_and_bad_parse_are_named() {
        let err = parse_args(sv(&["--seed"]), &["--seed"], &[]).unwrap_err();
        assert_eq!(err, CliError::Bad("--seed needs a value".into()));
        let p = parse_args(sv(&["--seed", "x"]), &["--seed"], &[]).unwrap();
        assert!(matches!(p.parse::<u64>("--seed"), Err(CliError::Bad(_))));
        let p = parse_args(sv(&["--seed", "9"]), &["--seed"], &[]).unwrap();
        assert_eq!(p.parse::<u64>("--seed").unwrap(), Some(9));
    }

    #[test]
    fn double_dash_ends_flag_parsing() {
        let p = parse_args(sv(&["--", "--not-a-flag"]), &[], &[]).unwrap();
        assert_eq!(p.positionals, vec!["--not-a-flag"]);
    }

    #[test]
    fn comma_lists_parse() {
        assert_eq!(
            parse_list::<usize>("1,4, 8", "--clients").unwrap(),
            vec![1, 4, 8]
        );
        assert!(parse_list::<usize>("1,x", "--clients").is_err());
    }
}
