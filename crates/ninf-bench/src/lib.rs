//! Reproduction harness: drives every experiment of the SC'97 evaluation and
//! renders/records the results.
//!
//! The `repro` binary is the entry point:
//!
//! ```text
//! repro                     # run everything, print all tables/figures
//! repro --list              # list experiment ids
//! repro --experiment table4 # one table
//! repro --seed 7 --json out.json
//! ```

pub mod cli;

use ninf_sim::experiments::{all_ids, run, ExperimentOutput};

/// Run every experiment with `seed`; deterministic.
pub fn run_all(seed: u64) -> Vec<ExperimentOutput> {
    all_ids()
        .into_iter()
        .map(|id| run(id, seed).expect("id from all_ids"))
        .collect()
}

/// Run a subset by id; unknown ids are reported as errors.
pub fn run_selected(ids: &[String], seed: u64) -> Result<Vec<ExperimentOutput>, String> {
    ids.iter()
        .map(|id| run(id, seed).ok_or_else(|| format!("unknown experiment `{id}` (try --list)")))
        .collect()
}

/// Render one experiment as a printable block.
pub fn render(out: &ExperimentOutput) -> String {
    format!(
        "=================================================================\n\
         {} [{}]\n\
         =================================================================\n\
         {}\n",
        out.title, out.id, out.text
    )
}

/// Bundle results into one JSON document (consumed by EXPERIMENTS.md).
pub fn to_json(outs: &[ExperimentOutput], seed: u64) -> serde_json::Value {
    let mut map = serde_json::Map::new();
    map.insert("seed".into(), serde_json::json!(seed));
    for o in outs {
        map.insert(o.id.to_string(), o.json.clone());
    }
    serde_json::Value::Object(map)
}

/// Write one experiment's structured results as CSV files under `dir`:
/// `<id>.csv` for cell tables, `<id>__<series>.csv` for x/y series. Returns
/// the files written.
pub fn write_csv(
    out: &ExperimentOutput,
    dir: &std::path::Path,
) -> std::io::Result<Vec<std::path::PathBuf>> {
    use std::io::Write as _;
    std::fs::create_dir_all(dir)?;
    let mut written = Vec::new();

    // Cell arrays (tables): array of objects with scalar/summary fields.
    let mut rows: Vec<&serde_json::Value> = Vec::new();
    match &out.json {
        serde_json::Value::Array(cells) => rows.extend(cells.iter()),
        serde_json::Value::Object(map) => {
            if let Some(serde_json::Value::Array(cells)) = map.get("cells") {
                rows.extend(cells.iter());
            }
        }
        _ => {}
    }
    let objects: Vec<&serde_json::Map<String, serde_json::Value>> =
        rows.iter().filter_map(|r| r.as_object()).collect();
    if !objects.is_empty() && objects.len() == rows.len() {
        let mut columns: Vec<&String> = objects[0].keys().collect();
        columns.sort();
        let path = dir.join(format!("{}.csv", out.id));
        let mut f = std::fs::File::create(&path)?;
        writeln!(
            f,
            "{}",
            columns
                .iter()
                .map(|c| c.as_str())
                .collect::<Vec<_>>()
                .join(",")
        )?;
        for obj in &objects {
            let cells: Vec<String> = columns
                .iter()
                .map(|c| csv_scalar(obj.get(c.as_str()).unwrap_or(&serde_json::Value::Null)))
                .collect();
            writeln!(f, "{}", cells.join(","))?;
        }
        written.push(path);
    }

    // Named x/y series: object values that are arrays of [x, y] pairs.
    if let serde_json::Value::Object(map) = &out.json {
        for (name, value) in map {
            let Some(points) = as_points(value) else {
                continue;
            };
            let slug: String = name
                .chars()
                .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
                .collect();
            let path = dir.join(format!("{}__{}.csv", out.id, slug));
            let mut f = std::fs::File::create(&path)?;
            writeln!(f, "x,y")?;
            for (x, y) in points {
                writeln!(f, "{x},{y}")?;
            }
            written.push(path);
        }
    }
    Ok(written)
}

fn as_points(v: &serde_json::Value) -> Option<Vec<(f64, f64)>> {
    let arr = v.as_array()?;
    if arr.is_empty() {
        return None;
    }
    arr.iter()
        .map(|p| {
            let pair = p.as_array()?;
            Some((pair.first()?.as_f64()?, pair.get(1)?.as_f64()?))
        })
        .collect()
}

fn csv_scalar(v: &serde_json::Value) -> String {
    match v {
        serde_json::Value::Object(m) => {
            // Summary triples flatten to their mean (max/min live in the JSON).
            m.get("mean")
                .and_then(|x| x.as_f64())
                .map(|x| x.to_string())
                .unwrap_or_default()
        }
        serde_json::Value::String(s) => format!("\"{}\"", s.replace('"', "'")),
        other => other.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selected_rejects_unknown_ids() {
        assert!(run_selected(&["bogus".into()], 1).is_err());
    }

    #[test]
    fn selected_runs_cheap_experiment() {
        let outs = run_selected(&["fig11".into(), "ablation-sched".into()], 1).unwrap();
        assert_eq!(outs.len(), 2);
        assert!(render(&outs[0]).contains("Fig 11"));
    }

    #[test]
    fn csv_export_writes_series_and_tables() {
        let dir = std::env::temp_dir().join(format!("ninf-csv-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        // A series experiment (fig11 is cheap and analytic: three
        // speedup-vs-servers series).
        let outs = run_selected(&["fig11".into()], 1).unwrap();
        let files = write_csv(&outs[0], &dir).unwrap();
        assert_eq!(files.len(), 3, "one CSV per class: {files:?}");
        let text = std::fs::read_to_string(&files[0]).unwrap();
        assert!(text.starts_with("x,y"));
        assert!(text.lines().count() >= 7); // header + 6 p values

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn json_bundle_keyed_by_id() {
        let outs = run_selected(&["fig5".into()], 3).unwrap();
        let doc = to_json(&outs, 3);
        assert_eq!(doc["seed"], 3);
        assert!(doc.get("fig5").is_some());
    }
}
