//! Criterion bench: the v2 zero-copy message codec against the v1
//! per-element path it replaced.
//!
//! The workload is the paper's dominant wire shape — an n×n f64 matrix
//! (1024×1024 = 8 MiB) — measured three ways: raw XDR array
//! encode/decode (chunked byteswap vs a per-element `put_f64`/`get_f64`
//! loop), and the full framed `Invoke` round trip including the CRC-32C
//! pass. Set `NINF_BENCH_QUICK=1` for a smoke run (CI): fewer samples,
//! same code paths.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ninf_protocol::{read_frame, write_frame, Message, Value};
use ninf_xdr::{Bytes, XdrDecoder, XdrEncoder};
use std::hint::black_box;

const N: usize = 1024;

fn sample_size() -> usize {
    if std::env::var_os("NINF_BENCH_QUICK").is_some() {
        3
    } else {
        20
    }
}

fn matrix() -> Vec<f64> {
    (0..N * N).map(|i| i as f64 * 0.5).collect()
}

/// The pre-v2 encode: length word plus one `put_f64` per element.
fn encode_legacy(data: &[f64]) -> Bytes {
    let mut enc = XdrEncoder::with_capacity(data.len() * 8 + 4);
    enc.put_u32(data.len() as u32);
    for &x in data {
        enc.put_f64(x);
    }
    enc.finish()
}

/// The pre-v2 decode: one `get_f64` per element into a growing vec.
fn decode_legacy(wire: &[u8]) -> Vec<f64> {
    let mut dec = XdrDecoder::new(wire);
    let n = dec.get_u32().unwrap() as usize;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(dec.get_f64().unwrap());
    }
    out
}

fn bench_matrix_arrays(c: &mut Criterion) {
    let data = matrix();
    let bytes = (N * N * 8) as u64;
    let mut group = c.benchmark_group("codec_matrix_f64");
    group.sample_size(sample_size());
    group.throughput(Throughput::Bytes(bytes));
    group.bench_with_input(BenchmarkId::new("encode_fast", N), &data, |b, data| {
        b.iter(|| {
            let mut enc = XdrEncoder::with_capacity(data.len() * 8 + 4);
            enc.put_f64_array(black_box(data));
            black_box(enc.finish())
        })
    });
    group.bench_with_input(BenchmarkId::new("encode_legacy", N), &data, |b, data| {
        b.iter(|| black_box(encode_legacy(black_box(data))))
    });
    let mut enc = XdrEncoder::new();
    enc.put_f64_array(&data);
    let wire = enc.finish();
    group.bench_with_input(BenchmarkId::new("decode_fast", N), &wire, |b, wire| {
        b.iter(|| {
            let mut dec = XdrDecoder::new(black_box(wire));
            black_box(dec.get_f64_array().unwrap())
        })
    });
    group.bench_with_input(BenchmarkId::new("decode_legacy", N), &wire, |b, wire| {
        b.iter(|| black_box(decode_legacy(black_box(wire))))
    });
    group.finish();
}

fn bench_framed_invoke(c: &mut Criterion) {
    let msg = Message::Invoke {
        routine: "linpack".into(),
        args: ninf_protocol::Arg::inline(vec![
            Value::Int(N as i32),
            Value::DoubleArray(matrix()),
            Value::DoubleArray(vec![1.0; N]),
        ]),
        trace: None,
    };
    let mut group = c.benchmark_group("codec_framed_invoke");
    group.sample_size(sample_size());
    group.bench_with_input(BenchmarkId::new("write_frame", N), &msg, |b, msg| {
        b.iter(|| {
            let mut buf = Vec::new();
            write_frame(&mut buf, black_box(msg)).unwrap();
            black_box(buf)
        })
    });
    let mut framed = Vec::new();
    write_frame(&mut framed, &msg).unwrap();
    group.bench_with_input(BenchmarkId::new("read_frame", N), &framed, |b, framed| {
        b.iter(|| black_box(read_frame(&mut black_box(framed.as_slice())).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, bench_matrix_arrays, bench_framed_invoke);
criterion_main!(benches);
