//! Criterion bench: one benchmark per paper table/figure, each timing the
//! code path that regenerates it (small-duration cells — the full-length
//! reproduction is the `repro` binary).

use criterion::{criterion_group, criterion_main, Criterion};
use ninf_machine::j90;
use ninf_server::{ExecMode, SchedPolicy};
use ninf_sim::{Scenario, Workload, World};
use std::hint::black_box;

fn short_cell(mut s: Scenario) -> ninf_sim::CellResult {
    s.duration = 120.0;
    s.warmup = 20.0;
    World::new(s).run()
}

fn bench_tables(c: &mut Criterion) {
    let mut group = c.benchmark_group("paper");
    group.sample_size(10);

    group.bench_function("fig3_single_client_point", |b| {
        b.iter(|| {
            black_box(short_cell(
                Scenario::lan(
                    j90(),
                    1,
                    Workload::Linpack { n: 600 },
                    ExecMode::DataParallel,
                    SchedPolicy::Fcfs,
                    1,
                )
                .saturated(),
            ))
        })
    });

    group.bench_function("table3_cell_1pe_lan", |b| {
        b.iter(|| {
            black_box(short_cell(Scenario::lan(
                j90(),
                8,
                Workload::Linpack { n: 1000 },
                ExecMode::TaskParallel,
                SchedPolicy::Fcfs,
                2,
            )))
        })
    });

    group.bench_function("table4_cell_4pe_lan", |b| {
        b.iter(|| {
            black_box(short_cell(Scenario::lan(
                j90(),
                8,
                Workload::Linpack { n: 1000 },
                ExecMode::DataParallel,
                SchedPolicy::Fcfs,
                3,
            )))
        })
    });

    group.bench_function("table5_cell_smp", |b| {
        b.iter(|| {
            black_box(short_cell(Scenario::lan_custom(
                ninf_machine::sparc_smp(),
                8,
                1.1e6,
                Workload::Linpack { n: 600 },
                ExecMode::TaskParallel,
                SchedPolicy::Fcfs,
                4,
            )))
        })
    });

    group.bench_function("table6_cell_wan", |b| {
        b.iter(|| {
            black_box(short_cell(Scenario::single_site_wan(
                j90(),
                8,
                Workload::Linpack { n: 1000 },
                ExecMode::TaskParallel,
                SchedPolicy::Fcfs,
                5,
            )))
        })
    });

    group.bench_function("fig10_cell_multisite", |b| {
        b.iter(|| {
            black_box(short_cell(Scenario::multi_site_wan(
                j90(),
                4,
                1,
                Workload::Linpack { n: 1000 },
                ExecMode::DataParallel,
                SchedPolicy::Fcfs,
                6,
            )))
        })
    });

    group.bench_function("table8_cell_ep", |b| {
        b.iter(|| {
            black_box(short_cell(Scenario::lan(
                j90(),
                4,
                Workload::Ep { m: 16 },
                ExecMode::TaskParallel,
                SchedPolicy::Fcfs,
                7,
            )))
        })
    });

    group.bench_function("fig11_metaserver_model", |b| {
        let model = ninf_sim::experiments::MetaserverModel::default();
        let node = ninf_machine::alpha_cluster_node();
        b.iter(|| {
            let mut acc = 0.0;
            for p in [1usize, 2, 4, 8, 16, 32] {
                acc += model.transaction_seconds(28, p, &node);
            }
            black_box(acc)
        })
    });

    group.finish();
}

criterion_group!(benches, bench_tables);
criterion_main!(benches);
