//! Criterion bench: the real Linpack kernels — unblocked dgefa vs the
//! blocked `glub4` analogue vs the rayon-parallel 4-PE stand-in (the Fig 3/4
//! library comparison, on today's hardware).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ninf_exec::{dgefa, dgefa_blocked, dgefa_blocked_parallel, linpack_flops, random_matrix};
use std::hint::black_box;

fn bench_factorizations(c: &mut Criterion) {
    let mut group = c.benchmark_group("lu_factor");
    group.sample_size(10);
    for &n in &[150usize, 300, 500] {
        let (a, _) = random_matrix(n, 42);
        group.throughput(Throughput::Elements(linpack_flops(n as u64)));
        group.bench_with_input(BenchmarkId::new("unblocked", n), &a, |b, a| {
            b.iter(|| {
                let mut m = a.clone();
                black_box(dgefa(&mut m).unwrap())
            })
        });
        group.bench_with_input(BenchmarkId::new("blocked", n), &a, |b, a| {
            b.iter(|| {
                let mut m = a.clone();
                black_box(dgefa_blocked(&mut m, 32).unwrap())
            })
        });
        group.bench_with_input(BenchmarkId::new("blocked_parallel", n), &a, |b, a| {
            b.iter(|| {
                let mut m = a.clone();
                black_box(dgefa_blocked_parallel(&mut m, 32).unwrap())
            })
        });
    }
    group.finish();
}

fn bench_ep(c: &mut Criterion) {
    let mut group = c.benchmark_group("ep_kernel");
    group.sample_size(10);
    group.bench_function("serial_2^18", |b| {
        b.iter(|| black_box(ninf_exec::ep_kernel(18)))
    });
    group.bench_function("parallel_2^18", |b| {
        b.iter(|| {
            black_box(ninf_exec::ep_kernel_parallel(
                18,
                rayon::current_num_threads(),
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_factorizations, bench_ep);
criterion_main!(benches);
