//! Criterion bench: protocol round-trips (in-process, full codec path) and
//! the fluid-network allocator under many concurrent flows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ninf_netsim::{FlowSpec, FluidNet, Topology};
use ninf_protocol::{Message, Value};
use std::hint::black_box;

fn bench_message_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("rpc_invoke_codec");
    for &n in &[100usize, 600] {
        let msg = Message::Invoke {
            routine: "linpack".into(),
            args: ninf_protocol::Arg::inline(vec![
                Value::Int(n as i32),
                Value::DoubleArray(vec![0.5; n * n]),
                Value::DoubleArray(vec![1.0; n]),
            ]),
            trace: None,
        };
        group.throughput(Throughput::Bytes((n * n * 8) as u64));
        group.bench_with_input(BenchmarkId::new("encode+decode", n), &msg, |b, msg| {
            b.iter(|| {
                let wire = black_box(msg).encode();
                black_box(Message::decode(&wire).unwrap())
            })
        });
    }
    group.finish();
}

fn star_net(clients: usize) -> FluidNet {
    let mut t = Topology::new();
    let sw = t.add_node("switch");
    let srv = t.add_node("server");
    t.add_duplex_link(sw, srv, 15e6, 0.0001);
    let nodes: Vec<_> = (0..clients)
        .map(|i| {
            let n = t.add_node(format!("c{i}"));
            t.add_duplex_link(n, sw, 10e6, 0.0001);
            n
        })
        .collect();
    t.compute_routes();
    let mut net = FluidNet::new(t);
    for &n in &nodes {
        net.start_flow(
            FlowSpec {
                src: n,
                dst: srv,
                bytes: 1e9,
                cap: 2.6e6,
            },
            0.0,
        );
    }
    net
}

fn bench_maxmin(c: &mut Criterion) {
    let mut group = c.benchmark_group("netsim_maxmin_recompute");
    for &flows in &[4usize, 16, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(flows), &flows, |b, &flows| {
            let net = star_net(flows);
            b.iter_batched(
                || net.clone(),
                |mut net| {
                    // set_cap forces a full recompute
                    let id = net.snapshot_rates()[0].0;
                    net.set_cap(id, 1.3e6, 0.0);
                    black_box(net.snapshot_rates().len())
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_message_codec, bench_maxmin);
criterion_main!(benches);
