//! Criterion bench: XDR marshalling — the wire-level hot path of every
//! `Ninf_call` (a 1400×1400 Linpack call marshals ~15.7 MB each way).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ninf_xdr::{XdrDecoder, XdrEncoder};
use std::hint::black_box;

fn bench_f64_arrays(c: &mut Criterion) {
    let mut group = c.benchmark_group("xdr_f64_array");
    for &n in &[600usize, 1000, 1400] {
        let data: Vec<f64> = (0..n * n).map(|i| i as f64 * 0.5).collect();
        group.throughput(Throughput::Bytes((n * n * 8) as u64));
        group.bench_with_input(BenchmarkId::new("encode", n), &data, |b, data| {
            b.iter(|| {
                let mut enc = XdrEncoder::with_capacity(data.len() * 8 + 4);
                enc.put_f64_array(black_box(data));
                black_box(enc.finish())
            })
        });
        let mut enc = XdrEncoder::new();
        enc.put_f64_array(&data);
        let wire = enc.finish();
        group.bench_with_input(BenchmarkId::new("decode", n), &wire, |b, wire| {
            b.iter(|| {
                let mut dec = XdrDecoder::new(black_box(wire));
                black_box(dec.get_f64_array().unwrap())
            })
        });
    }
    group.finish();
}

fn bench_small_messages(c: &mut Criterion) {
    c.bench_function("xdr_header_roundtrip", |b| {
        b.iter(|| {
            let mut enc = XdrEncoder::new();
            enc.put_u32(black_box(3));
            enc.put_string("linpack");
            enc.put_i32(1400);
            let wire = enc.finish();
            let mut dec = XdrDecoder::new(&wire);
            black_box((
                dec.get_u32().unwrap(),
                dec.get_string().unwrap(),
                dec.get_i32().unwrap(),
            ))
        })
    });
}

criterion_group!(benches, bench_f64_arrays, bench_small_messages);
criterion_main!(benches);
