//! Property coverage for stream multiplexing: under arbitrary completion
//! and write interleavings, every caller gets exactly its own reply back,
//! and a corrupted frame taints only the stream it was written to — calls
//! in flight on that stream fail retryably, calls on other streams to the
//! same server never notice.

use std::net::TcpListener;
use std::sync::Arc;
use std::time::Duration;

use ninf_protocol::{Arg, Message, Transport, Value};
use ninf_reactor::{MuxStream, Reactor, ReactorConfig, ReactorHandle, ReactorHooks, Request};
use proptest::prelude::*;

/// Echo server whose reply latency is controlled by the second argument:
/// `Invoke(ep, [tag, delay_ms])` replies `ResultData([tag])` after
/// `delay_ms` — so a proptest-chosen delay schedule scrambles completion
/// order arbitrarily relative to send order.
fn scrambling_server() -> ReactorHandle {
    let handler = Arc::new(|req: Request| match req.message {
        Message::Invoke { args, .. } => {
            if let Some(Arg::Data(Value::Int(delay_ms))) = args.get(1) {
                std::thread::sleep(Duration::from_millis(*delay_ms as u64));
            }
            Some(Message::ResultData {
                results: Arg::into_values(vec![args[0].clone()]).expect("inline"),
            })
        }
        _ => Some(Message::Error {
            reason: "unexpected".into(),
        }),
    });
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    Reactor::start(
        listener,
        ReactorConfig {
            workers: 8,
            ..ReactorConfig::default()
        },
        handler,
        ReactorHooks::default(),
    )
    .unwrap()
}

fn invoke(tag: i32, delay_ms: i32) -> Message {
    Message::Invoke {
        routine: "ep".into(),
        args: Arg::inline(vec![Value::Int(tag), Value::Int(delay_ms)]),
        trace: None,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// N concurrent calls with arbitrary per-call delays (hence arbitrary
    /// completion order and write interleaving) each receive exactly their
    /// own tag back — no cross-talk, no lost replies.
    #[test]
    fn interleaved_calls_demux_to_their_callers(
        delays in proptest::collection::vec(0i32..25, 2..12),
    ) {
        let server = scrambling_server();
        let stream = Arc::new(
            MuxStream::connect(
                &server.local_addr().to_string(),
                Some(Duration::from_secs(10)),
                64,
            )
            .unwrap(),
        );
        let threads: Vec<_> = delays
            .iter()
            .enumerate()
            .map(|(i, &delay)| {
                let mut h = stream.handle();
                std::thread::spawn(move || {
                    h.set_deadline(Some(Duration::from_secs(10))).unwrap();
                    let tag = i as i32;
                    h.send(&invoke(tag, delay)).unwrap();
                    match h.recv().unwrap() {
                        Message::ResultData { results } => {
                            assert_eq!(results, vec![Value::Int(tag)], "cross-talk");
                        }
                        other => panic!("unexpected reply {other:?}"),
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        prop_assert!(!stream.is_dead());
        server.shutdown();
    }

    /// A corrupted frame (arbitrary garbage bytes, at least one header's
    /// worth so the server parses and rejects it) poisons exactly the
    /// stream that carried it: the call in flight there fails with a
    /// retryable error, while a slow call in flight on a *different*
    /// stream to the same server completes normally.
    #[test]
    fn corrupted_frame_taints_only_its_stream(
        garbage in proptest::collection::vec(any::<u8>(), 32..128),
        victim_delay in 30i32..80,
    ) {
        let server = scrambling_server();
        let addr = server.local_addr().to_string();
        let deadline = Some(Duration::from_secs(10));

        let poisoned = MuxStream::connect(&addr, deadline, 64).unwrap();
        let healthy = MuxStream::connect(&addr, deadline, 64).unwrap();

        // One slow call in flight on each stream.
        let mut victim = poisoned.handle();
        victim.set_deadline(deadline).unwrap();
        victim.send(&invoke(1, victim_delay)).unwrap();
        let victim = std::thread::spawn(move || victim.recv());

        let mut bystander = healthy.handle();
        bystander.set_deadline(deadline).unwrap();
        bystander.send(&invoke(2, victim_delay)).unwrap();
        let bystander = std::thread::spawn(move || bystander.recv());

        // Corrupt the first stream mid-flight. Force a bad magic so the
        // garbage can never be a valid frame prefix.
        let mut bytes = garbage.clone();
        bytes[0] = 0xFF;
        poisoned.handle().send_raw(&bytes).unwrap();

        let err = victim.join().unwrap().unwrap_err();
        prop_assert!(err.is_retryable(), "in-flight call on the corrupted stream must fail retryably, got {err}");

        let ok = bystander.join().unwrap().unwrap();
        prop_assert_eq!(ok, Message::ResultData { results: vec![Value::Int(2)] });
        prop_assert!(!healthy.is_dead(), "other stream must stay live");
        server.shutdown();
    }
}
