//! `MuxPool`: checked-out multiplexed streams instead of connect-per-call.
//!
//! Checkout returns a [`MuxHandle`] onto a live shared stream for the
//! target address, dialing only when no live stream has admission capacity
//! (a *miss*); reusing one is a *hit*. Dead streams — poisoned by any
//! stream-level error — are evicted on the next checkout, so a retry after
//! a stream failure transparently lands on a fresh connection.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

use ninf_obs::metrics::{Counter, MetricsRegistry};
use ninf_protocol::ProtocolResult;

use crate::mux::{MuxHandle, MuxStream, DEFAULT_MAX_INFLIGHT};

/// Pool sizing knobs.
#[derive(Debug, Clone)]
pub struct PoolConfig {
    /// Streams dialed per address before calls share the least-loaded one.
    pub max_streams_per_addr: usize,
    /// In-flight bound per stream (admission backpressure).
    pub max_inflight_per_stream: usize,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            max_streams_per_addr: 2,
            max_inflight_per_stream: DEFAULT_MAX_INFLIGHT,
        }
    }
}

/// A checked-out connection: the transport handle plus whether it reused an
/// already-open stream.
pub struct Checkout {
    /// Transport for one logical client.
    pub handle: MuxHandle,
    /// True when an existing live stream was reused (a pool hit).
    pub reused: bool,
}

/// Shared pool of multiplexed streams, keyed by server address.
pub struct MuxPool {
    streams: Mutex<HashMap<String, Vec<Arc<MuxStream>>>>,
    config: PoolConfig,
    hits: Counter,
    misses: Counter,
}

impl Default for MuxPool {
    fn default() -> Self {
        Self::new(PoolConfig::default())
    }
}

impl MuxPool {
    /// Pool with standalone hit/miss counters.
    pub fn new(config: PoolConfig) -> Self {
        MuxPool {
            streams: Mutex::new(HashMap::new()),
            config,
            hits: Counter::default(),
            misses: Counter::default(),
        }
    }

    /// Pool whose hit/miss counters live in `registry` as
    /// `ninf_client_pool_hits_total` / `ninf_client_pool_misses_total`.
    pub fn with_metrics(config: PoolConfig, registry: &MetricsRegistry) -> Self {
        MuxPool {
            streams: Mutex::new(HashMap::new()),
            config,
            hits: registry.counter(
                "ninf_client_pool_hits_total",
                "Checkouts served by an already-open multiplexed stream",
            ),
            misses: registry.counter(
                "ninf_client_pool_misses_total",
                "Checkouts that had to dial a new connection",
            ),
        }
    }

    /// Check out a handle for `addr`, dialing (with `deadline`) on a miss.
    pub fn checkout(&self, addr: &str, deadline: Option<Duration>) -> ProtocolResult<Checkout> {
        {
            let mut map = self.streams.lock().unwrap_or_else(|e| e.into_inner());
            let list = map.entry(addr.to_string()).or_default();
            // Evict streams poisoned since the last checkout.
            list.retain(|s| !s.is_dead());
            // Reuse the least-loaded live stream unless every one is at its
            // admission bound and there is still dial budget.
            if let Some(best) = list.iter().min_by_key(|s| s.inflight()) {
                let saturated = best.inflight() >= self.config.max_inflight_per_stream;
                if !saturated || list.len() >= self.config.max_streams_per_addr {
                    self.hits.inc();
                    return Ok(Checkout {
                        handle: best.handle(),
                        reused: true,
                    });
                }
            }
        }
        // Dial outside the lock: a slow connect must not block checkouts to
        // other addresses. A concurrent dial to the same address may race
        // past `max_streams_per_addr` by one — the cap is a target, not an
        // invariant.
        let stream = MuxStream::connect(addr, deadline, self.config.max_inflight_per_stream)?;
        self.misses.inc();
        let handle = stream.handle();
        let mut map = self.streams.lock().unwrap_or_else(|e| e.into_inner());
        map.entry(addr.to_string())
            .or_default()
            .push(Arc::new(stream));
        Ok(Checkout {
            handle,
            reused: false,
        })
    }

    /// Total checkouts that reused a live stream.
    pub fn hits(&self) -> u64 {
        self.hits.get()
    }

    /// Total checkouts that dialed a new connection.
    pub fn misses(&self) -> u64 {
        self.misses.get()
    }

    /// Live streams currently pooled for `addr`.
    pub fn open_streams(&self, addr: &str) -> usize {
        let map = self.streams.lock().unwrap_or_else(|e| e.into_inner());
        map.get(addr)
            .map(|l| l.iter().filter(|s| !s.is_dead()).count())
            .unwrap_or(0)
    }

    /// Drop every pooled stream (closing the sockets).
    pub fn clear(&self) {
        self.streams
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clear();
    }
}

/// Process-wide pool for CLI tools: every `ninf-call`/`repro` invocation in
/// one process shares streams through this.
pub fn global_pool() -> &'static Arc<MuxPool> {
    static POOL: OnceLock<Arc<MuxPool>> = OnceLock::new();
    POOL.get_or_init(|| Arc::new(MuxPool::default()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ninf_protocol::{Arg, Message, Transport};
    use std::net::TcpListener;
    use std::sync::Arc as StdArc;

    use crate::reactor::{Handler, Reactor, ReactorConfig, ReactorHandle, ReactorHooks};

    fn echo_server() -> ReactorHandle {
        let handler: Handler = StdArc::new(|req: crate::reactor::Request| match req.message {
            Message::Invoke { args, .. } => Some(Message::ResultData {
                results: Arg::into_values(args).expect("inline"),
            }),
            _ => Some(Message::Error {
                reason: "unexpected".into(),
            }),
        });
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        Reactor::start(
            listener,
            ReactorConfig::default(),
            handler,
            ReactorHooks::default(),
        )
        .unwrap()
    }

    fn ping(h: &mut MuxHandle) {
        h.set_deadline(Some(Duration::from_secs(5))).unwrap();
        h.send(&Message::Invoke {
            routine: "echo".into(),
            args: vec![],
            trace: None,
        })
        .unwrap();
        h.recv().unwrap();
    }

    #[test]
    fn second_checkout_reuses_the_stream() {
        let server = echo_server();
        let addr = server.local_addr().to_string();
        let pool = MuxPool::new(PoolConfig::default());

        let mut first = pool.checkout(&addr, Some(Duration::from_secs(5))).unwrap();
        assert!(!first.reused);
        ping(&mut first.handle);

        let mut second = pool.checkout(&addr, Some(Duration::from_secs(5))).unwrap();
        assert!(second.reused, "live stream must be reused");
        ping(&mut second.handle);

        assert_eq!(pool.hits(), 1);
        assert_eq!(pool.misses(), 1);
        assert_eq!(pool.open_streams(&addr), 1);
        server.shutdown();
    }

    #[test]
    fn dead_stream_is_evicted_and_redialed() {
        let server = echo_server();
        let addr = server.local_addr().to_string();
        let pool = MuxPool::new(PoolConfig::default());

        let mut co = pool.checkout(&addr, Some(Duration::from_secs(5))).unwrap();
        // Poison the stream (at least one full header of garbage, so the
        // server parses and rejects it).
        co.handle.send_raw(&[0xAAu8; 64]).unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while pool.open_streams(&addr) > 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }

        let mut fresh = pool.checkout(&addr, Some(Duration::from_secs(5))).unwrap();
        assert!(!fresh.reused, "poisoned stream must not be handed out");
        ping(&mut fresh.handle);
        assert_eq!(pool.misses(), 2);
        server.shutdown();
    }

    #[test]
    fn metrics_backed_pool_exposes_counters() {
        let server = echo_server();
        let addr = server.local_addr().to_string();
        let registry = MetricsRegistry::new();
        let pool = MuxPool::with_metrics(PoolConfig::default(), &registry);
        let _a = pool.checkout(&addr, Some(Duration::from_secs(5))).unwrap();
        let _b = pool.checkout(&addr, Some(Duration::from_secs(5))).unwrap();
        let text = registry.render_prometheus();
        assert!(text.contains("ninf_client_pool_hits_total 1"), "{text}");
        assert!(text.contains("ninf_client_pool_misses_total 1"), "{text}");
        server.shutdown();
    }
}
