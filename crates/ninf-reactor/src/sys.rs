//! Readiness polling over raw file descriptors: epoll on Linux, poll(2)
//! elsewhere on unix — via direct FFI declarations, no external crate. The
//! std runtime already links libc, so declaring the four syscall wrappers
//! `extern "C"` adds no dependency.
//!
//! The [`Poller`] API is the least common denominator of the two backends:
//! level-triggered readiness, one `u64` token per registered fd, explicit
//! interest in readable/writable. Level-triggering is deliberate — the
//! reactor can stop draining a connection mid-buffer (backpressure) and the
//! next wait still reports it readable.

#![allow(clippy::upper_case_acronyms)]

use std::io;
use std::os::raw::c_int;
use std::os::unix::io::RawFd;

/// One readiness report from [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct PollEvent {
    /// The token the fd was registered under.
    pub token: u64,
    /// Data (or EOF) can be read without blocking.
    pub readable: bool,
    /// The socket buffer can accept bytes without blocking.
    pub writable: bool,
    /// Error or hangup — the owner should read to collect the error and
    /// tear the connection down.
    pub error: bool,
}

/// Interest set for a registered fd.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    pub readable: bool,
    pub writable: bool,
}

impl Interest {
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
    pub const WRITE: Interest = Interest {
        readable: false,
        writable: true,
    };
    pub const BOTH: Interest = Interest {
        readable: true,
        writable: true,
    };
}

#[cfg(target_os = "linux")]
mod backend {
    use super::*;

    const EPOLL_CLOEXEC: c_int = 0o2000000;
    const EPOLL_CTL_ADD: c_int = 1;
    const EPOLL_CTL_DEL: c_int = 2;
    const EPOLL_CTL_MOD: c_int = 3;
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;

    /// Matches the kernel ABI: packed on x86_64 (12 bytes).
    #[repr(C, packed)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        fn close(fd: c_int) -> c_int;
    }

    /// epoll-backed poller: O(ready) wakeups regardless of fd count — the
    /// property the C10k core depends on.
    pub struct Poller {
        epfd: RawFd,
        buf: Vec<EpollEvent>,
    }

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            // SAFETY: plain syscall, no pointers.
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            let buf = (0..1024)
                .map(|_| EpollEvent { events: 0, data: 0 })
                .collect();
            Ok(Poller { epfd, buf })
        }

        fn ctl(&self, op: c_int, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            let mut events = EPOLLRDHUP;
            if interest.readable {
                events |= EPOLLIN;
            }
            if interest.writable {
                events |= EPOLLOUT;
            }
            let mut ev = EpollEvent {
                events,
                data: token,
            };
            // SAFETY: `ev` outlives the call; the kernel copies it.
            if unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) } < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        pub fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, token, interest)
        }

        pub fn modify(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, token, interest)
        }

        pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
            let mut ev = EpollEvent { events: 0, data: 0 };
            // SAFETY: pre-2.6.9 kernels require a non-null event pointer for
            // DEL; harmless on modern kernels.
            if unsafe { epoll_ctl(self.epfd, EPOLL_CTL_DEL, fd, &mut ev) } < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        /// Wait up to `timeout_ms` (-1 = forever) and append ready events.
        pub fn wait(&mut self, events: &mut Vec<PollEvent>, timeout_ms: i32) -> io::Result<()> {
            let n = loop {
                // SAFETY: `buf` is a live allocation of `buf.len()` events.
                let n = unsafe {
                    epoll_wait(
                        self.epfd,
                        self.buf.as_mut_ptr(),
                        self.buf.len() as c_int,
                        timeout_ms,
                    )
                };
                if n >= 0 {
                    break n as usize;
                }
                let err = io::Error::last_os_error();
                if err.kind() != io::ErrorKind::Interrupted {
                    return Err(err);
                }
            };
            for ev in &self.buf[..n] {
                let bits = ev.events;
                events.push(PollEvent {
                    token: ev.data,
                    readable: bits & (EPOLLIN | EPOLLRDHUP | EPOLLHUP) != 0,
                    writable: bits & EPOLLOUT != 0,
                    error: bits & (EPOLLERR | EPOLLHUP) != 0,
                });
            }
            Ok(())
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            // SAFETY: `epfd` is owned by this poller and closed exactly once.
            unsafe { close(self.epfd) };
        }
    }
}

#[cfg(all(unix, not(target_os = "linux")))]
mod backend {
    use super::*;
    use std::os::raw::{c_short, c_ulong};

    const POLLIN: c_short = 0x001;
    const POLLOUT: c_short = 0x004;
    const POLLERR: c_short = 0x008;
    const POLLHUP: c_short = 0x010;

    #[repr(C)]
    struct PollFd {
        fd: c_int,
        events: c_short,
        revents: c_short,
    }

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
    }

    /// poll(2)-backed fallback: O(n) per wait, portable to every unix.
    pub struct Poller {
        fds: Vec<PollFd>,
        tokens: Vec<u64>,
    }

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            Ok(Poller {
                fds: Vec::new(),
                tokens: Vec::new(),
            })
        }

        fn events_for(interest: Interest) -> c_short {
            let mut e = 0;
            if interest.readable {
                e |= POLLIN;
            }
            if interest.writable {
                e |= POLLOUT;
            }
            e
        }

        pub fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.fds.push(PollFd {
                fd,
                events: Self::events_for(interest),
                revents: 0,
            });
            self.tokens.push(token);
            Ok(())
        }

        pub fn modify(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            match self.fds.iter().position(|p| p.fd == fd) {
                Some(i) => {
                    self.fds[i].events = Self::events_for(interest);
                    self.tokens[i] = token;
                    Ok(())
                }
                None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
            }
        }

        pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
            match self.fds.iter().position(|p| p.fd == fd) {
                Some(i) => {
                    self.fds.swap_remove(i);
                    self.tokens.swap_remove(i);
                    Ok(())
                }
                None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
            }
        }

        pub fn wait(&mut self, events: &mut Vec<PollEvent>, timeout_ms: i32) -> io::Result<()> {
            let n = loop {
                // SAFETY: `fds` is a live slice of `fds.len()` pollfds.
                let n =
                    unsafe { poll(self.fds.as_mut_ptr(), self.fds.len() as c_ulong, timeout_ms) };
                if n >= 0 {
                    break n as usize;
                }
                let err = io::Error::last_os_error();
                if err.kind() != io::ErrorKind::Interrupted {
                    return Err(err);
                }
            };
            if n == 0 {
                return Ok(());
            }
            for (p, &token) in self.fds.iter().zip(&self.tokens) {
                if p.revents != 0 {
                    events.push(PollEvent {
                        token,
                        readable: p.revents & (POLLIN | POLLHUP) != 0,
                        writable: p.revents & POLLOUT != 0,
                        error: p.revents & (POLLERR | POLLHUP) != 0,
                    });
                }
            }
            Ok(())
        }
    }
}

#[cfg(not(unix))]
compile_error!("ninf-reactor requires a unix host (epoll or poll)");

pub use backend::Poller;

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::os::unix::io::AsRawFd;
    use std::os::unix::net::UnixStream;

    #[test]
    fn reports_readable_when_bytes_arrive() {
        let (mut a, b) = UnixStream::pair().unwrap();
        b.set_nonblocking(true).unwrap();
        let mut poller = Poller::new().unwrap();
        poller.register(b.as_raw_fd(), 7, Interest::READ).unwrap();

        let mut events = Vec::new();
        poller.wait(&mut events, 0).unwrap();
        assert!(events.is_empty(), "no bytes yet");

        a.write_all(b"ping").unwrap();
        poller.wait(&mut events, 1000).unwrap();
        assert!(events.iter().any(|e| e.token == 7 && e.readable));

        let mut buf = [0u8; 8];
        let n = (&b).read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"ping");
    }

    #[test]
    fn level_triggered_readability_persists_until_drained() {
        let (mut a, b) = UnixStream::pair().unwrap();
        b.set_nonblocking(true).unwrap();
        let mut poller = Poller::new().unwrap();
        poller.register(b.as_raw_fd(), 1, Interest::READ).unwrap();
        a.write_all(b"xx").unwrap();

        for _ in 0..2 {
            let mut events = Vec::new();
            poller.wait(&mut events, 1000).unwrap();
            assert!(
                events.iter().any(|e| e.token == 1 && e.readable),
                "undrained fd must stay readable (level-triggered)"
            );
        }
    }

    #[test]
    fn interest_modification_masks_events() {
        let (mut a, b) = UnixStream::pair().unwrap();
        b.set_nonblocking(true).unwrap();
        let mut poller = Poller::new().unwrap();
        poller.register(b.as_raw_fd(), 3, Interest::READ).unwrap();
        a.write_all(b"data").unwrap();

        // Drop read interest: pending bytes must no longer wake us.
        poller
            .modify(
                b.as_raw_fd(),
                3,
                Interest {
                    readable: false,
                    writable: false,
                },
            )
            .unwrap();
        let mut events = Vec::new();
        poller.wait(&mut events, 50).unwrap();
        assert!(events.iter().all(|e| !e.readable), "read interest removed");

        poller.modify(b.as_raw_fd(), 3, Interest::READ).unwrap();
        events.clear();
        poller.wait(&mut events, 1000).unwrap();
        assert!(events.iter().any(|e| e.token == 3 && e.readable));
    }

    #[test]
    fn peer_close_reports_readable_eof() {
        let (a, b) = UnixStream::pair().unwrap();
        b.set_nonblocking(true).unwrap();
        let mut poller = Poller::new().unwrap();
        poller.register(b.as_raw_fd(), 9, Interest::READ).unwrap();
        drop(a);
        let mut events = Vec::new();
        poller.wait(&mut events, 1000).unwrap();
        let ev = events.iter().find(|e| e.token == 9).expect("hangup event");
        assert!(ev.readable, "EOF must surface as readable (read returns 0)");
    }
}
