//! Open-loop load driver for c≥1k connection counts.
//!
//! `ninf-loadgen`'s thread-per-client runner cannot reach 10 000 concurrent
//! connections (10 000 OS threads on a small host is its own experiment),
//! so the `lan-c10k` scenario drives all connections from one poller
//! thread: blocking sequential connects up front, then a single event loop
//! that issues calls on a fixed open-loop schedule, round-robins them over
//! the connections, and demuxes replies by call id.
//!
//! The schedule is open-loop in the DiPerF sense: call k is *due* at
//! `start + k / aggregate_rate` regardless of completions, and latency is
//! measured from the due time — a saturated server shows up as growing
//! latency, not reduced offered load.

use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::os::unix::io::AsRawFd;
use std::time::{Duration, Instant};

use ninf_protocol::{
    check_frame_payload, encode_frame, parse_frame_header, Message, FRAME_HEADER_BYTES,
};

use crate::sys::{Interest, PollEvent, Poller};

/// Open-loop drive plan.
#[derive(Debug, Clone)]
pub struct DriverConfig {
    /// Server address (host:port).
    pub addr: String,
    /// Concurrent connections to hold open.
    pub conns: usize,
    /// Measurement window (after all connections are up).
    pub duration: Duration,
    /// Aggregate call rate across all connections (calls/second).
    pub rate_hz: f64,
    /// Calls in flight per connection before further due calls queue
    /// behind it (client-side admission).
    pub max_inflight_per_conn: usize,
    /// The request to repeat (typically a small-payload EP invoke).
    pub request: Message,
    /// Grace period after the window to collect still-in-flight replies;
    /// replies that miss it count as errors.
    pub drain: Duration,
}

/// One completed (or failed) call.
#[derive(Debug, Clone, Copy)]
pub struct CallSample {
    /// Connection index the call ran on.
    pub conn: usize,
    /// Seconds from window start the call was due.
    pub scheduled: f64,
    /// Due-to-reply seconds (open-loop latency; includes queueing).
    pub latency: f64,
    /// Reply arrived and decoded as a non-Error message.
    pub ok: bool,
}

/// Aggregate outcome of one open-loop run.
#[derive(Debug, Clone)]
pub struct DriverReport {
    /// Connections successfully opened.
    pub conns: usize,
    /// Calls the schedule issued.
    pub offered: u64,
    /// Calls that completed with a decodable non-Error reply.
    pub completed: u64,
    /// Everything else: connect failures, stream errors, Error replies,
    /// replies missing after the drain grace.
    pub errors: u64,
    /// Wall seconds from window start to last processed event.
    pub elapsed: f64,
    /// Completed calls per wall second.
    pub throughput: f64,
    /// Per-call records, in completion order.
    pub samples: Vec<CallSample>,
}

impl DriverReport {
    /// Latency percentile over completed calls (q in [0,1]).
    pub fn latency_quantile(&self, q: f64) -> f64 {
        let mut lat: Vec<f64> = self
            .samples
            .iter()
            .filter(|s| s.ok)
            .map(|s| s.latency)
            .collect();
        if lat.is_empty() {
            return 0.0;
        }
        lat.sort_by(|a, b| a.total_cmp(b));
        let idx = ((lat.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
        lat[idx]
    }

    /// Mean latency over completed calls.
    pub fn latency_mean(&self) -> f64 {
        let (sum, n) = self
            .samples
            .iter()
            .filter(|s| s.ok)
            .fold((0.0, 0u64), |(s, n), c| (s + c.latency, n + 1));
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }
}

struct DriverConn {
    stream: TcpStream,
    read_buf: Vec<u8>,
    write_queue: VecDeque<Vec<u8>>,
    write_off: usize,
    /// Calls sent, awaiting replies: call id → (scheduled offset seconds).
    pending: HashMap<u64, f64>,
    /// Due calls waiting for an in-flight slot: scheduled offsets.
    backlog: VecDeque<f64>,
    interest: Interest,
    alive: bool,
}

/// Run one open-loop window against a live server.
pub fn run_open_loop(config: &DriverConfig) -> io::Result<DriverReport> {
    let sockaddr: SocketAddr = config
        .addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| io::Error::from(io::ErrorKind::AddrNotAvailable))?;

    let mut poller = Poller::new()?;
    let mut conns: Vec<DriverConn> = Vec::with_capacity(config.conns);
    let mut errors = 0u64;

    // Connect phase: sequential blocking dials (fast on loopback; the
    // reactor's accept loop keeps the backlog drained), then nonblocking
    // for the event loop.
    for i in 0..config.conns {
        match TcpStream::connect_timeout(&sockaddr, Duration::from_secs(10)) {
            Ok(stream) => {
                let _ = stream.set_nodelay(true);
                stream.set_nonblocking(true)?;
                poller.register(stream.as_raw_fd(), i as u64, Interest::READ)?;
                conns.push(DriverConn {
                    stream,
                    read_buf: Vec::new(),
                    write_queue: VecDeque::new(),
                    write_off: 0,
                    pending: HashMap::new(),
                    backlog: VecDeque::new(),
                    interest: Interest::READ,
                    alive: true,
                });
            }
            Err(e) => return Err(e),
        }
    }

    let total_calls = (config.duration.as_secs_f64() * config.rate_hz).floor() as u64;
    let interval = 1.0 / config.rate_hz.max(1e-9);
    let start = Instant::now();
    let hard_stop = config.duration + config.drain;

    let mut next_call_id = 1u64;
    let mut issued = 0u64;
    let mut samples: Vec<CallSample> = Vec::new();
    let mut events: Vec<PollEvent> = Vec::new();
    let mut scratch = vec![0u8; 64 * 1024];
    let mut last_event = start;

    loop {
        let now = start.elapsed();

        // Issue every call that has come due, round-robin over connections.
        while issued < total_calls && now.as_secs_f64() >= issued as f64 * interval {
            let scheduled = issued as f64 * interval;
            let ci = (issued % config.conns as u64) as usize;
            issued += 1;
            let conn = &mut conns[ci];
            if !conn.alive {
                errors += 1;
                continue;
            }
            if conn.pending.len() >= config.max_inflight_per_conn {
                conn.backlog.push_back(scheduled);
                continue;
            }
            stage_call(conn, &config.request, scheduled, &mut next_call_id)?;
        }

        // Push staged bytes out and collect replies.
        for (ci, conn) in conns.iter_mut().enumerate() {
            if conn.alive && !conn.write_queue.is_empty() {
                pump_conn_write(conn, &mut poller, ci as u64, &mut errors);
            }
        }

        let in_flight: usize = conns
            .iter()
            .map(|c| c.pending.len() + c.backlog.len())
            .sum();
        if issued >= total_calls && in_flight == 0 {
            break;
        }
        if now >= hard_stop {
            // Whatever is still owed counts as errors.
            errors += in_flight as u64;
            break;
        }

        // Sleep until the next due call (or an event), capped so the drain
        // deadline is honored.
        let next_due = (issued as f64 * interval - now.as_secs_f64()).max(0.0);
        let timeout_ms = if issued < total_calls {
            (next_due * 1000.0).min(50.0) as i32
        } else {
            50
        };
        events.clear();
        poller.wait(&mut events, timeout_ms)?;
        for ev in &events {
            let ci = ev.token as usize;
            if ci >= conns.len() || !conns[ci].alive {
                continue;
            }
            if ev.writable {
                pump_conn_write(&mut conns[ci], &mut poller, ev.token, &mut errors);
            }
            if ev.readable || ev.error {
                pump_conn_read(
                    &mut conns[ci],
                    &mut poller,
                    ev.token,
                    &mut scratch,
                    start,
                    &mut samples,
                    &mut errors,
                );
                // Freed slots admit backlogged calls.
                while conns[ci].alive
                    && conns[ci].pending.len() < config.max_inflight_per_conn
                    && !conns[ci].backlog.is_empty()
                {
                    let scheduled = conns[ci].backlog.pop_front().expect("nonempty");
                    stage_call(
                        &mut conns[ci],
                        &config.request,
                        scheduled,
                        &mut next_call_id,
                    )?;
                }
                if conns[ci].alive && !conns[ci].write_queue.is_empty() {
                    pump_conn_write(&mut conns[ci], &mut poller, ev.token, &mut errors);
                }
            }
            last_event = Instant::now();
        }
    }

    // Wall clock of the run: at least the scheduled window, extended by
    // completions that straggled into the drain grace.
    let elapsed = (last_event - start)
        .as_secs_f64()
        .max(config.duration.as_secs_f64())
        .max(f64::MIN_POSITIVE);
    let completed = samples.iter().filter(|s| s.ok).count() as u64;
    errors += samples.iter().filter(|s| !s.ok).count() as u64;
    Ok(DriverReport {
        conns: conns.len(),
        offered: issued,
        completed,
        errors,
        elapsed,
        throughput: completed as f64 / elapsed.max(f64::MIN_POSITIVE),
        samples,
    })
}

fn stage_call(
    conn: &mut DriverConn,
    request: &Message,
    scheduled: f64,
    next_call_id: &mut u64,
) -> io::Result<()> {
    let call_id = *next_call_id;
    *next_call_id += 1;
    let frame = encode_frame(call_id, request)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
    conn.pending.insert(call_id, scheduled);
    conn.write_queue.push_back(frame);
    Ok(())
}

fn kill_conn(conn: &mut DriverConn, poller: &mut Poller, errors: &mut u64) {
    if conn.alive {
        conn.alive = false;
        let _ = poller.deregister(conn.stream.as_raw_fd());
        *errors += (conn.pending.len() + conn.backlog.len()) as u64;
        conn.pending.clear();
        conn.backlog.clear();
    }
}

fn pump_conn_write(conn: &mut DriverConn, poller: &mut Poller, token: u64, errors: &mut u64) {
    while let Some(front) = conn.write_queue.front() {
        match conn.stream.write(&front[conn.write_off..]) {
            Ok(0) => {
                kill_conn(conn, poller, errors);
                return;
            }
            Ok(n) => {
                conn.write_off += n;
                if conn.write_off == front.len() {
                    conn.write_queue.pop_front();
                    conn.write_off = 0;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                kill_conn(conn, poller, errors);
                return;
            }
        }
    }
    let want = Interest {
        readable: true,
        writable: !conn.write_queue.is_empty(),
    };
    if want != conn.interest {
        conn.interest = want;
        let _ = poller.modify(conn.stream.as_raw_fd(), token, want);
    }
}

#[allow(clippy::too_many_arguments)]
fn pump_conn_read(
    conn: &mut DriverConn,
    poller: &mut Poller,
    _token: u64,
    scratch: &mut [u8],
    start: Instant,
    samples: &mut Vec<CallSample>,
    errors: &mut u64,
) {
    loop {
        match conn.stream.read(scratch) {
            Ok(0) => {
                kill_conn(conn, poller, errors);
                return;
            }
            Ok(n) => conn.read_buf.extend_from_slice(&scratch[..n]),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                kill_conn(conn, poller, errors);
                return;
            }
        }
    }
    // Extract complete reply frames.
    let mut consumed = 0usize;
    loop {
        let buf = &conn.read_buf[consumed..];
        if buf.len() < FRAME_HEADER_BYTES {
            break;
        }
        let header: [u8; FRAME_HEADER_BYTES] =
            buf[..FRAME_HEADER_BYTES].try_into().expect("header slice");
        let header = match parse_frame_header(&header) {
            Ok(h) => h,
            Err(_) => {
                kill_conn(conn, poller, errors);
                return;
            }
        };
        let total = FRAME_HEADER_BYTES + header.len as usize;
        if buf.len() < total {
            break;
        }
        let msg = match check_frame_payload(&header, &buf[FRAME_HEADER_BYTES..total]) {
            Ok(m) => m,
            Err(_) => {
                kill_conn(conn, poller, errors);
                return;
            }
        };
        consumed += total;
        if let Some(scheduled) = conn.pending.remove(&header.call_id) {
            let now = start.elapsed().as_secs_f64();
            samples.push(CallSample {
                conn: _token as usize,
                scheduled,
                latency: (now - scheduled).max(0.0),
                ok: !matches!(msg, Message::Error { .. }),
            });
        }
    }
    if consumed > 0 {
        conn.read_buf.drain(..consumed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ninf_protocol::{Arg, Value};
    use std::net::TcpListener;
    use std::sync::Arc;

    use crate::reactor::{Handler, Reactor, ReactorConfig, ReactorHooks, Request};

    #[test]
    fn open_loop_window_completes_every_call() {
        let handler: Handler = Arc::new(|req: Request| match req.message {
            Message::Invoke { args, .. } => Some(Message::ResultData {
                results: Arg::into_values(args).expect("inline"),
            }),
            _ => Some(Message::Error {
                reason: "unexpected".into(),
            }),
        });
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let server = Reactor::start(
            listener,
            ReactorConfig::default(),
            handler,
            ReactorHooks::default(),
        )
        .unwrap();

        let report = run_open_loop(&DriverConfig {
            addr: server.local_addr().to_string(),
            conns: 32,
            duration: Duration::from_millis(500),
            rate_hz: 400.0,
            max_inflight_per_conn: 16,
            request: Message::Invoke {
                routine: "echo".into(),
                args: Arg::inline(vec![Value::Int(7)]),
                trace: None,
            },
            drain: Duration::from_secs(5),
        })
        .unwrap();

        assert_eq!(report.conns, 32);
        assert_eq!(report.offered, 200);
        assert_eq!(report.completed, 200, "errors: {}", report.errors);
        assert_eq!(report.errors, 0);
        assert!(report.throughput > 0.0);
        assert!(report.latency_quantile(0.99) >= report.latency_quantile(0.5));
        server.shutdown();
    }
}
