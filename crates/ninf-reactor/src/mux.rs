//! Client-side stream multiplexing: one TCP connection, many in-flight
//! calls.
//!
//! A [`MuxStream`] owns the socket, a monotone call-id allocator, and a
//! demux reader thread; [`MuxHandle`]s are checked out per logical client
//! and implement [`Transport`], so `NinfClient` works over a shared stream
//! unchanged. Each handle does strict send→recv pairs (the Ninf RPC shape),
//! but many handles interleave freely on the wire — the server replies in
//! completion order and the reader routes each reply to its caller by call
//! id.
//!
//! Teardown is the contract the pool relies on: any stream-level error
//! (socket death, a reply that fails CRC or decode) poisons the stream,
//! fails exactly the calls in flight on it with a retryable
//! [`ProtocolError::Disconnected`], and marks it dead so the pool evicts it
//! on next checkout. Calls on other streams never notice.

use std::collections::HashMap;
use std::io::{BufReader, BufWriter};
use std::net::{Shutdown, SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender};
use ninf_protocol::{
    read_frame_mux, write_frame_mux, Message, ProtocolError, ProtocolResult, Transport,
};

/// Default bound on concurrently in-flight calls per stream.
pub const DEFAULT_MAX_INFLIGHT: usize = 64;

type ReplySlot = Sender<ProtocolResult<Message>>;

struct State {
    /// Call id → reply slot for every call awaiting its reply.
    pending: HashMap<u64, ReplySlot>,
    /// Calls admitted (slot held) — bounded by `max_inflight`.
    inflight: usize,
    /// Set once on the first stream-level error; the stream never recovers.
    dead: Option<String>,
}

struct Shared {
    stream: TcpStream,
    writer: Mutex<BufWriter<TcpStream>>,
    state: Mutex<State>,
    /// Signals slot releases and stream death.
    cv: Condvar,
    next_id: AtomicU64,
    max_inflight: usize,
}

impl Shared {
    /// Fail every pending call and mark the stream dead. Idempotent; the
    /// first reason wins.
    fn poison(&self, reason: &str) {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if st.dead.is_none() {
            st.dead = Some(reason.to_string());
        }
        for (_, slot) in st.pending.drain() {
            let _ = slot.send(Err(ProtocolError::Disconnected));
        }
        self.cv.notify_all();
        let _ = self.stream.shutdown(Shutdown::Both);
    }
}

/// A multiplexed client connection. Dropping it shuts the socket down,
/// which terminates the reader thread.
pub struct MuxStream {
    shared: Arc<Shared>,
    peer: SocketAddr,
}

impl MuxStream {
    /// Dial `addr` (with an optional connect/IO deadline) and start the
    /// demux reader.
    pub fn connect(
        addr: &str,
        deadline: Option<Duration>,
        max_inflight: usize,
    ) -> ProtocolResult<MuxStream> {
        let sockaddr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| ProtocolError::Io(std::io::ErrorKind::AddrNotAvailable.into()))?;
        let stream = match deadline {
            Some(d) => TcpStream::connect_timeout(&sockaddr, d)?,
            None => TcpStream::connect(sockaddr)?,
        };
        stream.set_nodelay(true)?;
        let writer = BufWriter::new(stream.try_clone()?);
        let reader = BufReader::new(stream.try_clone()?);
        let shared = Arc::new(Shared {
            stream,
            writer: Mutex::new(writer),
            state: Mutex::new(State {
                pending: HashMap::new(),
                inflight: 0,
                dead: None,
            }),
            cv: Condvar::new(),
            next_id: AtomicU64::new(1),
            max_inflight: max_inflight.max(1),
        });
        let demux = shared.clone();
        std::thread::Builder::new()
            .name("ninf-mux-reader".into())
            .spawn(move || run_reader(demux, reader))
            .map_err(ProtocolError::Io)?;
        Ok(MuxStream {
            shared,
            peer: sockaddr,
        })
    }

    /// Check out a handle: one logical client on this stream.
    pub fn handle(&self) -> MuxHandle {
        MuxHandle {
            shared: self.shared.clone(),
            deadline: None,
            outstanding: None,
        }
    }

    /// Whether a stream-level error has poisoned this stream.
    pub fn is_dead(&self) -> bool {
        self.shared
            .state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .dead
            .is_some()
    }

    /// Calls currently in flight.
    pub fn inflight(&self) -> usize {
        self.shared
            .state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .inflight
    }

    /// Admission bound for this stream.
    pub fn max_inflight(&self) -> usize {
        self.shared.max_inflight
    }

    /// The dialed peer address.
    pub fn peer(&self) -> SocketAddr {
        self.peer
    }
}

impl Drop for MuxStream {
    fn drop(&mut self) {
        self.shared.poison("stream dropped");
    }
}

fn run_reader(shared: Arc<Shared>, mut reader: BufReader<TcpStream>) {
    loop {
        match read_frame_mux(&mut reader) {
            Ok((call_id, msg)) => {
                let slot = {
                    let mut st = shared.state.lock().unwrap_or_else(|e| e.into_inner());
                    st.pending.remove(&call_id)
                };
                // A missing slot means the caller abandoned the call
                // (deadline fired); the late reply is dropped.
                if let Some(slot) = slot {
                    let _ = slot.send(Ok(msg));
                }
            }
            Err(e) => {
                shared.poison(&e.to_string());
                return;
            }
        }
    }
}

/// One logical client's view of a [`MuxStream`]; implements [`Transport`]
/// with strict send→recv pairing, per-call deadlines, and bounded
/// admission.
pub struct MuxHandle {
    shared: Arc<Shared>,
    deadline: Option<Duration>,
    /// The call sent but not yet received, with its reply channel.
    outstanding: Option<(u64, Receiver<ProtocolResult<Message>>)>,
}

impl MuxHandle {
    /// Admit one call: wait for an in-flight slot (bounded backpressure)
    /// until the deadline. Fails fast on a dead stream.
    fn acquire_slot(&self) -> ProtocolResult<()> {
        let mut st = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        let limit = self.deadline.map(|d| Instant::now() + d);
        loop {
            if st.dead.is_some() {
                return Err(ProtocolError::Disconnected);
            }
            if st.inflight < self.shared.max_inflight {
                st.inflight += 1;
                return Ok(());
            }
            st = match limit {
                Some(limit) => {
                    let now = Instant::now();
                    if now >= limit {
                        return Err(ProtocolError::Timeout {
                            operation: "write",
                            after: self.deadline.unwrap_or_default(),
                        });
                    }
                    let (guard, timeout) = self
                        .shared
                        .cv
                        .wait_timeout(st, limit - now)
                        .unwrap_or_else(|e| e.into_inner());
                    if timeout.timed_out() && guard.inflight >= self.shared.max_inflight {
                        return Err(ProtocolError::Timeout {
                            operation: "write",
                            after: self.deadline.unwrap_or_default(),
                        });
                    }
                    guard
                }
                None => self.shared.cv.wait(st).unwrap_or_else(|e| e.into_inner()),
            };
        }
    }

    /// Release an admission slot (reply received, timed out, or abandoned).
    fn release_slot(&self) {
        let mut st = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        st.inflight = st.inflight.saturating_sub(1);
        drop(st);
        self.shared.cv.notify_all();
    }

    /// Drop the current outstanding call, unregistering its reply slot.
    fn abandon_outstanding(&mut self) {
        if let Some((id, _rx)) = self.outstanding.take() {
            let mut st = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            st.pending.remove(&id);
            drop(st);
            self.release_slot();
        }
    }

    /// Block until the stream dies or the deadline passes — the receive
    /// path when the request never made it onto the wire (a send the fault
    /// layer swallowed). Mirrors a TCP read timeout on a silent peer.
    fn wait_for_nothing(&self) -> ProtocolError {
        let limit = self.deadline.map(|d| Instant::now() + d);
        let mut st = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if st.dead.is_some() {
                return ProtocolError::Disconnected;
            }
            match limit {
                Some(limit) => {
                    let now = Instant::now();
                    if now >= limit {
                        return ProtocolError::Timeout {
                            operation: "read",
                            after: self.deadline.unwrap_or_default(),
                        };
                    }
                    let (guard, _) = self
                        .shared
                        .cv
                        .wait_timeout(st, limit - now)
                        .unwrap_or_else(|e| e.into_inner());
                    st = guard;
                }
                None => {
                    st = self.shared.cv.wait(st).unwrap_or_else(|e| e.into_inner());
                }
            }
        }
    }
}

impl Transport for MuxHandle {
    fn send(&mut self, msg: &Message) -> ProtocolResult<()> {
        // A fresh send abandons any reply still owed to this handle — the
        // same semantics as writing a new request down a plain socket.
        self.abandon_outstanding();
        self.acquire_slot()?;
        let call_id = self.shared.next_id.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = bounded(1);
        {
            let mut st = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            if st.dead.is_some() {
                drop(st);
                self.release_slot();
                return Err(ProtocolError::Disconnected);
            }
            st.pending.insert(call_id, tx);
        }
        let write = {
            let mut w = self.shared.writer.lock().unwrap_or_else(|e| e.into_inner());
            let _ = self.shared.stream.set_write_timeout(self.deadline);
            write_frame_mux(&mut *w, call_id, msg)
        };
        if let Err(e) = write {
            // A partially-written frame poisons the whole stream: the
            // server's framing is now out of sync for every caller.
            self.shared.poison(&e.to_string());
            self.release_slot();
            return Err(e);
        }
        self.outstanding = Some((call_id, rx));
        Ok(())
    }

    fn recv(&mut self) -> ProtocolResult<Message> {
        match self.outstanding.take() {
            Some((id, rx)) => {
                let result = match self.deadline {
                    Some(d) => match rx.recv_timeout(d) {
                        Ok(r) => r,
                        Err(RecvTimeoutError::Timeout) => {
                            let mut st =
                                self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
                            st.pending.remove(&id);
                            drop(st);
                            Err(ProtocolError::Timeout {
                                operation: "read",
                                after: d,
                            })
                        }
                        Err(RecvTimeoutError::Disconnected) => Err(ProtocolError::Disconnected),
                    },
                    None => rx.recv().unwrap_or(Err(ProtocolError::Disconnected)),
                };
                self.release_slot();
                result
            }
            // Nothing outstanding (e.g. the fault layer dropped the send):
            // behave like a blocking read on a silent peer.
            None => Err(self.wait_for_nothing()),
        }
    }

    fn set_deadline(&mut self, deadline: Option<Duration>) -> ProtocolResult<bool> {
        self.deadline = deadline;
        Ok(true)
    }

    fn send_raw(&mut self, bytes: &[u8]) -> ProtocolResult<()> {
        use std::io::Write;
        let mut w = self.shared.writer.lock().unwrap_or_else(|e| e.into_inner());
        let _ = self.shared.stream.set_write_timeout(self.deadline);
        let res = w.write_all(bytes).and_then(|_| w.flush());
        drop(w);
        if let Err(e) = res {
            self.shared.poison(&e.to_string());
            return Err(ProtocolError::Io(e));
        }
        Ok(())
    }
}

impl Drop for MuxHandle {
    fn drop(&mut self) {
        self.abandon_outstanding();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ninf_protocol::{Arg, Value};
    use std::net::TcpListener;
    use std::sync::Arc as StdArc;

    use crate::reactor::{Handler, Reactor, ReactorConfig, ReactorHandle, ReactorHooks};

    /// Echo server: replies `ResultData` carrying the Int arg back.
    fn echo_server() -> ReactorHandle {
        let handler: Handler = StdArc::new(|req: crate::reactor::Request| match req.message {
            Message::Invoke { args, .. } => Some(Message::ResultData {
                results: Arg::into_values(args).expect("inline"),
            }),
            Message::QueryLoad => None, // exercise the no-reply path
            _ => Some(Message::Error {
                reason: "unexpected".into(),
            }),
        });
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        Reactor::start(
            listener,
            ReactorConfig::default(),
            handler,
            ReactorHooks::default(),
        )
        .unwrap()
    }

    fn invoke(tag: i32) -> Message {
        Message::Invoke {
            routine: "echo".into(),
            args: Arg::inline(vec![Value::Int(tag)]),
            trace: None,
        }
    }

    #[test]
    fn concurrent_handles_demux_to_the_right_caller() {
        let server = echo_server();
        let stream = MuxStream::connect(
            &server.local_addr().to_string(),
            Some(Duration::from_secs(5)),
            DEFAULT_MAX_INFLIGHT,
        )
        .unwrap();
        let threads: Vec<_> = (0..16)
            .map(|i| {
                let mut h = stream.handle();
                std::thread::spawn(move || {
                    h.set_deadline(Some(Duration::from_secs(5))).unwrap();
                    for round in 0..8 {
                        let tag = i * 1000 + round;
                        h.send(&invoke(tag)).unwrap();
                        match h.recv().unwrap() {
                            Message::ResultData { results } => {
                                assert_eq!(results, vec![Value::Int(tag)], "cross-talk!")
                            }
                            other => panic!("unexpected reply {other:?}"),
                        }
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        server.shutdown();
    }

    #[test]
    fn dead_stream_fails_inflight_calls_retryably() {
        let server = echo_server();
        let addr = server.local_addr().to_string();
        let stream = MuxStream::connect(&addr, Some(Duration::from_secs(5)), 8).unwrap();
        let mut waiting = stream.handle();
        waiting.set_deadline(Some(Duration::from_secs(10))).unwrap();
        // QueryLoad gets no reply from this handler, so the call hangs in
        // flight until the stream dies underneath it.
        waiting.send(&Message::QueryLoad).unwrap();
        let waiter = std::thread::spawn(move || waiting.recv());

        std::thread::sleep(Duration::from_millis(50));
        // Poison the stream: send garbage; the server kills the connection
        // and the reader thread observes EOF.
        let mut poisoner = stream.handle();
        poisoner.send_raw(b"garbage that is not a frame").unwrap();

        let err = waiter.join().unwrap().unwrap_err();
        assert!(
            err.is_retryable(),
            "stream failure must be retryable: {err}"
        );
        assert!(stream.is_dead());

        // Future sends fail fast.
        let mut h = stream.handle();
        assert!(h.send(&invoke(1)).is_err());
        server.shutdown();
    }

    #[test]
    fn inflight_bound_blocks_then_times_out() {
        let server = echo_server();
        let stream = MuxStream::connect(
            &server.local_addr().to_string(),
            Some(Duration::from_secs(5)),
            1,
        )
        .unwrap();
        let mut first = stream.handle();
        first.set_deadline(Some(Duration::from_secs(5))).unwrap();
        first.send(&Message::QueryLoad).unwrap(); // never replied: slot held

        let mut second = stream.handle();
        second
            .set_deadline(Some(Duration::from_millis(100)))
            .unwrap();
        let err = second.send(&invoke(2)).unwrap_err();
        assert!(err.is_timeout(), "admission must time out, got {err}");
        server.shutdown();
    }

    #[test]
    fn dropped_send_times_out_like_a_silent_peer() {
        let server = echo_server();
        let stream = MuxStream::connect(
            &server.local_addr().to_string(),
            Some(Duration::from_secs(5)),
            8,
        )
        .unwrap();
        let mut h = stream.handle();
        h.set_deadline(Some(Duration::from_millis(80))).unwrap();
        // recv with nothing outstanding — the FaultyTransport drop shape.
        let err = h.recv().unwrap_err();
        assert!(err.is_timeout(), "expected timeout, got {err}");
        server.shutdown();
    }

    #[test]
    fn call_ids_are_monotone_per_stream() {
        let server = echo_server();
        let stream = MuxStream::connect(
            &server.local_addr().to_string(),
            Some(Duration::from_secs(5)),
            DEFAULT_MAX_INFLIGHT,
        )
        .unwrap();
        let mut h = stream.handle();
        h.set_deadline(Some(Duration::from_secs(5))).unwrap();
        let before = stream.shared.next_id.load(Ordering::Relaxed);
        for i in 0..5 {
            h.send(&invoke(i)).unwrap();
            h.recv().unwrap();
        }
        let after = stream.shared.next_id.load(Ordering::Relaxed);
        assert_eq!(after, before + 5, "one fresh id per call, strictly rising");
        server.shutdown();
    }
}
