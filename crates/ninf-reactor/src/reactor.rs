//! The server-side reactor: one thread owns every socket, a bounded worker
//! pool runs the handlers.
//!
//! ```text
//!            ┌────────────────────────── reactor thread ──────────────────┐
//!  accept ──▶│ nonblocking sockets, per-conn read buffers + write queues, │
//!            │ frame extraction (header parse → CRC → decode)             │
//!            └──────┬──────────────────────────────────▲──────────────────┘
//!                   │ (conn, call_id, Message)         │ Command::Reply (encoded frame) + wake
//!            ┌──────▼──────────────────────────────────┴──────────────────┐
//!            │ worker pool (bounded): handler(msg) → Option<Message>      │
//!            └────────────────────────────────────────────────────────────┘
//! ```
//!
//! Backpressure is per connection: once `max_inflight_per_conn` calls from
//! one connection are being handled, the reactor stops extracting frames
//! from it (and stops reading its socket when the staging buffer fills), so
//! one fast-spraying client cannot flood the worker queue. Replies re-enable
//! the connection. A malformed frame — bad magic, wrong version, CRC
//! mismatch, undecodable payload — closes exactly that connection; calls
//! in flight on other connections are untouched.

use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{unbounded, Receiver, Sender};
use ninf_obs::metrics::{Counter, Gauge};
use ninf_protocol::{
    check_frame_payload, encode_frame, parse_frame_header, Message, FRAME_HEADER_BYTES,
};

use crate::sys::{Interest, PollEvent, Poller};

/// Tuning knobs for [`Reactor::start`].
#[derive(Debug, Clone)]
pub struct ReactorConfig {
    /// Worker threads running handlers. Handlers may block (the PE gate);
    /// size this at least as large as the PE count so queries keep flowing
    /// while compute is saturated.
    pub workers: usize,
    /// Calls in flight per connection before the reactor stops extracting
    /// frames from it.
    pub max_inflight_per_conn: usize,
    /// Staged (unparsed) bytes per connection before the reactor stops
    /// reading its socket. Must exceed the largest legal frame to make
    /// progress on matrix payloads.
    pub read_buffer_cap: usize,
}

impl Default for ReactorConfig {
    fn default() -> Self {
        ReactorConfig {
            workers: 8,
            max_inflight_per_conn: 128,
            read_buffer_cap: 512 * 1024 * 1024,
        }
    }
}

/// Observability hooks, all optional. Cloned atomic handles — the reactor
/// updates them inline.
#[derive(Debug, Clone, Default)]
pub struct ReactorHooks {
    /// Set to the number of currently open connections.
    pub open_connections: Option<Gauge>,
    /// Set to the number of calls dispatched but not yet replied.
    pub inflight_calls: Option<Gauge>,
    /// Incremented once per connection torn down for a malformed frame.
    pub rejected_frames: Option<Counter>,
}

/// One decoded request, as handed to the handler.
pub struct Request {
    /// Reactor-assigned connection id (stable for the connection's life).
    pub conn_id: u64,
    /// The caller's mux id; echoed verbatim on the reply frame.
    pub call_id: u64,
    /// The decoded message.
    pub message: Message,
    /// Peer address, for logs.
    pub peer: SocketAddr,
}

/// Handler run on worker threads: returns the reply (None = no reply).
pub type Handler = Arc<dyn Fn(Request) -> Option<Message> + Send + Sync>;

enum Command {
    /// Encoded reply frame for a connection; also decrements its in-flight
    /// count. `bytes: None` means the handler had no reply (count only).
    Reply { conn: u64, bytes: Option<Vec<u8>> },
    /// Stop accepting new connections but keep serving existing ones.
    StopAccepting,
    /// Stop accepting and stop reading; serve out every call already
    /// dispatched, flush its reply, then drop the connections and exit.
    Stop,
}

const TOKEN_LISTENER: u64 = 0;
const TOKEN_WAKER: u64 = 1;
const FIRST_CONN_TOKEN: u64 = 2;

/// Sends one byte down a socketpair to interrupt `Poller::wait`.
#[derive(Clone)]
struct Waker(Arc<UnixStream>);

impl Waker {
    fn wake(&self) {
        // A full pipe already guarantees a pending wakeup; all errors are
        // ignorable.
        let _ = (&*self.0).write(&[1u8]);
    }
}

struct Conn {
    stream: TcpStream,
    peer: SocketAddr,
    /// Staged bytes not yet consumed by frame extraction.
    read_buf: Vec<u8>,
    /// Reply frames waiting for the socket to accept them.
    write_queue: VecDeque<Vec<u8>>,
    /// Bytes of `write_queue[0]` already written.
    write_off: usize,
    /// Calls dispatched to workers, not yet replied.
    inflight: usize,
    interest: Interest,
}

/// A running reactor. Dropping the handle stops it.
pub struct ReactorHandle {
    local_addr: SocketAddr,
    cmd_tx: Sender<Command>,
    waker: Waker,
    thread: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ReactorHandle {
    /// The listener's bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stop accepting new connections; existing connections keep being
    /// served (the drain phase of a graceful shutdown).
    pub fn stop_accepting(&self) {
        let _ = self.cmd_tx.send(Command::StopAccepting);
        self.waker.wake();
    }

    /// Tear everything down and join the reactor and worker threads. Calls
    /// already dispatched to workers are served out and their replies
    /// flushed before the sockets close — nothing is cut off mid-reply —
    /// so this blocks for as long as the slowest in-flight handler runs.
    pub fn shutdown(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        let _ = self.cmd_tx.send(Command::Stop);
        self.waker.wake();
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for ReactorHandle {
    fn drop(&mut self) {
        if self.thread.is_some() {
            self.stop_inner();
        }
    }
}

/// The event loop plus its worker pool.
pub struct Reactor;

impl Reactor {
    /// Take ownership of `listener` and serve it until shutdown.
    pub fn start(
        listener: TcpListener,
        config: ReactorConfig,
        handler: Handler,
        hooks: ReactorHooks,
    ) -> io::Result<ReactorHandle> {
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let (wake_rx, wake_tx) = UnixStream::pair()?;
        wake_rx.set_nonblocking(true)?;
        wake_tx.set_nonblocking(true)?;
        let waker = Waker(Arc::new(wake_tx));

        let (cmd_tx, cmd_rx) = unbounded::<Command>();
        let (work_tx, work_rx) = unbounded::<Request>();
        // The shim's receiver is not cloneable; workers share it behind an
        // Arc (recv takes &self).
        let work_rx = Arc::new(work_rx);

        let inflight_total = Arc::new(AtomicI64::new(0));
        let workers = (0..config.workers.max(1))
            .map(|i| {
                let work_rx: Arc<Receiver<Request>> = work_rx.clone();
                let cmd_tx = cmd_tx.clone();
                let waker = waker.clone();
                let handler = handler.clone();
                std::thread::Builder::new()
                    .name(format!("ninf-worker-{i}"))
                    .spawn(move || {
                        while let Ok(req) = work_rx.recv() {
                            let conn = req.conn_id;
                            let call_id = req.call_id;
                            let reply = handler(req);
                            let bytes = reply
                                .as_ref()
                                .and_then(|msg| encode_frame(call_id, msg).ok());
                            if cmd_tx.send(Command::Reply { conn, bytes }).is_err() {
                                break;
                            }
                            waker.wake();
                        }
                    })
                    .expect("spawn worker")
            })
            .collect();
        drop(work_rx);

        let mut state = Loop {
            poller: Poller::new()?,
            listener,
            wake_rx,
            conns: HashMap::new(),
            next_token: FIRST_CONN_TOKEN,
            cmd_rx,
            work_tx,
            config,
            hooks,
            inflight_total,
            accepting: true,
            draining: false,
        };
        state
            .poller
            .register(state.listener.as_raw_fd(), TOKEN_LISTENER, Interest::READ)?;
        state
            .poller
            .register(state.wake_rx.as_raw_fd(), TOKEN_WAKER, Interest::READ)?;

        let thread = std::thread::Builder::new()
            .name("ninf-reactor".into())
            .spawn(move || state.run())?;

        Ok(ReactorHandle {
            local_addr,
            cmd_tx,
            waker,
            thread: Some(thread),
            workers,
        })
    }
}

struct Loop {
    poller: Poller,
    listener: TcpListener,
    wake_rx: UnixStream,
    conns: HashMap<u64, Conn>,
    next_token: u64,
    cmd_rx: Receiver<Command>,
    work_tx: Sender<Request>,
    config: ReactorConfig,
    hooks: ReactorHooks,
    inflight_total: Arc<AtomicI64>,
    accepting: bool,
    /// Stop requested: no new reads, exit once in-flight work is served out
    /// and every reply flushed.
    draining: bool,
}

impl Loop {
    fn run(&mut self) {
        let mut events: Vec<PollEvent> = Vec::new();
        loop {
            events.clear();
            if self.poller.wait(&mut events, 500).is_err() {
                break;
            }
            // Commands first: replies free in-flight slots, which can
            // re-enable paused connections before their events process.
            self.drain_commands();
            for ev in events.iter().copied() {
                match ev.token {
                    TOKEN_LISTENER => self.accept_ready(),
                    TOKEN_WAKER => self.drain_waker(),
                    token => self.conn_ready(token, ev),
                }
            }
            if self.draining
                && self.inflight_total.load(Ordering::Relaxed) == 0
                && self.conns.values().all(|c| c.write_queue.is_empty())
            {
                break;
            }
        }
        // Teardown: deregister and drop every connection.
        let tokens: Vec<u64> = self.conns.keys().copied().collect();
        for t in tokens {
            self.close_conn(t);
        }
    }

    fn drain_commands(&mut self) {
        while let Ok(Some(cmd)) = self.cmd_rx.try_recv() {
            match cmd {
                Command::Reply { conn, bytes } => self.handle_reply(conn, bytes),
                Command::StopAccepting => self.stop_accepting(),
                Command::Stop => {
                    self.stop_accepting();
                    self.draining = true;
                    // Drop read interest everywhere: dispatched calls finish,
                    // but no new frames enter.
                    let tokens: Vec<u64> = self.conns.keys().copied().collect();
                    for t in tokens {
                        self.update_interest(t);
                    }
                }
            }
        }
    }

    fn stop_accepting(&mut self) {
        if self.accepting {
            self.accepting = false;
            let _ = self.poller.deregister(self.listener.as_raw_fd());
        }
    }

    fn drain_waker(&mut self) {
        let mut buf = [0u8; 64];
        while matches!((&self.wake_rx).read(&mut buf), Ok(n) if n > 0) {}
    }

    fn accept_ready(&mut self) {
        while self.accepting {
            match self.listener.accept() {
                Ok((stream, peer)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let token = self.next_token;
                    self.next_token += 1;
                    if self
                        .poller
                        .register(stream.as_raw_fd(), token, Interest::READ)
                        .is_err()
                    {
                        continue;
                    }
                    self.conns.insert(
                        token,
                        Conn {
                            stream,
                            peer,
                            read_buf: Vec::new(),
                            write_queue: VecDeque::new(),
                            write_off: 0,
                            inflight: 0,
                            interest: Interest::READ,
                        },
                    );
                    self.set_open_gauge();
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
    }

    fn conn_ready(&mut self, token: u64, ev: PollEvent) {
        if ev.error && !ev.readable {
            self.close_conn(token);
            return;
        }
        if ev.writable && !self.flush_writes(token) {
            return;
        }
        if ev.readable {
            self.read_ready(token);
        }
    }

    /// Pull bytes off the socket and extract frames. Returns false if the
    /// connection was closed.
    fn read_ready(&mut self, token: u64) -> bool {
        let mut scratch = [0u8; 64 * 1024];
        loop {
            let conn = match self.conns.get_mut(&token) {
                Some(c) => c,
                None => return false,
            };
            if !conn.interest.readable {
                // Paused by backpressure; leave the bytes in the kernel.
                return true;
            }
            if conn.read_buf.len() >= self.config.read_buffer_cap {
                self.update_interest(token);
                return true;
            }
            match conn.stream.read(&mut scratch) {
                Ok(0) => {
                    self.close_conn(token);
                    return false;
                }
                Ok(n) => {
                    conn.read_buf.extend_from_slice(&scratch[..n]);
                    if !self.extract_frames(token) {
                        return false;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return true,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close_conn(token);
                    return false;
                }
            }
        }
    }

    /// Parse complete frames out of the staging buffer and dispatch them.
    /// Returns false if the connection was closed (malformed frame).
    fn extract_frames(&mut self, token: u64) -> bool {
        let mut consumed = 0usize;
        let mut dispatched: Vec<Request> = Vec::new();
        let (close, pause_changed) = {
            let conn = match self.conns.get_mut(&token) {
                Some(c) => c,
                None => return false,
            };
            let mut close = false;
            loop {
                if conn.inflight + dispatched.len() >= self.config.max_inflight_per_conn {
                    break;
                }
                let buf = &conn.read_buf[consumed..];
                if buf.len() < FRAME_HEADER_BYTES {
                    break;
                }
                let header: [u8; FRAME_HEADER_BYTES] =
                    buf[..FRAME_HEADER_BYTES].try_into().expect("header slice");
                let header = match parse_frame_header(&header) {
                    Ok(h) => h,
                    Err(_) => {
                        close = true;
                        break;
                    }
                };
                let total = FRAME_HEADER_BYTES + header.len as usize;
                if buf.len() < total {
                    break;
                }
                match check_frame_payload(&header, &buf[FRAME_HEADER_BYTES..total]) {
                    Ok(message) => {
                        dispatched.push(Request {
                            conn_id: token,
                            call_id: header.call_id,
                            message,
                            peer: conn.peer,
                        });
                        consumed += total;
                    }
                    Err(_) => {
                        close = true;
                        break;
                    }
                }
            }
            if consumed > 0 {
                conn.read_buf.drain(..consumed);
            }
            conn.inflight += dispatched.len();
            (close, true)
        };
        let n = dispatched.len() as i64;
        if n > 0 {
            self.inflight_total.fetch_add(n, Ordering::Relaxed);
            self.set_inflight_gauge();
            for req in dispatched {
                let _ = self.work_tx.send(req);
            }
        }
        if close {
            if let Some(c) = &self.hooks.rejected_frames {
                c.inc();
            }
            self.close_conn(token);
            return false;
        }
        if pause_changed {
            self.update_interest(token);
        }
        true
    }

    fn handle_reply(&mut self, token: u64, bytes: Option<Vec<u8>>) {
        self.inflight_total.fetch_sub(1, Ordering::Relaxed);
        self.set_inflight_gauge();
        let had_conn = if let Some(conn) = self.conns.get_mut(&token) {
            conn.inflight = conn.inflight.saturating_sub(1);
            if let Some(b) = bytes {
                conn.write_queue.push_back(b);
            }
            true
        } else {
            false
        };
        if had_conn && self.flush_writes(token) {
            // Freed an in-flight slot: frames may already be staged.
            if self.extract_frames(token) {
                self.update_interest(token);
            }
        }
    }

    /// Write queued reply bytes until drained or WouldBlock. Returns false
    /// if the connection was closed.
    fn flush_writes(&mut self, token: u64) -> bool {
        loop {
            let conn = match self.conns.get_mut(&token) {
                Some(c) => c,
                None => return false,
            };
            let front = match conn.write_queue.front() {
                Some(f) => f,
                None => {
                    self.update_interest(token);
                    return true;
                }
            };
            match conn.stream.write(&front[conn.write_off..]) {
                Ok(0) => {
                    self.close_conn(token);
                    return false;
                }
                Ok(n) => {
                    conn.write_off += n;
                    if conn.write_off == front.len() {
                        conn.write_queue.pop_front();
                        conn.write_off = 0;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    self.update_interest(token);
                    return true;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close_conn(token);
                    return false;
                }
            }
        }
    }

    /// Recompute a connection's poller interest from its state: read while
    /// under the in-flight and buffer caps, write while replies are queued.
    fn update_interest(&mut self, token: u64) {
        let (fd, want, have) = match self.conns.get_mut(&token) {
            Some(conn) => {
                let readable = !self.draining
                    && conn.inflight < self.config.max_inflight_per_conn
                    && conn.read_buf.len() < self.config.read_buffer_cap;
                let writable = !conn.write_queue.is_empty();
                let want = Interest { readable, writable };
                let have = conn.interest;
                conn.interest = want;
                (conn.stream.as_raw_fd(), want, have)
            }
            None => return,
        };
        if want != have {
            let _ = self.poller.modify(fd, token, want);
        }
    }

    fn close_conn(&mut self, token: u64) {
        if let Some(conn) = self.conns.remove(&token) {
            let _ = self.poller.deregister(conn.stream.as_raw_fd());
            // Calls still in flight on this connection will decrement the
            // global gauge when their Reply commands arrive (the per-conn
            // count dies with the conn).
            self.set_open_gauge();
        }
    }

    fn set_open_gauge(&self) {
        if let Some(g) = &self.hooks.open_connections {
            g.set(self.conns.len() as f64);
        }
    }

    fn set_inflight_gauge(&self) {
        if let Some(g) = &self.hooks.inflight_calls {
            g.set(self.inflight_total.load(Ordering::Relaxed).max(0) as f64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ninf_protocol::{read_frame_mux, write_frame_mux, ProtocolResult, TcpTransport, Transport};
    use std::io::BufReader;
    use std::time::Duration;

    fn echo_handler() -> Handler {
        Arc::new(|req: Request| match req.message {
            Message::QueryInterface { routine } => Some(Message::Error {
                reason: format!("echo:{routine}"),
            }),
            Message::QueryLoad => Some(Message::Error {
                reason: "load".into(),
            }),
            other => Some(Message::Error {
                reason: format!("unhandled {other:?}"),
            }),
        })
    }

    fn start_echo() -> ReactorHandle {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        Reactor::start(
            listener,
            ReactorConfig::default(),
            echo_handler(),
            ReactorHooks::default(),
        )
        .unwrap()
    }

    #[test]
    fn sequential_transport_client_is_served() {
        let handle = start_echo();
        let mut t = TcpTransport::connect(&handle.local_addr().to_string()).unwrap();
        t.send(&Message::QueryInterface {
            routine: "ep".into(),
        })
        .unwrap();
        let reply = t.recv().unwrap();
        assert_eq!(
            reply,
            Message::Error {
                reason: "echo:ep".into()
            }
        );
        handle.shutdown();
    }

    #[test]
    fn replies_echo_the_request_call_id() {
        let handle = start_echo();
        let stream = TcpStream::connect(handle.local_addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        // Many in-flight calls on one stream, ids far apart.
        let ids = [3u64, 9, 1_000_000_007, u64::MAX - 1];
        for &id in &ids {
            write_frame_mux(
                &mut writer,
                id,
                &Message::QueryInterface {
                    routine: format!("r{id}"),
                },
            )
            .unwrap();
        }
        let mut got: Vec<u64> = Vec::new();
        for _ in &ids {
            let (id, msg) = read_frame_mux(&mut reader).unwrap();
            assert_eq!(
                msg,
                Message::Error {
                    reason: format!("echo:r{id}")
                },
                "reply payload must match its id"
            );
            got.push(id);
        }
        got.sort_unstable();
        let mut want = ids.to_vec();
        want.sort_unstable();
        assert_eq!(got, want);
        handle.shutdown();
    }

    #[test]
    fn malformed_frame_closes_only_that_connection() {
        let hooks = ReactorHooks {
            rejected_frames: Some(Counter::default()),
            ..Default::default()
        };
        let rejected = hooks.rejected_frames.clone().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let handle =
            Reactor::start(listener, ReactorConfig::default(), echo_handler(), hooks).unwrap();
        let addr = handle.local_addr().to_string();

        // Healthy connection A.
        let mut a = TcpTransport::connect(&addr).unwrap();
        a.send(&Message::QueryLoad).unwrap();
        a.recv().unwrap();

        // Connection B sends garbage and dies.
        let mut b = TcpTransport::connect(&addr).unwrap();
        b.send_raw(b"NOT A FRAME AT ALL........").unwrap();
        b.set_deadline(Some(Duration::from_secs(5))).unwrap();
        assert!(b.recv().is_err(), "poisoned connection must be closed");

        // A still works.
        a.send(&Message::QueryLoad).unwrap();
        a.recv().unwrap();
        assert_eq!(rejected.get(), 1);
        handle.shutdown();
    }

    #[test]
    fn gauges_track_connections_and_inflight() {
        let hooks = ReactorHooks {
            open_connections: Some(Gauge::default()),
            inflight_calls: Some(Gauge::default()),
            ..Default::default()
        };
        let open = hooks.open_connections.clone().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let handle =
            Reactor::start(listener, ReactorConfig::default(), echo_handler(), hooks).unwrap();
        let addr = handle.local_addr().to_string();
        let mut t = TcpTransport::connect(&addr).unwrap();
        t.send(&Message::QueryLoad).unwrap();
        t.recv().unwrap();
        assert_eq!(open.get(), 1.0);
        drop(t);
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while open.get() > 0.0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(open.get(), 0.0, "close must be observed");
        handle.shutdown();
    }

    #[test]
    fn stop_accepting_refuses_new_but_serves_existing() {
        let handle = start_echo();
        let addr = handle.local_addr().to_string();
        let mut existing = TcpTransport::connect(&addr).unwrap();
        existing.send(&Message::QueryLoad).unwrap();
        existing.recv().unwrap();

        handle.stop_accepting();
        std::thread::sleep(Duration::from_millis(50));

        // Existing connection still works.
        existing.send(&Message::QueryLoad).unwrap();
        existing.recv().unwrap();

        // A new connection may complete the TCP handshake (backlog) but
        // must never be served.
        let probe: ProtocolResult<Message> = (|| {
            let mut t =
                TcpTransport::connect_with_deadline(&addr, Some(Duration::from_millis(300)))?;
            t.set_deadline(Some(Duration::from_millis(300)))?;
            t.send(&Message::QueryLoad)?;
            t.recv()
        })();
        assert!(probe.is_err(), "new connections must not be served");
        handle.shutdown();
    }

    #[test]
    fn per_conn_inflight_cap_still_completes_all_calls() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let handle = Reactor::start(
            listener,
            ReactorConfig {
                workers: 2,
                max_inflight_per_conn: 4,
                ..Default::default()
            },
            echo_handler(),
            ReactorHooks::default(),
        )
        .unwrap();
        let stream = TcpStream::connect(handle.local_addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        // Burst far above the cap: backpressure must pace, not deadlock.
        let total = 64u64;
        let w = std::thread::spawn(move || {
            for id in 1..=total {
                write_frame_mux(&mut writer, id, &Message::QueryLoad).unwrap();
            }
        });
        let mut seen = std::collections::HashSet::new();
        for _ in 0..total {
            let (id, _) = read_frame_mux(&mut reader).unwrap();
            assert!(seen.insert(id), "duplicate reply id {id}");
        }
        w.join().unwrap();
        assert_eq!(seen.len(), total as usize);
        handle.shutdown();
    }
}
