//! ninf-reactor: the event-driven connection core of the Ninf stack.
//!
//! The SC'97 paper's multi-client analysis stops at tens of clients per
//! ninfd because the original server is thread-per-connection — and so was
//! this reproduction's, until this crate. It holds the four pieces of the
//! C10k path:
//!
//! * [`sys`] — readiness polling (epoll on Linux, poll(2) elsewhere) via
//!   direct FFI, no external dependency;
//! * [`reactor`] — the server core: one reactor thread owning every
//!   nonblocking socket, a bounded worker pool running handlers, per-
//!   connection in-flight backpressure;
//! * [`mux`] — the client side of v3 call multiplexing: one stream, many
//!   in-flight calls, per-call deadlines, poison-on-error teardown;
//! * [`pool`] — `MuxPool`, checkout/reuse of multiplexed streams with
//!   hit/miss accounting, replacing connect-per-call;
//! * [`driver`] — the single-threaded open-loop load driver behind the
//!   `lan-c10k` scenario.

pub mod driver;
pub mod mux;
pub mod pool;
pub mod reactor;
pub mod sys;

pub use driver::{run_open_loop, CallSample, DriverConfig, DriverReport};
pub use mux::{MuxHandle, MuxStream, DEFAULT_MAX_INFLIGHT};
pub use pool::{global_pool, Checkout, MuxPool, PoolConfig};
pub use reactor::{Handler, Reactor, ReactorConfig, ReactorHandle, ReactorHooks, Request};
