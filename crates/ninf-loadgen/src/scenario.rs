//! The scenario library: named, ready-to-run workload + target bundles
//! mirroring the paper's experiment shapes.

use std::time::Duration;

use ninf_client::CallOptions;
use ninf_server::{SchedPolicy, ServerCore};

use crate::runner::Target;
use crate::spec::{Arrival, MixEntry, Phases, Routine, WorkloadSpec};

/// A named workload + target bundle.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// CLI name.
    pub name: &'static str,
    /// One-line description.
    pub about: &'static str,
    /// The workload.
    pub spec: WorkloadSpec,
    /// What to run it against (the CLI may override with an external
    /// address).
    pub target: Target,
}

/// Names of every built-in scenario, in menu order.
pub fn scenario_names() -> Vec<&'static str> {
    vec![
        "lan-linpack",
        "lan-ep",
        "lan-c10k",
        "metaserver-ft",
        "wan-iterative",
        "wan-streams",
    ]
}

/// Look up a built-in scenario by name.
pub fn scenario(name: &str) -> Option<Scenario> {
    match name {
        // The paper's §4.1 LAN rig: N closed-loop clients hammering one
        // server with Linpack, no think time — per-call Mflops must fall as
        // clients contend for the single gate (Table 3's shape).
        "lan-linpack" => Some(Scenario {
            name: "lan-linpack",
            about: "closed-loop Linpack n=256 against a 1-PE server (Table 3 shape)",
            spec: WorkloadSpec {
                mix: vec![MixEntry {
                    routine: Routine::Linpack { n: 256 },
                    weight: 1,
                }],
                arrival: Arrival::Closed {
                    think: Duration::ZERO,
                },
                phases: Phases::none(),
                calls_per_client: 12,
                unique_args: false,
                options: CallOptions::default(),
            },
            target: Target::Spawn {
                pes: 1,
                policy: SchedPolicy::Fcfs,
                core: ServerCore::default(),
            },
        }),
        // Open-loop EP at a fixed offered rate with ramp phases: the
        // DiPerF-style rig. Small kernel, call-rate bound, deadline set so
        // a wedged server surfaces as timeouts rather than a hang.
        "lan-ep" => Some(Scenario {
            name: "lan-ep",
            about: "open-loop EP 2^14 at 40 Hz/client with ramp phases against a 4-PE server",
            spec: WorkloadSpec {
                mix: vec![MixEntry {
                    routine: Routine::Ep { m: 14 },
                    weight: 1,
                }],
                arrival: Arrival::Open { rate_hz: 40.0 },
                phases: Phases {
                    ramp_up: 0.5,
                    steady: 2.0,
                    ramp_down: 0.5,
                },
                calls_per_client: 0,
                unique_args: false,
                options: CallOptions {
                    deadline: Some(Duration::from_secs(5)),
                    ..CallOptions::default()
                },
            },
            target: Target::Spawn {
                pes: 4,
                policy: SchedPolicy::Fcfs,
                core: ServerCore::default(),
            },
        }),
        // The C10k rig: thousands of multiplexed connections from one
        // open-loop driver thread, tiny EP payloads so the measurement is
        // connection-scaling, not compute. `--clients` is the connection
        // count (c ∈ {256, 1024, 4096, 10000} in the committed benchmark);
        // the per-connection rate scales to an aggregate schedule.
        "lan-c10k" => Some(Scenario {
            name: "lan-c10k",
            about: "open-loop tiny-EP over --clients multiplexed connections (reactor core)",
            spec: WorkloadSpec {
                mix: vec![MixEntry {
                    routine: Routine::Ep { m: 4 },
                    weight: 1,
                }],
                arrival: Arrival::Open { rate_hz: 1.0 },
                phases: Phases {
                    ramp_up: 0.0,
                    steady: 5.0,
                    ramp_down: 0.0,
                },
                calls_per_client: 0,
                unique_args: false,
                options: CallOptions {
                    deadline: Some(Duration::from_secs(10)),
                    ..CallOptions::default()
                },
            },
            target: Target::Spawn {
                pes: 4,
                policy: SchedPolicy::Fcfs,
                core: ServerCore::default(),
            },
        }),
        // A two-server fleet behind the metaserver with a mixed workload
        // and a retrying reliability policy — the fault-tolerant routing
        // path under multi-client load.
        "metaserver-ft" => Some(Scenario {
            name: "metaserver-ft",
            about: "mixed EP+Linpack through a metaserver-fronted 2-server fleet, retrying policy",
            spec: WorkloadSpec {
                mix: vec![
                    MixEntry {
                        routine: Routine::Ep { m: 12 },
                        weight: 3,
                    },
                    MixEntry {
                        routine: Routine::Linpack { n: 64 },
                        weight: 1,
                    },
                ],
                arrival: Arrival::Closed {
                    think: Duration::from_millis(5),
                },
                phases: Phases::none(),
                calls_per_client: 10,
                unique_args: false,
                options: CallOptions {
                    deadline: Some(Duration::from_secs(5)),
                    retries: 2,
                    backoff: Duration::from_millis(50),
                    ..CallOptions::default()
                },
            },
            target: Target::SpawnFleet { servers: 2, pes: 2 },
        }),
        // The iterative WAN rig: each client runs a closed-loop N-body
        // sweep whose O(n) particle arrays repeat verbatim call after call
        // — on the simulated FluidNet WAN link the first (cold) iteration
        // is bandwidth-bound and every warm iteration ships only digests,
        // so this is the scenario that measures the argument cache. Run it
        // with `--no-arg-cache` for the every-call-pays-full-freight
        // baseline.
        "wan-iterative" => Some(Scenario {
            name: "wan-iterative",
            about: "closed-loop iterative N-body n=16384; warm calls ship arg digests, not arrays",
            spec: WorkloadSpec {
                mix: vec![MixEntry {
                    routine: Routine::Nbody { n: 16384 },
                    weight: 1,
                }],
                arrival: Arrival::Closed {
                    think: Duration::ZERO,
                },
                phases: Phases::none(),
                calls_per_client: 16,
                unique_args: false,
                options: CallOptions {
                    deadline: Some(Duration::from_secs(30)),
                    ..CallOptions::default()
                },
            },
            target: Target::Spawn {
                pes: 2,
                policy: SchedPolicy::Fcfs,
                core: ServerCore::default(),
            },
        }),
        // The GridFTP-shaped parallel-stream rig: every call ships a fresh
        // (salted, so never cached) 512 KiB Linpack matrix, pre-shipped as
        // chunks over `options.streams` bulk lanes. Sweep the stream count
        // with `ninf-load --streams 1,2,4,8,16 --wan <spec>` to measure
        // goodput-vs-N on a shaped link: goodput rises while lanes pipeline
        // through each other's propagation gaps, knees when the link
        // saturates, and degrades at high N as the congestion term drives
        // up the effective loss rate.
        "wan-streams" => Some(Scenario {
            name: "wan-streams",
            about: "parallel-stream bulk upload of unique 512 KiB matrices over a shaped link",
            spec: WorkloadSpec {
                mix: vec![MixEntry {
                    routine: Routine::Linpack { n: 256 },
                    weight: 1,
                }],
                arrival: Arrival::Closed {
                    think: Duration::ZERO,
                },
                phases: Phases::none(),
                calls_per_client: 6,
                unique_args: true,
                options: CallOptions {
                    deadline: Some(Duration::from_secs(60)),
                    // Loss recovery budget per chunk, not per call: a few
                    // shaped round trips (worst case ~86 ms with 16 lanes
                    // queued on a 4 MB/s link), so a lost 16 KiB chunk
                    // stalls its lane for ~0.15 s instead of the whole
                    // call deadline.
                    lane_deadline: Some(Duration::from_millis(150)),
                    streams: 4,
                    ..CallOptions::default()
                },
            },
            target: Target::Spawn {
                pes: 2,
                policy: SchedPolicy::Fcfs,
                core: ServerCore::default(),
            },
        }),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_listed_name_resolves() {
        for name in scenario_names() {
            let sc = scenario(name).expect("listed scenario exists");
            assert_eq!(sc.name, name);
            assert!(!sc.spec.mix.is_empty());
        }
        assert!(scenario("no-such").is_none());
    }

    #[test]
    fn lan_linpack_is_the_papers_closed_loop_rig() {
        let sc = scenario("lan-linpack").unwrap();
        assert!(matches!(
            sc.spec.arrival,
            Arrival::Closed { think } if think == Duration::ZERO
        ));
        assert!(matches!(sc.target, Target::Spawn { pes: 1, .. }));
        assert!(sc.spec.calls_per_client > 0);
        // Linpack-only mix so per-call Mflops is defined for every call.
        assert!(sc
            .spec
            .mix
            .iter()
            .all(|e| matches!(e.routine, Routine::Linpack { .. })));
    }

    #[test]
    fn lan_ep_is_open_loop_with_ramps_and_deadline() {
        let sc = scenario("lan-ep").unwrap();
        assert!(matches!(sc.spec.arrival, Arrival::Open { rate_hz } if rate_hz > 0.0));
        assert!(sc.spec.phases.ramp_up > 0.0 && sc.spec.phases.ramp_down > 0.0);
        assert!(sc.spec.options.deadline.is_some());
    }

    #[test]
    fn lan_c10k_targets_the_reactor_core() {
        let sc = scenario("lan-c10k").unwrap();
        assert!(matches!(
            sc.target,
            Target::Spawn {
                core: ServerCore::Reactor { .. },
                ..
            }
        ));
        assert!(matches!(sc.spec.arrival, Arrival::Open { rate_hz } if rate_hz > 0.0));
        assert!(sc.spec.options.deadline.is_some());
    }

    #[test]
    fn wan_iterative_repeats_one_nbody_size_closed_loop() {
        let sc = scenario("wan-iterative").unwrap();
        // One size, closed loop, many iterations: every call after the
        // first carries byte-identical particle arrays — the cache's case.
        assert_eq!(sc.spec.mix.len(), 1);
        assert!(matches!(sc.spec.mix[0].routine, Routine::Nbody { .. }));
        assert!(matches!(sc.spec.arrival, Arrival::Closed { .. }));
        assert!(sc.spec.calls_per_client >= 8);
        assert!(sc.spec.options.arg_cache);
    }

    #[test]
    fn metaserver_ft_routes_through_a_fleet_with_retries() {
        let sc = scenario("metaserver-ft").unwrap();
        assert!(matches!(sc.target, Target::SpawnFleet { servers: 2, .. }));
        assert!(sc.spec.options.retries > 0);
        assert!(sc.spec.mix.len() > 1);
    }
}
