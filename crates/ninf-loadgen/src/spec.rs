//! Declarative workload specification: what the client fleet calls, how
//! arrivals are generated, and how the run ramps.
//!
//! Everything that shapes load is a pure function of `(spec, seed, client
//! index, client count)` — in particular the open-loop arrival schedule is
//! deterministic and byte-identical across runs with the same seed, so two
//! measurements of the same scenario differ only in what the system under
//! test did, never in what was offered to it.

use std::time::Duration;

use ninf_client::CallOptions;

/// One routine+size the mix can draw.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Routine {
    /// `linpack(n)`: generate-and-solve an `n × n` system server-side.
    Linpack {
        /// Matrix order.
        n: usize,
    },
    /// `ep(m)`: `2^m` embarrassingly-parallel trials.
    Ep {
        /// Trial exponent.
        m: i32,
    },
    /// `nbody(n, step, …)`: evaluate the field of `n` fixed particles at the
    /// per-iteration probe grid. The particle arrays repeat verbatim across
    /// calls, so this is the argument-cache workload: only `step` changes.
    Nbody {
        /// Source particle count.
        n: usize,
    },
}

impl Routine {
    /// Wire name of the routine.
    pub fn name(&self) -> &'static str {
        match self {
            Routine::Linpack { .. } => "linpack",
            Routine::Ep { .. } => "ep",
            Routine::Nbody { .. } => "nbody",
        }
    }

    /// The first scalar argument (`n` / `m`) — the paper's table-row key.
    pub fn scalar(&self) -> i64 {
        match self {
            Routine::Linpack { n } => *n as i64,
            Routine::Ep { m } => *m as i64,
            Routine::Nbody { n } => *n as i64,
        }
    }

    /// Floating-point operations one call performs, when the kernel has a
    /// standard count (Linpack's `2n³/3 + 2n²`); `None` where the paper
    /// reports no Mflops (EP throughput is calls/s).
    pub fn flops(&self) -> Option<u64> {
        match self {
            Routine::Linpack { n } => Some(ninf_exec::linpack_flops(*n as u64)),
            Routine::Ep { .. } => None,
            Routine::Nbody { n } => Some(ninf_exec::nbody_flops(*n) as u64),
        }
    }
}

/// A weighted mix entry: `weight` parts of the per-client call stream are
/// `routine`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MixEntry {
    /// What to call.
    pub routine: Routine,
    /// Relative weight (0 = never).
    pub weight: u32,
}

/// How a client decides when to issue its next call.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Arrival {
    /// Closed loop (the paper's §4.1 rig: "each client repeatedly issues
    /// Ninf_call"): the next call starts `think` after the previous one
    /// completes.
    Closed {
        /// Think time between completion and next submission.
        think: Duration,
    },
    /// Open loop: calls are issued at pre-computed, seeded exponential
    /// inter-arrival offsets regardless of completions (a client that falls
    /// behind issues late but never skips).
    Open {
        /// Mean arrival rate per client, in calls/second.
        rate_hz: f64,
    },
}

/// Run phases, in seconds: clients start staggered across `ramp_up`, all run
/// during `steady`, and stop staggered across `ramp_down`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Phases {
    /// Window over which client starts are staggered.
    pub ramp_up: f64,
    /// Full-fleet window.
    pub steady: f64,
    /// Window over which client stops are staggered.
    pub ramp_down: f64,
}

impl Phases {
    /// No ramping: everyone starts at 0 and runs to their call budget.
    pub fn none() -> Self {
        Phases {
            ramp_up: 0.0,
            ramp_down: 0.0,
            steady: 0.0,
        }
    }

    /// Total scheduled run length.
    pub fn total(&self) -> f64 {
        self.ramp_up + self.steady + self.ramp_down
    }

    /// Active `[start, end)` window (seconds from run start) of `client`
    /// among `clients`: client `i` starts at `ramp_up·i/c` and ends at
    /// `total − ramp_down·(c−1−i)/c`.
    pub fn window(&self, client: usize, clients: usize) -> (f64, f64) {
        let c = clients.max(1) as f64;
        let i = client as f64;
        let start = self.ramp_up * i / c;
        let end = self.total() - self.ramp_down * (c - 1.0 - i) / c;
        (start, end.max(start))
    }
}

/// The full declarative workload.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// Weighted routine+size mix each client draws from.
    pub mix: Vec<MixEntry>,
    /// Arrival process.
    pub arrival: Arrival,
    /// Ramp phases (govern open-loop schedules and closed-loop start
    /// staggering).
    pub phases: Phases,
    /// Closed-loop call budget per client (open loop derives its count from
    /// the schedule instead).
    pub calls_per_client: usize,
    /// Salt every array argument with the `(client, seq)` pair so no two
    /// calls ever ship byte-identical payloads. This defeats the argument
    /// cache *by construction* — exactly what a transfer benchmark wants:
    /// with repeats collapsed to digests, only the first call would
    /// measure the network.
    pub unique_args: bool,
    /// Reliability policy each live client runs under.
    pub options: CallOptions,
}

/// SplitMix64: the crate's only randomness source. Deterministic, seedable,
/// and embarrassingly reproducible — exactly what a measurement harness
/// wants from its arrival process.
#[derive(Debug, Clone)]
pub struct SplitMix64(u64);

impl SplitMix64 {
    /// Stream seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        Self(seed)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Exponential with mean `1/rate` (inter-arrival of a Poisson process).
    pub fn next_exp(&mut self, rate: f64) -> f64 {
        // 1 − u ∈ (0, 1] so ln is finite.
        -(1.0 - self.next_f64()).ln() / rate
    }
}

/// FNV-1a over a byte slice; used to fingerprint schedules in reports.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in bytes {
        h = (h ^ u64::from(*b)).wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Canonical little-endian serialization of a schedule, the unit of the
/// "byte-identical across runs" guarantee.
pub fn schedule_bytes(schedule: &[f64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(schedule.len() * 8);
    for t in schedule {
        out.extend_from_slice(&t.to_le_bytes());
    }
    out
}

impl WorkloadSpec {
    /// Per-client RNG stream for purpose `salt`, decorrelated across
    /// clients.
    fn stream(seed: u64, client: usize, salt: u64) -> SplitMix64 {
        SplitMix64::new(
            seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ (client as u64).wrapping_mul(0xA076_1D64_78BD_642F),
        )
    }

    /// The open-loop arrival offsets (seconds from run start) of `client`
    /// among `clients` under `seed`. Pure: same inputs, same bytes. Closed
    /// loops return an empty schedule — their arrivals are completion-driven.
    pub fn arrival_schedule(&self, seed: u64, client: usize, clients: usize) -> Vec<f64> {
        match self.arrival {
            Arrival::Closed { .. } => Vec::new(),
            Arrival::Open { rate_hz } => {
                let (start, end) = self.phases.window(client, clients);
                let mut rng = Self::stream(seed, client, 0x5ced);
                let mut out = Vec::new();
                let mut t = start;
                loop {
                    t += rng.next_exp(rate_hz);
                    if t >= end {
                        return out;
                    }
                    out.push(t);
                }
            }
        }
    }

    /// Routine of call number `seq` for `client`: a weighted draw from an
    /// independent deterministic stream, so the mix is reproducible and
    /// independent of arrival timing.
    pub fn pick_routine(&self, seed: u64, client: usize, seq: usize) -> Routine {
        let total: u64 = self.mix.iter().map(|e| u64::from(e.weight)).sum();
        if total == 0 {
            return self
                .mix
                .first()
                .map(|e| e.routine)
                .unwrap_or(Routine::Ep { m: 8 });
        }
        let mut rng = Self::stream(seed, client, 0x316e);
        // Burn to `seq` so picks are stable under replay from any index.
        let mut draw = 0u64;
        for _ in 0..=seq {
            draw = rng.next_u64() % total;
        }
        let mut acc = 0u64;
        for e in &self.mix {
            acc += u64::from(e.weight);
            if draw < acc {
                return e.routine;
            }
        }
        self.mix.last().expect("non-empty mix").routine
    }

    /// Number of calls `client` will issue in a `clients`-wide run.
    pub fn planned_calls(&self, seed: u64, client: usize, clients: usize) -> usize {
        match self.arrival {
            Arrival::Closed { .. } => self.calls_per_client,
            Arrival::Open { .. } => self.arrival_schedule(seed, client, clients).len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn open_spec() -> WorkloadSpec {
        WorkloadSpec {
            mix: vec![
                MixEntry {
                    routine: Routine::Ep { m: 10 },
                    weight: 3,
                },
                MixEntry {
                    routine: Routine::Linpack { n: 64 },
                    weight: 1,
                },
            ],
            arrival: Arrival::Open { rate_hz: 50.0 },
            phases: Phases {
                ramp_up: 1.0,
                steady: 4.0,
                ramp_down: 1.0,
            },
            calls_per_client: 0,
            unique_args: false,
            options: CallOptions::default(),
        }
    }

    #[test]
    fn open_loop_schedule_is_byte_identical_across_runs() {
        let spec = open_spec();
        for client in 0..4 {
            let a = spec.arrival_schedule(1997, client, 4);
            let b = spec.arrival_schedule(1997, client, 4);
            assert!(!a.is_empty());
            assert_eq!(schedule_bytes(&a), schedule_bytes(&b));
        }
    }

    #[test]
    fn schedules_differ_across_seeds_and_clients() {
        let spec = open_spec();
        assert_ne!(
            schedule_bytes(&spec.arrival_schedule(1, 0, 2)),
            schedule_bytes(&spec.arrival_schedule(2, 0, 2))
        );
        assert_ne!(
            schedule_bytes(&spec.arrival_schedule(1, 0, 2)),
            schedule_bytes(&spec.arrival_schedule(1, 1, 2))
        );
    }

    #[test]
    fn schedule_respects_phase_window() {
        let spec = open_spec();
        let clients = 4;
        for client in 0..clients {
            let (start, end) = spec.phases.window(client, clients);
            let sched = spec.arrival_schedule(7, client, clients);
            assert!(sched.iter().all(|&t| t >= start && t < end));
            // Sorted: arrivals are cumulative sums of positive increments.
            assert!(sched.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    #[test]
    fn schedule_rate_is_roughly_honored() {
        let spec = open_spec();
        // One client, window = 6 s at 50 Hz → ~300 arrivals; Poisson noise
        // stays well within ±40%.
        let sched = spec.arrival_schedule(1997, 0, 1);
        assert!(
            (180..=420).contains(&sched.len()),
            "got {} arrivals",
            sched.len()
        );
    }

    #[test]
    fn closed_loop_has_no_precomputed_schedule() {
        let mut spec = open_spec();
        spec.arrival = Arrival::Closed {
            think: Duration::from_millis(5),
        };
        spec.calls_per_client = 9;
        assert!(spec.arrival_schedule(1, 0, 2).is_empty());
        assert_eq!(spec.planned_calls(1, 0, 2), 9);
    }

    #[test]
    fn ramp_windows_are_staggered_and_ordered() {
        let p = Phases {
            ramp_up: 2.0,
            steady: 10.0,
            ramp_down: 2.0,
        };
        let c = 4;
        let windows: Vec<_> = (0..c).map(|i| p.window(i, c)).collect();
        for w in windows.windows(2) {
            assert!(w[0].0 < w[1].0, "starts stagger");
            assert!(w[0].1 < w[1].1, "ends stagger");
        }
        // Everyone is active during steady state.
        for (s, e) in windows {
            assert!(s <= p.ramp_up && e >= p.ramp_up + p.steady);
        }
    }

    #[test]
    fn mix_is_deterministic_and_weighted() {
        let spec = open_spec();
        let picks: Vec<Routine> = (0..400).map(|s| spec.pick_routine(3, 0, s)).collect();
        let again: Vec<Routine> = (0..400).map(|s| spec.pick_routine(3, 0, s)).collect();
        assert_eq!(picks, again);
        let eps = picks
            .iter()
            .filter(|r| matches!(r, Routine::Ep { .. }))
            .count();
        // Weight 3:1 → expect ~300 of 400; allow generous noise.
        assert!((220..=380).contains(&eps), "eps = {eps}");
    }

    #[test]
    fn single_entry_mix_always_picked() {
        let mut spec = open_spec();
        spec.mix = vec![MixEntry {
            routine: Routine::Linpack { n: 100 },
            weight: 1,
        }];
        for s in 0..20 {
            assert_eq!(spec.pick_routine(9, 1, s), Routine::Linpack { n: 100 });
        }
    }

    #[test]
    fn routine_metadata() {
        let lp = Routine::Linpack { n: 100 };
        assert_eq!(lp.name(), "linpack");
        assert_eq!(lp.scalar(), 100);
        assert_eq!(lp.flops(), Some(ninf_exec::linpack_flops(100)));
        let ep = Routine::Ep { m: 20 };
        assert_eq!(ep.name(), "ep");
        assert_eq!(ep.scalar(), 20);
        assert_eq!(ep.flops(), None);
        let nb = Routine::Nbody { n: 4096 };
        assert_eq!(nb.name(), "nbody");
        assert_eq!(nb.scalar(), 4096);
        assert_eq!(nb.flops(), Some(ninf_exec::nbody_flops(4096) as u64));
    }

    #[test]
    fn splitmix_streams_are_stable() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let u = SplitMix64::new(7).next_f64();
        assert!((0.0..1.0).contains(&u));
        assert!(SplitMix64::new(7).next_exp(10.0) >= 0.0);
    }
}
