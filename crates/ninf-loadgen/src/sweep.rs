//! Coordinated saturation sweeps: ramp offered load stage by stage across
//! the client fleet, poll every server's metric windows while the ramp
//! runs, and join both sides into one clock-skew-corrected timeline with an
//! automatic saturation-knee estimate.
//!
//! This is the DiPerF shape: instead of hand-picking a client-count grid
//! and eyeballing where throughput flattens, one controller drives the
//! open-loop Poisson driver through a deterministic rate ramp (stage `k`
//! offers `base × (start_mult + k·step_mult)` Hz per client), while a
//! poller thread per server drains the `QueryMetrics` window ring
//! incrementally. Each poll brackets the reply between two local
//! timestamps; the minimum-RTT poll's midpoint fixes the remote window
//! clock's offset against the sweep epoch, so server-side series land on
//! the same time axis as client-side call records without assuming
//! synchronized clocks.
//!
//! The knee estimate follows the latency-slope rule: scanning stages in
//! order, saturation is declared at the first stage whose *latency
//! elasticity* — relative latency growth over relative offered-load growth
//! — exceeds a threshold (or whose calls all fail); the knee is the last
//! stage before that. Same-seed sweeps produce byte-identical offered-load
//! schedules (`schedule_fnv` proves it), so a knee shift between two runs
//! is a behavior change, never schedule noise.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ninf_client::NinfClient;
use ninf_protocol::{MetricFrame, MetricKind, ProtocolError, ProtocolResult};

use crate::report::{Outcome, Summary};
use crate::runner::{drive_client, materialize, sleep_until, Backend, Inputs};
use crate::scenario::Scenario;
use crate::spec::{fnv1a, schedule_bytes, Arrival, Phases, WorkloadSpec};

/// Sweep shape: how many stages, how long, how steep.
#[derive(Debug, Clone, Copy)]
pub struct SweepConfig {
    /// Ramp stages (each at a fixed offered rate).
    pub stages: usize,
    /// Seconds each stage offers load for.
    pub stage_secs: f64,
    /// Rate multiplier of stage 0 (relative to the scenario's base rate).
    pub start_mult: f64,
    /// Multiplier increment per stage.
    pub step_mult: f64,
    /// Metric window interval armed on spawned servers, and the timeline
    /// bucket width.
    pub window: Duration,
    /// Latency-elasticity threshold above which a stage counts as
    /// saturated (2.0 = latency growing twice as fast as offered load).
    pub knee_threshold: f64,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            stages: 6,
            stage_secs: 2.0,
            start_mult: 1.0,
            step_mult: 1.0,
            window: Duration::from_millis(250),
            knee_threshold: 2.0,
        }
    }
}

impl SweepConfig {
    /// Offered-rate multiplier of stage `k`.
    pub fn multiplier(&self, k: usize) -> f64 {
        self.start_mult + k as f64 * self.step_mult
    }
}

/// One stage's curve point.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Stage index (0-based).
    pub stage: usize,
    /// Offered rate per client, Hz.
    pub rate_hz_per_client: f64,
    /// Aggregate offered rate actually scheduled (Σ schedule lengths /
    /// stage seconds), Hz.
    pub offered_hz: f64,
    /// Seconds from sweep epoch when the stage actually started issuing.
    pub t_start: f64,
    /// Calls issued.
    pub calls: usize,
    /// Calls that returned a validated reply.
    pub ok: usize,
    /// Calls that did not.
    pub errors: usize,
    /// Completed calls per offered second.
    pub throughput_hz: f64,
    /// End-to-end latency of successful calls.
    pub latency: Summary,
    /// Exact p95 of successful-call latency (small per-stage counts, so
    /// sorted-sample percentile, not the log histogram).
    pub latency_p95_s: f64,
}

/// Where the curve bends.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KneeEstimate {
    /// Last stage before saturation (or the last stage measured).
    pub stage: usize,
    /// Offered rate at the knee, Hz.
    pub offered_hz: f64,
    /// Delivered throughput at the knee, Hz.
    pub throughput_hz: f64,
    /// Mean latency at the knee, seconds.
    pub latency_mean_s: f64,
    /// Whether saturation was actually observed (false: the ramp never
    /// bent and the knee is a lower bound).
    pub saturated: bool,
}

/// One remote process's window series, as drained during the sweep.
#[derive(Debug, Clone)]
pub struct RemoteSeries {
    /// `server@<addr>` or `metaserver`.
    pub source: String,
    /// Seconds to add to a frame's `t` to land it on the sweep epoch
    /// (minimum-RTT midpoint estimate).
    pub clock_skew_s: f64,
    /// Remote window interval; 0 means the remote registry was disarmed
    /// and the series is necessarily empty.
    pub interval_s: f64,
    /// Windows the remote ever closed.
    pub total: u64,
    /// Windows the remote evicted before we fetched them.
    pub dropped: u64,
    /// Successful polls made.
    pub polls: usize,
    /// Every fetched frame, oldest first, each exactly once.
    pub frames: Vec<MetricFrame>,
}

/// One timeline bucket of client-side activity.
#[derive(Debug, Clone, Default)]
pub struct ClientWindow {
    /// Bucket index (global, `t / window_secs`).
    pub window: u64,
    /// Bucket start, seconds from sweep epoch.
    pub t: f64,
    /// Calls the schedules offered in this bucket.
    pub offered: usize,
    /// Calls actually submitted in this bucket.
    pub issued: usize,
    /// Calls completing successfully in this bucket.
    pub ok: usize,
    /// Calls completing in error in this bucket.
    pub errors: usize,
    /// Mean latency of the bucket's successful completions, seconds.
    pub latency_mean_s: f64,
}

/// The merged per-window fleet view: client buckets plus every remote
/// series on the sweep-epoch time axis.
#[derive(Debug, Clone)]
pub struct SweepTimeline {
    /// Bucket width, seconds.
    pub window_secs: f64,
    /// Client-side buckets, sparse (empty buckets omitted).
    pub client: Vec<ClientWindow>,
    /// Per-process window series.
    pub remotes: Vec<RemoteSeries>,
}

/// A finished sweep: the curve, the knee, and the merged timeline.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// Scenario name.
    pub scenario: String,
    /// Concurrent clients per stage.
    pub clients: usize,
    /// Seed the whole sweep derives from.
    pub seed: u64,
    /// Seconds each stage offered load for.
    pub stage_secs: f64,
    /// Scenario base rate, Hz per client.
    pub base_rate_hz: f64,
    /// One point per stage, in ramp order.
    pub points: Vec<SweepPoint>,
    /// Knee estimate (None only for an empty sweep).
    pub knee: Option<KneeEstimate>,
    /// Merged timeline.
    pub timeline: SweepTimeline,
    /// FNV-1a over every stage schedule — same seed ⇒ same fingerprint.
    pub schedule_fnv: u64,
    /// Whole-sweep wall clock, seconds.
    pub wall_secs: f64,
}

/// Seed for stage `k`, mixed so stages draw independent arrival processes
/// while staying a pure function of `(seed, k)`.
fn stage_seed(seed: u64, k: usize) -> u64 {
    seed ^ (k as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

/// The workload spec stage `k` runs: same mix and options, offered rate
/// scaled by the stage multiplier, phases collapsed to one steady window.
fn stage_spec(spec: &WorkloadSpec, base_rate: f64, cfg: &SweepConfig, k: usize) -> WorkloadSpec {
    let mut s = spec.clone();
    s.arrival = Arrival::Open {
        rate_hz: base_rate * cfg.multiplier(k),
    };
    s.phases = Phases {
        ramp_up: 0.0,
        steady: cfg.stage_secs,
        ramp_down: 0.0,
    };
    s.calls_per_client = 0;
    s
}

/// Exact percentile over a small sample set.
fn exact_percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p / 100.0).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Latency-slope knee estimate over a ramp curve.
///
/// Scanning stage pairs in ramp order, stage `k` is saturated when its
/// latency elasticity `(ΔL/L) / (ΔR/R)` against stage `k−1` exceeds
/// `threshold`, or when it issued calls and none succeeded (collapse).
/// The knee is stage `k−1` with `saturated = true`; if the ramp never
/// bends the last point is returned with `saturated = false`.
pub fn estimate_knee(points: &[SweepPoint], threshold: f64) -> Option<KneeEstimate> {
    let at = |p: &SweepPoint, saturated: bool| KneeEstimate {
        stage: p.stage,
        offered_hz: p.offered_hz,
        throughput_hz: p.throughput_hz,
        latency_mean_s: p.latency.mean,
        saturated,
    };
    for k in 1..points.len() {
        let (prev, cur) = (&points[k - 1], &points[k]);
        let collapse = cur.calls > 0 && cur.ok == 0;
        let elastic = prev.latency.mean > 0.0
            && prev.offered_hz > 0.0
            && cur.offered_hz > prev.offered_hz
            && {
                let dl = (cur.latency.mean - prev.latency.mean) / prev.latency.mean;
                let dr = (cur.offered_hz - prev.offered_hz) / prev.offered_hz;
                dl / dr > threshold
            };
        if collapse || elastic {
            return Some(at(prev, true));
        }
    }
    points.last().map(|p| at(p, false))
}

/// What one poller thread brings home.
struct PollerOutcome {
    addr: String,
    /// `(poll RTT, skew estimate)` of the best poll.
    best: Option<(f64, f64)>,
    interval_s: f64,
    total: u64,
    dropped: u64,
    polls: usize,
    frames: Vec<MetricFrame>,
}

/// Poll one server's window ring until `stop`, advancing the cursor to
/// `total` after every snapshot so each window is fetched exactly once.
fn poll_windows(
    addr: String,
    options: ninf_client::CallOptions,
    epoch: Instant,
    period: Duration,
    stop: Arc<AtomicBool>,
) -> PollerOutcome {
    let mut out = PollerOutcome {
        addr: addr.clone(),
        best: None,
        interval_s: 0.0,
        total: 0,
        dropped: 0,
        polls: 0,
        frames: Vec::new(),
    };
    let mut client = match NinfClient::connect_with(&addr, options) {
        Ok(c) => c,
        Err(_) => return out,
    };
    let mut cursor = 0u64;
    let mut done = false;
    while !done {
        // One final drain after stop, so windows closed near the end of
        // the last stage still land in the series.
        done = stop.load(Ordering::Acquire);
        let t0 = epoch.elapsed().as_secs_f64();
        let Ok((_process, snap)) = client.query_metrics(cursor) else {
            break;
        };
        let t1 = epoch.elapsed().as_secs_f64();
        let rtt = t1 - t0;
        let skew = (t0 + t1) / 2.0 - snap.now;
        if out.best.is_none_or(|(best_rtt, _)| rtt < best_rtt) {
            out.best = Some((rtt, skew));
        }
        out.polls += 1;
        out.interval_s = snap.interval;
        out.total = snap.total;
        out.dropped = snap.dropped;
        out.frames.extend(snap.frames);
        cursor = snap.total;
        if !done {
            std::thread::sleep(period);
        }
    }
    out
}

/// Bucket client-side schedules and call records into windows.
fn client_timeline(
    window_secs: f64,
    schedules: &[(f64, Vec<f64>)],
    calls: &[crate::report::CallResult],
) -> Vec<ClientWindow> {
    use std::collections::BTreeMap;
    let bucket = |t: f64| (t.max(0.0) / window_secs) as u64;
    let mut map: BTreeMap<u64, (ClientWindow, Vec<f64>)> = BTreeMap::new();
    let slot = |w: u64, map: &mut BTreeMap<u64, (ClientWindow, Vec<f64>)>| {
        map.entry(w).or_insert_with(|| {
            (
                ClientWindow {
                    window: w,
                    t: w as f64 * window_secs,
                    ..ClientWindow::default()
                },
                Vec::new(),
            )
        });
    };
    for (offset, schedule) in schedules {
        for s in schedule {
            let w = bucket(offset + s);
            slot(w, &mut map);
            map.get_mut(&w).unwrap().0.offered += 1;
        }
    }
    for c in calls {
        let w = bucket(c.t_submit);
        slot(w, &mut map);
        map.get_mut(&w).unwrap().0.issued += 1;
        let w = bucket(c.t_complete);
        slot(w, &mut map);
        let (win, lats) = map.get_mut(&w).unwrap();
        if c.outcome == Outcome::Ok {
            win.ok += 1;
            lats.push(c.timing.total);
        } else {
            win.errors += 1;
        }
    }
    map.into_values()
        .map(|(mut w, lats)| {
            if !lats.is_empty() {
                w.latency_mean_s = lats.iter().sum::<f64>() / lats.len() as f64;
            }
            w
        })
        .collect()
}

/// Run a coordinated saturation sweep of `scenario` with `clients`
/// concurrent clients per stage.
///
/// The scenario must be open-loop: the sweep ramps its offered rate. The
/// target is materialized once and reused across stages; spawned servers
/// (and a spawned metaserver) get their metric windows armed in-process,
/// external servers are expected to run `ninfd --windows-ms` (a disarmed
/// remote yields an empty series with `interval_s = 0`, not an error).
pub fn run_sweep(
    scenario: &Scenario,
    clients: usize,
    seed: u64,
    cfg: &SweepConfig,
) -> ProtocolResult<SweepReport> {
    let spec = &scenario.spec;
    let base_rate = match spec.arrival {
        Arrival::Open { rate_hz } => rate_hz,
        Arrival::Closed { .. } => {
            return Err(ProtocolError::Frame(
                "sweep requires an open-loop scenario (the ramp scales its offered rate)".into(),
            ))
        }
    };
    if cfg.stages == 0 || cfg.stage_secs <= 0.0 {
        return Err(ProtocolError::Frame(
            "sweep needs at least one stage of positive duration".into(),
        ));
    }

    let live = materialize(&scenario.target, spec)?;
    let inputs = Inputs::prepare(spec, seed);

    // Arm in-process registries before the epoch so their first windows
    // cover the whole ramp. External targets arm themselves (or don't).
    for s in &live.spawned {
        s.metrics().registry().start_window_sampler(cfg.window);
    }
    let meta = match &live.backend {
        Backend::Meta(m) => Some(Arc::clone(m)),
        Backend::Direct(_) => None,
    };
    if let Some(m) = &meta {
        m.metrics().start_window_sampler(cfg.window);
    }

    let epoch = Instant::now();
    let meta_armed_at = -epoch.elapsed().as_secs_f64();

    // One poller per queryable address, draining windows while the ramp
    // runs.
    let stop = Arc::new(AtomicBool::new(false));
    let period = cfg.window.max(Duration::from_millis(20)) / 2;
    let pollers: Vec<_> = live
        .addrs
        .iter()
        .map(|addr| {
            let addr = addr.clone();
            let options = spec.options;
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || poll_windows(addr, options, epoch, period, stop))
        })
        .collect();

    // The ramp: stage k offers base × multiplier(k) for stage_secs.
    let mut points = Vec::with_capacity(cfg.stages);
    let mut all_calls = Vec::new();
    let mut all_schedules: Vec<(f64, Vec<f64>)> = Vec::new();
    let mut sched_bytes = Vec::new();
    for k in 0..cfg.stages {
        let sspec = stage_spec(spec, base_rate, cfg, k);
        let sseed = stage_seed(seed, k);
        let stage_start = k as f64 * cfg.stage_secs;
        sleep_until(epoch, stage_start);
        let t_start = epoch.elapsed().as_secs_f64();
        let stage_epoch = epoch + Duration::from_secs_f64(stage_start);

        let mut calls: Vec<crate::report::CallResult> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..clients)
                .map(|client| {
                    let sspec = &sspec;
                    let backend = &live.backend;
                    let inputs = &inputs;
                    s.spawn(move || {
                        drive_client(sspec, backend, inputs, stage_epoch, sseed, client, clients)
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("sweep client thread panicked"))
                .collect()
        });
        // Stage-relative times → sweep-epoch times.
        for c in &mut calls {
            c.scheduled += stage_start;
            c.t_submit += stage_start;
            c.t_complete += stage_start;
        }

        let mut offered = 0usize;
        for client in 0..clients {
            let schedule = sspec.arrival_schedule(sseed, client, clients);
            offered += schedule.len();
            sched_bytes.extend_from_slice(&schedule_bytes(&schedule));
            all_schedules.push((stage_start, schedule));
        }

        let ok = calls.iter().filter(|c| c.outcome == Outcome::Ok).count();
        let mut lats: Vec<f64> = calls
            .iter()
            .filter(|c| c.outcome == Outcome::Ok)
            .map(|c| c.timing.total)
            .collect();
        lats.sort_by(|a, b| a.total_cmp(b));
        points.push(SweepPoint {
            stage: k,
            rate_hz_per_client: base_rate * cfg.multiplier(k),
            offered_hz: offered as f64 / cfg.stage_secs,
            t_start,
            calls: calls.len(),
            ok,
            errors: calls.len() - ok,
            throughput_hz: ok as f64 / cfg.stage_secs,
            latency: Summary::of(lats.iter().copied()),
            latency_p95_s: exact_percentile(&lats, 95.0),
        });
        all_calls.extend(calls);
    }

    // Stop the pollers (each does one final drain first).
    stop.store(true, Ordering::Release);
    let mut remotes: Vec<RemoteSeries> = pollers
        .into_iter()
        .map(|h| h.join().expect("sweep poller thread panicked"))
        .map(|o| RemoteSeries {
            source: format!("server@{}", o.addr),
            clock_skew_s: o.best.map(|(_, skew)| skew).unwrap_or(0.0),
            interval_s: o.interval_s,
            total: o.total,
            dropped: o.dropped,
            polls: o.polls,
            frames: o.frames,
        })
        .collect();

    // The in-process metaserver has no TCP endpoint; drain it directly.
    // Its window clock started `meta_armed_at` before the epoch.
    if let Some(m) = &meta {
        let snap = m.metrics().snapshot_windows(0);
        remotes.push(RemoteSeries {
            source: "metaserver".into(),
            clock_skew_s: meta_armed_at,
            interval_s: snap.interval,
            total: snap.total,
            dropped: snap.dropped,
            polls: 1,
            frames: snap.frames,
        });
        m.metrics().disarm_windows();
    }

    let wall_secs = epoch.elapsed().as_secs_f64();
    all_calls.sort_by(|a, b| a.t_submit.total_cmp(&b.t_submit));
    let window_secs = cfg.window.as_secs_f64();
    let timeline = SweepTimeline {
        window_secs,
        client: client_timeline(window_secs, &all_schedules, &all_calls),
        remotes,
    };

    for s in &live.spawned {
        s.metrics().registry().disarm_windows();
    }
    for s in live.spawned {
        s.shutdown();
    }

    Ok(SweepReport {
        scenario: scenario.name.to_owned(),
        clients,
        seed,
        stage_secs: cfg.stage_secs,
        base_rate_hz: base_rate,
        knee: estimate_knee(&points, cfg.knee_threshold),
        points,
        timeline,
        schedule_fnv: fnv1a(&sched_bytes),
        wall_secs,
    })
}

fn kind_label(kind: MetricKind) -> &'static str {
    match kind {
        MetricKind::Counter => "counter",
        MetricKind::Gauge => "gauge",
        MetricKind::Histogram => "histogram",
    }
}

impl SweepReport {
    /// Non-empty windows across every remote series (a disarmed fleet
    /// yields 0 — the CI negative control keys off this).
    pub fn remote_windows(&self) -> usize {
        self.timeline
            .remotes
            .iter()
            .flat_map(|r| &r.frames)
            .filter(|f| !f.samples.is_empty())
            .count()
    }

    /// The sweep JSON document: curve, knee, and merged timeline. Remote
    /// frame times are emitted already skew-corrected onto the sweep
    /// epoch.
    pub fn to_json(&self) -> serde_json::Value {
        let mut doc = serde_json::Map::new();
        doc.insert("benchmark".into(), serde_json::json!("sweep"));
        doc.insert("scenario".into(), serde_json::json!(self.scenario.as_str()));
        doc.insert("clients".into(), serde_json::json!(self.clients as u64));
        doc.insert("seed".into(), serde_json::json!(self.seed));
        doc.insert("stage_secs".into(), serde_json::json!(self.stage_secs));
        doc.insert("base_rate_hz".into(), serde_json::json!(self.base_rate_hz));
        doc.insert("wall_secs".into(), serde_json::json!(self.wall_secs));
        doc.insert(
            "schedule_fnv".into(),
            serde_json::json!(format!("{:#018x}", self.schedule_fnv)),
        );
        doc.insert(
            "points".into(),
            serde_json::Value::Array(
                self.points
                    .iter()
                    .map(|p| {
                        serde_json::json!({
                            "stage": p.stage as u64,
                            "rate_hz_per_client": p.rate_hz_per_client,
                            "offered_hz": p.offered_hz,
                            "t_start": p.t_start,
                            "calls": p.calls as u64,
                            "ok": p.ok as u64,
                            "errors": p.errors as u64,
                            "throughput_hz": p.throughput_hz,
                            "latency": {
                                "mean": p.latency.mean,
                                "max": p.latency.max,
                                "min": p.latency.min,
                            },
                            "latency_p95_s": p.latency_p95_s,
                        })
                    })
                    .collect(),
            ),
        );
        doc.insert(
            "knee".into(),
            match &self.knee {
                Some(k) => serde_json::json!({
                    "stage": k.stage as u64,
                    "offered_hz": k.offered_hz,
                    "throughput_hz": k.throughput_hz,
                    "latency_mean_s": k.latency_mean_s,
                    "saturated": k.saturated,
                }),
                None => serde_json::Value::Null,
            },
        );
        let client: Vec<serde_json::Value> = self
            .timeline
            .client
            .iter()
            .map(|w| {
                serde_json::json!({
                    "window": w.window,
                    "t": w.t,
                    "offered": w.offered as u64,
                    "issued": w.issued as u64,
                    "ok": w.ok as u64,
                    "errors": w.errors as u64,
                    "latency_mean_s": w.latency_mean_s,
                })
            })
            .collect();
        let remotes: Vec<serde_json::Value> = self
            .timeline
            .remotes
            .iter()
            .map(|r| {
                serde_json::json!({
                    "source": r.source.as_str(),
                    "clock_skew_s": r.clock_skew_s,
                    "interval_s": r.interval_s,
                    "total": r.total,
                    "dropped": r.dropped,
                    "polls": r.polls as u64,
                    "frames": r.frames.iter().map(|f| serde_json::json!({
                        "window": f.window,
                        "t": f.t + r.clock_skew_s,
                        "samples": f.samples.iter().map(|s| serde_json::json!({
                            "name": s.name.as_str(),
                            "kind": kind_label(s.kind),
                            "value": s.value,
                            "count": s.count,
                        })).collect::<Vec<_>>(),
                    })).collect::<Vec<_>>(),
                })
            })
            .collect();
        doc.insert(
            "timeline".into(),
            serde_json::json!({
                "window_secs": self.timeline.window_secs,
                "client": client,
                "remotes": remotes,
            }),
        );
        serde_json::Value::Object(doc)
    }

    /// Write `<scenario>_sweep_curve.csv` (one row per stage) and
    /// `<scenario>_sweep_timeline.csv` (long format, one row per series
    /// sample, times skew-corrected) under `dir`.
    pub fn write_csv(&self, dir: &std::path::Path) -> std::io::Result<Vec<std::path::PathBuf>> {
        use std::io::Write as _;
        std::fs::create_dir_all(dir)?;
        let curve_path = dir.join(format!("{}_sweep_curve.csv", self.scenario));
        let mut f = std::fs::File::create(&curve_path)?;
        writeln!(
            f,
            "stage,rate_hz_per_client,offered_hz,calls,ok,errors,throughput_hz,latency_mean,latency_p95,latency_max"
        )?;
        for p in &self.points {
            writeln!(
                f,
                "{},{:.3},{:.3},{},{},{},{:.3},{:.6},{:.6},{:.6}",
                p.stage,
                p.rate_hz_per_client,
                p.offered_hz,
                p.calls,
                p.ok,
                p.errors,
                p.throughput_hz,
                p.latency.mean,
                p.latency_p95_s,
                p.latency.max,
            )?;
        }

        let tl_path = dir.join(format!("{}_sweep_timeline.csv", self.scenario));
        let mut f = std::fs::File::create(&tl_path)?;
        writeln!(f, "source,window,t,name,kind,value,count")?;
        for w in &self.timeline.client {
            for (name, value, count) in [
                ("offered", w.offered as f64, w.offered as u64),
                ("issued", w.issued as f64, w.issued as u64),
                ("ok", w.ok as f64, w.ok as u64),
                ("errors", w.errors as f64, w.errors as u64),
                ("latency_mean_s", w.latency_mean_s, w.ok as u64),
            ] {
                writeln!(
                    f,
                    "client,{},{:.3},{name},client,{value:.6},{count}",
                    w.window, w.t
                )?;
            }
        }
        for r in &self.timeline.remotes {
            for frame in &r.frames {
                let t = frame.t + r.clock_skew_s;
                for s in &frame.samples {
                    writeln!(
                        f,
                        "{},{},{t:.3},{},{},{:.6},{}",
                        r.source,
                        frame.window,
                        s.name,
                        kind_label(s.kind),
                        s.value,
                        s.count,
                    )?;
                }
            }
        }
        Ok(vec![curve_path, tl_path])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::CallResult;
    use crate::runner::Target;
    use crate::spec::{MixEntry, Routine};
    use ninf_client::{CallOptions, CallTiming};
    use ninf_server::{SchedPolicy, ServerCore};

    fn point(stage: usize, offered: f64, ok: usize, latency: f64) -> SweepPoint {
        SweepPoint {
            stage,
            rate_hz_per_client: offered,
            offered_hz: offered,
            t_start: stage as f64,
            calls: ok.max(1),
            ok,
            errors: ok.max(1) - ok,
            throughput_hz: ok as f64,
            latency: Summary {
                mean: latency,
                max: latency,
                min: latency,
            },
            latency_p95_s: latency,
        }
    }

    #[test]
    fn knee_found_on_hockey_stick_curve() {
        // Flat latency through stage 2, then a sharp bend: offered grows
        // 33% stage 2→3 while latency grows 400% — elasticity ≈ 12.
        let points = vec![
            point(0, 10.0, 10, 0.010),
            point(1, 20.0, 20, 0.011),
            point(2, 30.0, 30, 0.012),
            point(3, 40.0, 31, 0.060),
            point(4, 50.0, 30, 0.200),
        ];
        let knee = estimate_knee(&points, 2.0).unwrap();
        assert!(knee.saturated);
        assert_eq!(knee.stage, 2);
        assert!((knee.offered_hz - 30.0).abs() < 1e-9);
    }

    #[test]
    fn unbent_ramp_reports_last_point_unsaturated() {
        let points = vec![
            point(0, 10.0, 10, 0.010),
            point(1, 20.0, 20, 0.010),
            point(2, 30.0, 30, 0.011),
        ];
        let knee = estimate_knee(&points, 2.0).unwrap();
        assert!(!knee.saturated);
        assert_eq!(knee.stage, 2);
        assert!(estimate_knee(&[], 2.0).is_none());
    }

    #[test]
    fn total_collapse_counts_as_saturation() {
        // Latency never rises (failures don't record latency) but every
        // call in stage 2 fails: the knee is stage 1.
        let points = vec![
            point(0, 10.0, 10, 0.010),
            point(1, 20.0, 20, 0.010),
            point(2, 30.0, 0, 0.0),
        ];
        let knee = estimate_knee(&points, 2.0).unwrap();
        assert!(knee.saturated);
        assert_eq!(knee.stage, 1);
    }

    #[test]
    fn stage_specs_are_deterministic_in_seed() {
        let sc = crate::scenario::scenario("lan-ep").unwrap();
        let cfg = SweepConfig::default();
        let mut a = Vec::new();
        let mut b = Vec::new();
        for (out, seed) in [(&mut a, 1997u64), (&mut b, 1997u64)] {
            for k in 0..cfg.stages {
                let spec = stage_spec(&sc.spec, 40.0, &cfg, k);
                for client in 0..4 {
                    out.push(spec.arrival_schedule(stage_seed(seed, k), client, 4));
                }
            }
        }
        assert_eq!(a, b);
        // A different seed perturbs the schedules.
        let spec = stage_spec(&sc.spec, 40.0, &cfg, 0);
        assert_ne!(
            spec.arrival_schedule(stage_seed(1997, 0), 0, 4),
            spec.arrival_schedule(stage_seed(1998, 0), 0, 4)
        );
    }

    #[test]
    fn stage_multipliers_ramp_linearly() {
        let cfg = SweepConfig::default();
        assert!((cfg.multiplier(0) - 1.0).abs() < 1e-12);
        assert!((cfg.multiplier(5) - 6.0).abs() < 1e-12);
    }

    fn timed_call(client: usize, seq: usize, t: f64, total: f64, outcome: Outcome) -> CallResult {
        CallResult {
            client,
            seq,
            routine: "ep",
            n: 10,
            scheduled: t,
            t_submit: t,
            t_complete: t + total,
            timing: CallTiming {
                total,
                attempts: 1,
                ..CallTiming::default()
            },
            outcome,
            flops: None,
            trace_id: 0,
        }
    }

    #[test]
    fn client_timeline_buckets_offers_and_completions() {
        let schedules = vec![(0.0, vec![0.05, 0.15]), (0.5, vec![0.05])];
        let calls = vec![
            timed_call(0, 0, 0.05, 0.02, Outcome::Ok),
            timed_call(0, 1, 0.15, 0.30, Outcome::Ok), // completes in bucket 4
            timed_call(1, 0, 0.55, 0.01, Outcome::Timeout),
        ];
        let windows = client_timeline(0.1, &schedules, &calls);
        let by_idx: std::collections::HashMap<u64, &ClientWindow> =
            windows.iter().map(|w| (w.window, w)).collect();
        assert_eq!(by_idx[&0].offered, 1);
        assert_eq!(by_idx[&1].offered, 1);
        assert_eq!(by_idx[&5].offered, 1);
        assert_eq!(by_idx[&0].issued, 1);
        assert_eq!(by_idx[&0].ok, 1);
        assert!((by_idx[&0].latency_mean_s - 0.02).abs() < 1e-12);
        assert_eq!(by_idx[&4].ok, 1); // the 0.30 s call lands at t=0.45
        assert_eq!(by_idx[&5].errors, 1);
    }

    /// End-to-end: a short two-stage sweep against a spawned server must
    /// produce a curve, a knee estimate, a schedule fingerprint, and
    /// window series drained over the wire.
    #[test]
    fn live_sweep_smoke() {
        let scenario = Scenario {
            name: "sweep-unit",
            about: "unit-test sweep rig",
            spec: WorkloadSpec {
                mix: vec![MixEntry {
                    routine: Routine::Ep { m: 10 },
                    weight: 1,
                }],
                arrival: Arrival::Open { rate_hz: 20.0 },
                phases: Phases {
                    ramp_up: 0.0,
                    steady: 0.4,
                    ramp_down: 0.0,
                },
                calls_per_client: 0,
                unique_args: false,
                options: CallOptions {
                    deadline: Some(Duration::from_secs(5)),
                    ..CallOptions::default()
                },
            },
            target: Target::Spawn {
                pes: 4,
                policy: SchedPolicy::Fcfs,
                core: ServerCore::default(),
            },
        };
        let cfg = SweepConfig {
            stages: 2,
            stage_secs: 0.4,
            window: Duration::from_millis(100),
            ..SweepConfig::default()
        };
        let report = run_sweep(&scenario, 2, 7, &cfg).unwrap();
        assert_eq!(report.points.len(), 2);
        assert!(report.points.iter().all(|p| p.calls > 0));
        // Stage 1 offers twice stage 0's rate.
        assert!(report.points[1].offered_hz > report.points[0].offered_hz);
        let knee = report.knee.expect("non-empty sweep has a knee estimate");
        assert!(knee.offered_hz.is_finite() && knee.offered_hz > 0.0);
        // The spawned server was armed and polled over the wire.
        let server = &report.timeline.remotes[0];
        assert!(server.polls > 0, "poller made no successful polls");
        assert!(server.interval_s > 0.0);
        assert!(report.remote_windows() > 0);
        // Window indices fetched exactly once, in order.
        let idx: Vec<u64> = server.frames.iter().map(|f| f.window).collect();
        let mut sorted = idx.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(idx, sorted, "window series not exactly-once/ordered");
        assert!(!report.timeline.client.is_empty());
        assert!(report.wall_secs > 0.0);

        // Same seed ⇒ identical offered-load schedules.
        let again = run_sweep(&scenario, 2, 7, &cfg).unwrap();
        assert_eq!(report.schedule_fnv, again.schedule_fnv);

        // JSON carries the documented top-level shape.
        let doc = report.to_json();
        assert_eq!(doc["benchmark"], "sweep");
        assert!(doc["knee"]["offered_hz"].as_f64().unwrap() > 0.0);
        assert!(doc["timeline"]["remotes"].as_array().unwrap().len() == 1);
    }
}
