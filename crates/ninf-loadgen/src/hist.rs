//! Fixed-bucket log-scale latency histogram.
//!
//! The implementation moved to `ninf-obs` (it now also backs the metrics
//! registry's Prometheus summaries); this module re-exports it so existing
//! `ninf_loadgen::hist::LogHistogram` users keep working.

pub use ninf_obs::hist::LogHistogram;
