//! Live execution: materialize a target, fan out client threads over real
//! TCP, drive them from the workload spec, and join client- and server-side
//! measurements into a [`RunReport`].

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use ninf_client::{CallTiming, NinfClient};
use ninf_metaserver::{Balancing, Directory, Metaserver, ServerEntry};
use ninf_protocol::{CallStat, Message, ProtocolError, ProtocolResult, Value};
use ninf_reactor::{run_open_loop, DriverConfig};
use ninf_server::{
    builtin::register_stdlib, ExecMode, NinfServer, Registry, SchedPolicy, ServerConfig, ServerCore,
};

use crate::report::{CallResult, Outcome, RunReport, ServerView};
use crate::scenario::Scenario;
use crate::spec::{Arrival, Routine, WorkloadSpec};

/// What the client fleet talks to.
#[derive(Debug, Clone)]
pub enum Target {
    /// An already-running server at this address (e.g. a `ninfd` spawned by
    /// CI); nothing is started or stopped by the harness.
    External(String),
    /// Spawn one in-process server on a loopback ephemeral port.
    Spawn {
        /// PEs behind the gate.
        pes: usize,
        /// Admission policy.
        policy: SchedPolicy,
        /// Connection core (reactor vs thread-per-connection baseline).
        core: ServerCore,
    },
    /// Spawn a fleet fronted by an in-process metaserver; clients route
    /// through `Metaserver::ninf_call`.
    SpawnFleet {
        /// Fleet size.
        servers: usize,
        /// PEs per server.
        pes: usize,
    },
}

/// Backend the client threads actually call through.
pub(crate) enum Backend {
    /// Each client dials one of these addresses directly.
    Direct(Vec<String>),
    /// Calls go through a shared in-process metaserver.
    Meta(Arc<Metaserver>),
}

/// Spawned servers (shut down when the run ends) plus every queryable
/// address.
pub(crate) struct LiveTarget {
    pub(crate) spawned: Vec<NinfServer>,
    pub(crate) addrs: Vec<String>,
    pub(crate) backend: Backend,
}

fn spawn_server(pes: usize, policy: SchedPolicy, core: ServerCore) -> ProtocolResult<NinfServer> {
    let mut registry = Registry::new();
    register_stdlib(&mut registry, false);
    NinfServer::start(
        "127.0.0.1:0",
        registry,
        ServerConfig {
            pes,
            mode: ExecMode::TaskParallel,
            policy,
            core,
            ..ServerConfig::default()
        },
    )
}

pub(crate) fn materialize(target: &Target, spec: &WorkloadSpec) -> ProtocolResult<LiveTarget> {
    match target {
        Target::External(addr) => Ok(LiveTarget {
            spawned: Vec::new(),
            addrs: vec![addr.clone()],
            backend: Backend::Direct(vec![addr.clone()]),
        }),
        Target::Spawn { pes, policy, core } => {
            let server = spawn_server(*pes, *policy, *core)?;
            let addr = server.addr().to_string();
            Ok(LiveTarget {
                spawned: vec![server],
                addrs: vec![addr.clone()],
                backend: Backend::Direct(vec![addr]),
            })
        }
        Target::SpawnFleet { servers, pes } => {
            let mut dir = Directory::new();
            let mut spawned = Vec::new();
            let mut addrs = Vec::new();
            for i in 0..*servers {
                let server = spawn_server(*pes, SchedPolicy::Fcfs, ServerCore::default())?;
                let addr = server.addr().to_string();
                dir.register(ServerEntry {
                    name: format!("node{i}"),
                    addr: addr.clone(),
                    bandwidth_bytes_per_sec: 10e6,
                    linpack_mflops: 100.0,
                });
                addrs.push(addr);
                spawned.push(server);
            }
            let meta = Metaserver::with_options(
                dir,
                Balancing::RoundRobin,
                spec.options,
                Some(Duration::from_secs(1)),
            );
            Ok(LiveTarget {
                spawned,
                addrs,
                backend: Backend::Meta(Arc::new(meta)),
            })
        }
    }
}

/// Pre-generated call inputs, shared read-only across the fleet so argument
/// generation never sits on the measured path.
pub(crate) struct Inputs {
    /// `n → (A, b)` for every distinct Linpack order in the mix.
    linpack: HashMap<usize, (Vec<f64>, Vec<f64>)>,
    /// `n → (masses, pos)` for every distinct N-body size in the mix. The
    /// arrays are bitwise-stable across calls and clients — exactly the
    /// repeat payload the argument cache collapses to a digest.
    nbody: HashMap<usize, (Vec<f64>, Vec<f64>)>,
    /// Salt arrays per `(client, seq)` so no call repeats a payload
    /// (transfer benchmarks; see [`WorkloadSpec::unique_args`]).
    unique: bool,
}

impl Inputs {
    pub(crate) fn prepare(spec: &WorkloadSpec, seed: u64) -> Self {
        let mut linpack = HashMap::new();
        let mut nbody = HashMap::new();
        for entry in &spec.mix {
            match entry.routine {
                Routine::Linpack { n } => {
                    linpack.entry(n).or_insert_with(|| {
                        let (a, b) = ninf_exec::random_matrix(n, seed);
                        (a.as_slice().to_vec(), b)
                    });
                }
                Routine::Nbody { n } => {
                    nbody
                        .entry(n)
                        .or_insert_with(|| ninf_exec::nbody_particles(n));
                }
                Routine::Ep { .. } => {}
            }
        }
        Inputs {
            linpack,
            nbody,
            unique: spec.unique_args,
        }
    }

    /// Under `unique_args`, perturb one trailing element so the array's
    /// digest differs per `(client, seq)` without changing its size or
    /// the problem's conditioning (the solver never pivots on the last
    /// entry alone).
    fn salted(&self, base: &[f64], client: usize, seq: usize) -> Vec<f64> {
        let mut out = base.to_vec();
        if self.unique {
            if let Some(last) = out.last_mut() {
                *last += 1.0 + (client as f64) * 1_000_003.0 + seq as f64;
            }
        }
        out
    }

    /// Arguments of call number `seq` from `client`; the indices feed the
    /// per-iteration scalars (N-body's `step`) and, under `unique_args`,
    /// the array salt — never the array shapes.
    fn args(&self, routine: Routine, client: usize, seq: usize) -> Vec<Value> {
        match routine {
            Routine::Linpack { n } => {
                let (a, b) = &self.linpack[&n];
                vec![
                    Value::Int(n as i32),
                    Value::DoubleArray(self.salted(a, client, seq)),
                    Value::DoubleArray(self.salted(b, client, seq)),
                ]
            }
            Routine::Ep { m } => vec![Value::Int(m)],
            Routine::Nbody { n } => {
                let (masses, pos) = &self.nbody[&n];
                vec![
                    Value::Int(n as i32),
                    Value::Int(seq as i32),
                    Value::DoubleArray(self.salted(masses, client, seq)),
                    Value::DoubleArray(self.salted(pos, client, seq)),
                ]
            }
        }
    }
}

fn classify(err: &ProtocolError) -> Outcome {
    match err {
        ProtocolError::Remote(_) => Outcome::Remote,
        ProtocolError::Timeout { .. } => Outcome::Timeout,
        _ => Outcome::Transport,
    }
}

pub(crate) fn sleep_until(epoch: Instant, offset: f64) {
    if offset <= 0.0 {
        return;
    }
    let target = epoch + Duration::from_secs_f64(offset);
    let now = Instant::now();
    if target > now {
        std::thread::sleep(target - now);
    }
}

/// One client thread's whole life: issue every scheduled call, measure each.
#[allow(clippy::too_many_arguments)]
pub(crate) fn drive_client(
    spec: &WorkloadSpec,
    backend: &Backend,
    inputs: &Inputs,
    epoch: Instant,
    seed: u64,
    client: usize,
    clients: usize,
) -> Vec<CallResult> {
    let schedule = spec.arrival_schedule(seed, client, clients);
    let planned = spec.planned_calls(seed, client, clients);
    let mut results = Vec::with_capacity(planned);

    // Direct backends hold one long-lived connection per client, like the
    // paper's clients; the reliability policy re-dials inside the call.
    let mut direct = match backend {
        Backend::Direct(addrs) => {
            let addr = &addrs[client % addrs.len()];
            match NinfClient::connect_with(addr, spec.options) {
                Ok(c) => Some(c),
                Err(_) => {
                    // Server unreachable at start: every planned call is a
                    // transport failure, not a silent no-show.
                    for seq in 0..planned {
                        let routine = spec.pick_routine(seed, client, seq);
                        let t = epoch.elapsed().as_secs_f64();
                        results.push(CallResult {
                            client,
                            seq,
                            routine: routine.name(),
                            n: routine.scalar(),
                            scheduled: t,
                            t_submit: t,
                            t_complete: t,
                            timing: CallTiming {
                                attempts: 1,
                                ..CallTiming::default()
                            },
                            outcome: Outcome::Transport,
                            flops: routine.flops(),
                            trace_id: 0,
                        });
                    }
                    return results;
                }
            }
        }
        Backend::Meta(_) => None,
    };

    let (start, _end) = spec.phases.window(client, clients);
    match spec.arrival {
        Arrival::Closed { think } => {
            sleep_until(epoch, start);
            for seq in 0..spec.calls_per_client {
                let scheduled = epoch.elapsed().as_secs_f64();
                results.push(issue(
                    spec,
                    backend,
                    &mut direct,
                    inputs,
                    epoch,
                    seed,
                    client,
                    seq,
                    scheduled,
                ));
                if think > Duration::ZERO && seq + 1 < spec.calls_per_client {
                    std::thread::sleep(think);
                }
            }
        }
        Arrival::Open { .. } => {
            for (seq, &offset) in schedule.iter().enumerate() {
                // Late calls are issued immediately, never skipped: the
                // offered load is exactly the schedule.
                sleep_until(epoch, offset);
                results.push(issue(
                    spec,
                    backend,
                    &mut direct,
                    inputs,
                    epoch,
                    seed,
                    client,
                    seq,
                    offset,
                ));
            }
        }
    }
    results
}

/// Issue and measure one call.
#[allow(clippy::too_many_arguments)]
fn issue(
    spec: &WorkloadSpec,
    backend: &Backend,
    direct: &mut Option<NinfClient>,
    inputs: &Inputs,
    epoch: Instant,
    seed: u64,
    client: usize,
    seq: usize,
    scheduled: f64,
) -> CallResult {
    let routine = spec.pick_routine(seed, client, seq);
    let args = inputs.args(routine, client, seq);
    let t_submit = epoch.elapsed().as_secs_f64();
    let (timing, outcome, trace_id) = match (backend, direct.as_mut()) {
        (_, Some(c)) => {
            let outcome = match c.ninf_call(routine.name(), &args) {
                Ok(_) => Outcome::Ok,
                Err(e) => classify(&e),
            };
            (
                c.last_timing().unwrap_or_default(),
                outcome,
                c.last_trace_id(),
            )
        }
        (Backend::Meta(meta), _) => {
            // The metaserver path has no per-segment decomposition; wall
            // total only.
            let t0 = Instant::now();
            let (result, trace_id) = meta.ninf_call_traced(routine.name(), &args, None);
            let outcome = match result {
                Ok(_) => Outcome::Ok,
                Err(e) => classify(&e),
            };
            (
                CallTiming {
                    total: t0.elapsed().as_secs_f64(),
                    attempts: 1,
                    ..CallTiming::default()
                },
                outcome,
                trace_id,
            )
        }
        (Backend::Direct(_), None) => unreachable!("direct backend always has a client"),
    };
    let t_complete = epoch.elapsed().as_secs_f64();
    CallResult {
        client,
        seq,
        routine: routine.name(),
        n: routine.scalar(),
        scheduled,
        t_submit,
        t_complete,
        timing,
        outcome,
        flops: routine.flops(),
        trace_id,
    }
}

/// Fetch §4.1 timelines from every queryable server after the run.
pub(crate) fn collect_server_view(
    addrs: &[String],
    options: ninf_client::CallOptions,
) -> Option<ServerView> {
    let mut records: Vec<CallStat> = Vec::new();
    let mut any = false;
    for addr in addrs {
        if let Ok(mut c) = NinfClient::connect_with(addr, options) {
            if let Ok((_now, _total, recs)) = c.query_stats(0) {
                records.extend(recs);
                any = true;
            }
        }
    }
    any.then(|| ServerView::from_stats(&records))
}

/// Short human description of what the fleet offered.
fn workload_desc(spec: &WorkloadSpec) -> String {
    let mix = spec
        .mix
        .iter()
        .map(|e| {
            format!(
                "{} {}={} (w{})",
                e.routine.name(),
                match e.routine {
                    Routine::Linpack { .. } | Routine::Nbody { .. } => "n",
                    Routine::Ep { .. } => "m",
                },
                e.routine.scalar(),
                e.weight
            )
        })
        .collect::<Vec<_>>()
        .join(" + ");
    match spec.arrival {
        Arrival::Closed { think } => format!(
            "closed-loop think={}ms, {} calls/client, mix: {mix}",
            think.as_millis(),
            spec.calls_per_client
        ),
        Arrival::Open { rate_hz } => format!(
            "open-loop {rate_hz} Hz/client over {:.1}s, mix: {mix}",
            spec.phases.total()
        ),
    }
}

/// Run `scenario` with `clients` concurrent live clients under `seed`.
///
/// Spawns whatever the scenario's [`Target`] asks for, fans out one OS
/// thread per client, joins them, queries every server's §4.1 stats, shuts
/// spawned servers down, and aggregates the [`RunReport`].
pub fn run_scenario(scenario: &Scenario, clients: usize, seed: u64) -> ProtocolResult<RunReport> {
    // The c10k scenario swaps the thread-per-client fleet for the
    // single-threaded open-loop driver: 10 000 OS threads on a small host
    // is its own experiment, not the one we're measuring.
    if scenario.name == "lan-c10k" {
        return run_c10k(scenario, clients, seed);
    }
    let spec = &scenario.spec;
    let live = materialize(&scenario.target, spec)?;
    let inputs = Inputs::prepare(spec, seed);

    let epoch = Instant::now();
    let mut calls: Vec<CallResult> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|client| {
                let backend = &live.backend;
                let inputs = &inputs;
                s.spawn(move || drive_client(spec, backend, inputs, epoch, seed, client, clients))
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread panicked"))
            .collect()
    });
    calls.sort_by_key(|c| (c.client, c.seq));

    let wall_secs = {
        let first = calls
            .iter()
            .map(|c| c.t_submit)
            .fold(f64::INFINITY, f64::min);
        let last = calls.iter().map(|c| c.t_complete).fold(0.0, f64::max);
        if first.is_finite() && last > first {
            last - first
        } else {
            0.0
        }
    };

    let server = collect_server_view(&live.addrs, spec.options);
    let schedules: Vec<Vec<f64>> = (0..clients)
        .map(|c| spec.arrival_schedule(seed, c, clients))
        .collect();
    for s in live.spawned {
        s.shutdown();
    }

    Ok(RunReport::build(
        scenario.name,
        workload_desc(spec),
        clients,
        seed,
        wall_secs,
        calls,
        server,
        schedules,
    ))
}

/// The `lan-c10k` path: `clients` is the *connection* count, all driven from
/// one poller thread ([`run_open_loop`]); the spec's per-client open-loop
/// rate scales to an aggregate schedule. Calls collapse into a single
/// per-client summary row — at c=10 000 a per-connection breakdown is noise.
fn run_c10k(scenario: &Scenario, clients: usize, seed: u64) -> ProtocolResult<RunReport> {
    let spec = &scenario.spec;
    let live = materialize(&scenario.target, spec)?;
    let addr = live
        .addrs
        .first()
        .cloned()
        .ok_or_else(|| ProtocolError::Frame("c10k target has no address".into()))?;

    let routine = spec
        .mix
        .first()
        .map(|e| e.routine)
        .unwrap_or(Routine::Ep { m: 4 });
    let inputs = Inputs::prepare(spec, seed);
    let rate_per_conn = match spec.arrival {
        Arrival::Open { rate_hz } => rate_hz,
        Arrival::Closed { .. } => 1.0,
    };
    let drain = spec.options.deadline.unwrap_or(Duration::from_secs(10));
    let config = DriverConfig {
        addr,
        conns: clients,
        duration: Duration::from_secs_f64(spec.phases.total().max(1.0)),
        rate_hz: rate_per_conn * clients as f64,
        max_inflight_per_conn: 32,
        request: Message::Invoke {
            routine: routine.name().into(),
            args: ninf_protocol::Arg::inline(inputs.args(routine, 0, 0)),
            trace: None,
        },
        drain,
    };
    let report = run_open_loop(&config)?;

    let mut calls: Vec<CallResult> = report
        .samples
        .iter()
        .enumerate()
        .map(|(seq, s)| CallResult {
            client: 0,
            seq,
            routine: routine.name(),
            n: routine.scalar(),
            scheduled: s.scheduled,
            t_submit: s.scheduled,
            t_complete: s.scheduled + s.latency,
            timing: CallTiming {
                total: s.latency,
                attempts: 1,
                ..CallTiming::default()
            },
            outcome: if s.ok { Outcome::Ok } else { Outcome::Remote },
            flops: routine.flops(),
            trace_id: 0,
        })
        .collect();
    // Driver-level errors with no sample (dead connections, calls still owed
    // at the drain deadline) must surface in the report, not vanish.
    let sample_errors = report.samples.iter().filter(|s| !s.ok).count() as u64;
    let base = calls.len();
    for k in 0..report.errors.saturating_sub(sample_errors) {
        calls.push(CallResult {
            client: 0,
            seq: base + k as usize,
            routine: routine.name(),
            n: routine.scalar(),
            scheduled: 0.0,
            t_submit: 0.0,
            t_complete: 0.0,
            timing: CallTiming {
                attempts: 1,
                ..CallTiming::default()
            },
            outcome: Outcome::Transport,
            flops: routine.flops(),
            trace_id: 0,
        });
    }

    let server_view = collect_server_view(&live.addrs, spec.options);
    for s in live.spawned {
        s.shutdown();
    }
    let mut run = RunReport::build(
        scenario.name,
        format!(
            "open-loop {:.1} Hz aggregate over {} mux connections, {}",
            config.rate_hz,
            report.conns,
            workload_desc(spec)
        ),
        1,
        seed,
        report.elapsed,
        calls,
        server_view,
        Vec::new(),
    );
    run.clients = report.conns;
    Ok(run)
}
