//! `ninf-loadgen`: multi-client live load generation and measurement.
//!
//! The paper is a *multi-client* performance analysis: §4.1 drives 1–32
//! concurrent clients against one server and measures, per `Ninf_call`, the
//! timestamps `T_submit`/`T_enqueue`/`T_dequeue`/`T_complete` and the derived
//! `T_response`/`T_wait` plus per-call Mflops. This crate is the live
//! counterpart of that experiment rig (and of the simulator's Table 3/4
//! reproductions): it fans out N real client threads over TCP against real
//! `ninfd` servers (or a metaserver fleet), drives them from a declarative
//! [`WorkloadSpec`] — closed-loop with think time or open-loop with a
//! deterministic seeded arrival process, with ramp-up/steady/ramp-down
//! phases and a per-client routine+size mix — and aggregates every call into
//! per-client and fleet-wide reports.
//!
//! Measurement joins two views:
//!
//! * **client-side**: each call's [`ninf_client::CallTiming`] decomposition
//!   (connect / interface / marshal / roundtrip / total) plus outcome and
//!   retry counts;
//! * **server-side**: the server's own §4.1 [`ninf_protocol::CallStat`]
//!   records, fetched over the `QueryStats` protocol message, giving the
//!   fleet `T_response`/`T_wait` decomposition.
//!
//! Reports serialize to JSON (same schema family as
//! `results/experiments.json`, so live runs are comparable with the sim's
//! Table 3/4 cells) and to CSV.

pub mod hist;
pub mod report;
pub mod runner;
pub mod scenario;
pub mod spec;
pub mod sweep;

pub use hist::LogHistogram;
pub use report::{CallResult, ClientSummary, Outcome, RunReport, ServerView, Summary};
pub use runner::{run_scenario, Target};
pub use scenario::{scenario, scenario_names, Scenario};
pub use spec::{Arrival, MixEntry, Phases, Routine, SplitMix64, WorkloadSpec};
pub use sweep::{
    estimate_knee, run_sweep, KneeEstimate, RemoteSeries, SweepConfig, SweepPoint, SweepReport,
    SweepTimeline,
};
