//! Aggregation of per-call measurements into per-client and fleet reports,
//! and their JSON/CSV serializations.
//!
//! The JSON shape follows the `results/experiments.json` family the sim's
//! Table 3/4 cells use — per-client `cells` with `{mean, max, min}` summary
//! triples — so live runs drop into the same comparison tooling.

use std::io::Write as _;
use std::path::{Path, PathBuf};

use ninf_client::CallTiming;
use ninf_protocol::CallStat;

use crate::hist::LogHistogram;
use crate::spec::{fnv1a, schedule_bytes};

/// How one call ended, from the client's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Reply validated.
    Ok,
    /// The server reported an application error (never retried).
    Remote,
    /// A deadline elapsed.
    Timeout,
    /// Transport-level failure (refused, reset, garbled frame, …).
    Transport,
}

impl Outcome {
    /// Short label for CSV/JSON.
    pub fn label(&self) -> &'static str {
        match self {
            Outcome::Ok => "ok",
            Outcome::Remote => "remote",
            Outcome::Timeout => "timeout",
            Outcome::Transport => "transport",
        }
    }
}

/// One live call as observed by the issuing client.
#[derive(Debug, Clone)]
pub struct CallResult {
    /// Client index (0-based).
    pub client: usize,
    /// Call sequence number within the client.
    pub seq: usize,
    /// Routine name.
    pub routine: &'static str,
    /// First scalar argument (`n` / `m`).
    pub n: i64,
    /// When the call was *supposed* to start (open loop) or did start
    /// (closed loop), seconds from run start.
    pub scheduled: f64,
    /// `T_submit`, client clock: seconds from run start at submission.
    pub t_submit: f64,
    /// Seconds from run start when the reply (or error) was seen.
    pub t_complete: f64,
    /// Client-side segment decomposition.
    pub timing: CallTiming,
    /// Outcome class.
    pub outcome: Outcome,
    /// Kernel flop count, when defined for the routine.
    pub flops: Option<u64>,
    /// Trace id minted for this call (0 when tracing was off), joining the
    /// client-side record to the cross-process flight-recorder spans.
    pub trace_id: u64,
}

impl CallResult {
    /// Per-call delivered Mflops (`flops / total-time`), when defined.
    pub fn mflops(&self) -> Option<f64> {
        let f = self.flops? as f64;
        (self.timing.total > 0.0 && self.outcome == Outcome::Ok)
            .then(|| f / self.timing.total / 1e6)
    }
}

/// `{mean, max, min}` summary triple, the sim's table-cell idiom.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Summary {
    /// Arithmetic mean.
    pub mean: f64,
    /// Largest sample.
    pub max: f64,
    /// Smallest sample.
    pub min: f64,
}

impl Summary {
    /// Summarize a sample set; all-zero when empty.
    pub fn of(samples: impl IntoIterator<Item = f64>) -> Self {
        let mut n = 0u64;
        let mut sum = 0.0;
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for s in samples {
            n += 1;
            sum += s;
            min = min.min(s);
            max = max.max(s);
        }
        if n == 0 {
            return Summary::default();
        }
        Summary {
            mean: sum / n as f64,
            max,
            min,
        }
    }

    fn to_json(self) -> serde_json::Value {
        serde_json::json!({ "mean": self.mean, "max": self.max, "min": self.min })
    }
}

/// Aggregate view of one client (or of the whole fleet).
#[derive(Debug, Clone)]
pub struct ClientSummary {
    /// Client index; `usize::MAX` for the fleet aggregate.
    pub client: usize,
    /// Calls issued.
    pub calls: usize,
    /// Calls that returned a validated reply.
    pub ok: usize,
    /// Application errors.
    pub remote_errors: usize,
    /// Deadline expiries.
    pub timeouts: usize,
    /// Transport failures.
    pub transport_errors: usize,
    /// Extra attempts beyond the first, summed over calls.
    pub retries: usize,
    /// Per-call end-to-end latency (successful calls).
    pub latency: Summary,
    /// p50 end-to-end latency, from the log histogram.
    pub p50: f64,
    /// p95 end-to-end latency.
    pub p95: f64,
    /// p99 end-to-end latency.
    pub p99: f64,
    /// Per-call delivered Mflops (calls with a defined flop count).
    pub perf: Summary,
    /// Calls with a defined flop count (perf sample size).
    pub perf_calls: usize,
    /// Successful calls per active second.
    pub calls_per_sec: f64,
}

impl ClientSummary {
    /// Fold `calls` (all belonging to one client, or the fleet) into a
    /// summary. `wall` is the active wall-clock seconds for the throughput
    /// denominator.
    pub fn aggregate(client: usize, calls: &[CallResult], wall: f64) -> Self {
        let mut hist = LogHistogram::new();
        let mut lat = Vec::new();
        let mut perf = Vec::new();
        let mut ok = 0;
        let mut remote = 0;
        let mut timeouts = 0;
        let mut transport = 0;
        let mut retries = 0;
        for c in calls {
            match c.outcome {
                Outcome::Ok => {
                    ok += 1;
                    hist.record(c.timing.total);
                    lat.push(c.timing.total);
                }
                Outcome::Remote => remote += 1,
                Outcome::Timeout => timeouts += 1,
                Outcome::Transport => transport += 1,
            }
            retries += c.timing.attempts.saturating_sub(1) as usize;
            if let Some(m) = c.mflops() {
                perf.push(m);
            }
        }
        ClientSummary {
            client,
            calls: calls.len(),
            ok,
            remote_errors: remote,
            timeouts,
            transport_errors: transport,
            retries,
            latency: Summary::of(lat),
            p50: hist.percentile(50.0),
            p95: hist.percentile(95.0),
            p99: hist.percentile(99.0),
            perf: Summary::of(perf.iter().copied()),
            perf_calls: perf.len(),
            calls_per_sec: if wall > 0.0 { ok as f64 / wall } else { 0.0 },
        }
    }

    /// Errors of any class.
    pub fn errors(&self) -> usize {
        self.remote_errors + self.timeouts + self.transport_errors
    }

    fn to_json(&self) -> serde_json::Value {
        let mut cell = serde_json::Map::new();
        if self.client != usize::MAX {
            cell.insert("client".into(), serde_json::json!(self.client as u64));
        }
        cell.insert("calls".into(), serde_json::json!(self.calls as u64));
        cell.insert("ok".into(), serde_json::json!(self.ok as u64));
        cell.insert("errors".into(), serde_json::json!(self.errors() as u64));
        cell.insert(
            "remote_errors".into(),
            serde_json::json!(self.remote_errors as u64),
        );
        cell.insert("timeouts".into(), serde_json::json!(self.timeouts as u64));
        cell.insert(
            "transport_errors".into(),
            serde_json::json!(self.transport_errors as u64),
        );
        cell.insert("retries".into(), serde_json::json!(self.retries as u64));
        cell.insert("latency".into(), self.latency.to_json());
        cell.insert("latency_p50".into(), serde_json::json!(self.p50));
        cell.insert("latency_p95".into(), serde_json::json!(self.p95));
        cell.insert("latency_p99".into(), serde_json::json!(self.p99));
        if self.perf_calls > 0 {
            cell.insert("perf".into(), self.perf.to_json());
        }
        cell.insert(
            "calls_per_sec".into(),
            serde_json::json!(self.calls_per_sec),
        );
        serde_json::Value::Object(cell)
    }
}

/// The server-side half of the measurement: §4.1 timelines fetched over
/// `QueryStats`, decomposed per the paper.
#[derive(Debug, Clone)]
pub struct ServerView {
    /// Records joined.
    pub records: usize,
    /// `T_response = T_enqueue − T_submit`.
    pub response: Summary,
    /// `T_wait = T_dequeue − T_enqueue`.
    pub wait: Summary,
    /// Service time `T_complete − T_dequeue`.
    pub service: Summary,
}

impl ServerView {
    /// Decompose a set of server records.
    pub fn from_stats(records: &[CallStat]) -> Self {
        ServerView {
            records: records.len(),
            response: Summary::of(records.iter().map(CallStat::response)),
            wait: Summary::of(records.iter().map(CallStat::wait)),
            service: Summary::of(records.iter().map(CallStat::service)),
        }
    }

    fn to_json(&self) -> serde_json::Value {
        serde_json::json!({
            "records": self.records as u64,
            "response": self.response.to_json(),
            "wait": self.wait.to_json(),
            "service": self.service.to_json(),
        })
    }
}

/// One complete run of a scenario at one client count.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Scenario name.
    pub scenario: String,
    /// Workload description (routine mix, arrival process).
    pub workload: String,
    /// Concurrent clients.
    pub clients: usize,
    /// Seed the whole run derives from.
    pub seed: u64,
    /// Wall-clock seconds from first submission to last completion.
    pub wall_secs: f64,
    /// Every call, in client-then-sequence order.
    pub calls: Vec<CallResult>,
    /// Per-client aggregates.
    pub per_client: Vec<ClientSummary>,
    /// Fleet-wide aggregate.
    pub fleet: ClientSummary,
    /// Server-side §4.1 decomposition (absent if the stats query failed).
    pub server: Option<ServerView>,
    /// Open-loop arrival schedules per client (empty for closed loops).
    pub schedules: Vec<Vec<f64>>,
    /// FNV-1a fingerprint over the concatenated schedule bytes.
    pub schedule_fnv: u64,
}

impl RunReport {
    /// Aggregate a finished run.
    #[allow(clippy::too_many_arguments)]
    pub fn build(
        scenario: &str,
        workload: String,
        clients: usize,
        seed: u64,
        wall_secs: f64,
        calls: Vec<CallResult>,
        server: Option<ServerView>,
        schedules: Vec<Vec<f64>>,
    ) -> Self {
        let per_client = (0..clients)
            .map(|i| {
                let own: Vec<CallResult> =
                    calls.iter().filter(|c| c.client == i).cloned().collect();
                ClientSummary::aggregate(i, &own, wall_secs)
            })
            .collect();
        let fleet = ClientSummary::aggregate(usize::MAX, &calls, wall_secs);
        let mut sched_bytes = Vec::new();
        for s in &schedules {
            sched_bytes.extend_from_slice(&schedule_bytes(s));
        }
        RunReport {
            scenario: scenario.to_owned(),
            workload,
            clients,
            seed,
            wall_secs,
            calls,
            per_client,
            fleet,
            server,
            schedules,
            schedule_fnv: fnv1a(&sched_bytes),
        }
    }

    /// Aggregate delivered Mflops of the whole fleet (total flops over wall
    /// time), when any call had a defined flop count.
    pub fn aggregate_mflops(&self) -> Option<f64> {
        let total: u64 = self
            .calls
            .iter()
            .filter(|c| c.outcome == Outcome::Ok)
            .filter_map(|c| c.flops)
            .sum();
        (total > 0 && self.wall_secs > 0.0).then(|| total as f64 / self.wall_secs / 1e6)
    }

    /// The experiments.json-family document of this run.
    pub fn to_json(&self) -> serde_json::Value {
        let mut doc = serde_json::Map::new();
        doc.insert("scenario".into(), serde_json::json!(self.scenario.as_str()));
        doc.insert("workload".into(), serde_json::json!(self.workload.as_str()));
        doc.insert("clients".into(), serde_json::json!(self.clients as u64));
        doc.insert("seed".into(), serde_json::json!(self.seed));
        doc.insert("wall_secs".into(), serde_json::json!(self.wall_secs));
        doc.insert(
            "cells".into(),
            serde_json::Value::Array(self.per_client.iter().map(|c| c.to_json()).collect()),
        );
        let mut fleet = match self.fleet.to_json() {
            serde_json::Value::Object(m) => m,
            _ => unreachable!("fleet summary serializes to an object"),
        };
        if let Some(agg) = self.aggregate_mflops() {
            fleet.insert("aggregate_mflops".into(), serde_json::json!(agg));
        }
        if let Some(server) = &self.server {
            // The §4.1 decomposition, surfaced at fleet level for direct
            // comparison with sim table cells.
            fleet.insert("response".into(), server.response.to_json());
            fleet.insert("wait".into(), server.wait.to_json());
        }
        doc.insert("fleet".into(), serde_json::Value::Object(fleet));
        if let Some(server) = &self.server {
            doc.insert("server".into(), server.to_json());
        }
        doc.insert(
            "schedule_fnv".into(),
            serde_json::json!(format!("{:#018x}", self.schedule_fnv)),
        );
        doc.insert(
            "schedules".into(),
            serde_json::Value::Array(
                self.schedules
                    .iter()
                    .map(|s| {
                        serde_json::Value::Array(s.iter().map(|t| serde_json::json!(*t)).collect())
                    })
                    .collect(),
            ),
        );
        serde_json::Value::Object(doc)
    }

    /// Write `<scenario>_c<clients>_calls.csv` (per-call records) and
    /// `<scenario>_c<clients>_clients.csv` (per-client summaries) under
    /// `dir`; returns the paths written.
    pub fn write_csv(&self, dir: &Path) -> std::io::Result<Vec<PathBuf>> {
        std::fs::create_dir_all(dir)?;
        let stem = format!("{}_c{}", self.scenario, self.clients);
        let calls_path = dir.join(format!("{stem}_calls.csv"));
        let mut f = std::fs::File::create(&calls_path)?;
        writeln!(
            f,
            "client,seq,routine,n,outcome,scheduled,t_submit,t_complete,total,connect,interface,marshal,roundtrip,attempts,request_bytes,reply_bytes,mflops,trace_id"
        )?;
        for c in &self.calls {
            writeln!(
                f,
                "{},{},{},{},{},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6},{},{},{},{},{:016x}",
                c.client,
                c.seq,
                c.routine,
                c.n,
                c.outcome.label(),
                c.scheduled,
                c.t_submit,
                c.t_complete,
                c.timing.total,
                c.timing.connect,
                c.timing.interface,
                c.timing.marshal,
                c.timing.roundtrip,
                c.timing.attempts,
                c.timing.request_bytes,
                c.timing.reply_bytes,
                c.mflops().map(|m| format!("{m:.3}")).unwrap_or_default(),
                c.trace_id,
            )?;
        }

        let clients_path = dir.join(format!("{stem}_clients.csv"));
        let mut f = std::fs::File::create(&clients_path)?;
        writeln!(
            f,
            "client,calls,ok,errors,retries,latency_mean,latency_p50,latency_p95,latency_p99,perf_mean,calls_per_sec"
        )?;
        for s in &self.per_client {
            writeln!(
                f,
                "{},{},{},{},{},{:.6},{:.6},{:.6},{:.6},{:.3},{:.3}",
                s.client,
                s.calls,
                s.ok,
                s.errors(),
                s.retries,
                s.latency.mean,
                s.p50,
                s.p95,
                s.p99,
                s.perf.mean,
                s.calls_per_sec,
            )?;
        }
        Ok(vec![calls_path, clients_path])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn call(client: usize, seq: usize, total: f64, outcome: Outcome) -> CallResult {
        CallResult {
            client,
            seq,
            routine: "linpack",
            n: 128,
            scheduled: seq as f64,
            t_submit: seq as f64,
            t_complete: seq as f64 + total,
            timing: CallTiming {
                total,
                roundtrip: total,
                attempts: 1,
                request_bytes: 1000,
                reply_bytes: 100,
                ..CallTiming::default()
            },
            outcome,
            flops: Some(1_000_000),
            trace_id: 0,
        }
    }

    #[test]
    fn summary_of_samples() {
        let s = Summary::of([1.0, 2.0, 3.0]);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert_eq!(s.max, 3.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(Summary::of([]), Summary::default());
    }

    #[test]
    fn aggregate_counts_outcomes_and_perf() {
        let calls = vec![
            call(0, 0, 0.010, Outcome::Ok),
            call(0, 1, 0.020, Outcome::Ok),
            call(0, 2, 0.5, Outcome::Timeout),
            call(0, 3, 0.001, Outcome::Transport),
            call(0, 4, 0.001, Outcome::Remote),
        ];
        let s = ClientSummary::aggregate(0, &calls, 1.0);
        assert_eq!(s.calls, 5);
        assert_eq!(s.ok, 2);
        assert_eq!(s.errors(), 3);
        assert_eq!(s.timeouts, 1);
        assert_eq!(s.transport_errors, 1);
        assert_eq!(s.remote_errors, 1);
        // 1 MFLOP in 10 ms = 100 Mflops; in 20 ms = 50 Mflops.
        assert!((s.perf.mean - 75.0).abs() < 1e-9, "{}", s.perf.mean);
        assert_eq!(s.perf_calls, 2);
        assert!((s.calls_per_sec - 2.0).abs() < 1e-12);
        assert!(s.p50 > 0.0 && s.p50 <= s.p95 && s.p95 <= s.p99);
    }

    #[test]
    fn report_json_has_table_shape() {
        let calls = vec![
            call(0, 0, 0.010, Outcome::Ok),
            call(1, 0, 0.020, Outcome::Ok),
        ];
        let report = RunReport::build(
            "unit",
            "linpack n=128".into(),
            2,
            7,
            0.5,
            calls,
            Some(ServerView::from_stats(&[])),
            vec![vec![0.1, 0.2], vec![0.15]],
        );
        let doc = report.to_json();
        assert_eq!(doc["scenario"], "unit");
        assert_eq!(doc["clients"], 2);
        assert_eq!(doc["seed"], 7);
        let cells = doc["cells"].as_array().unwrap();
        assert_eq!(cells.len(), 2);
        assert!(cells[0]["perf"]["mean"].as_f64().unwrap() > 0.0);
        assert!(doc["fleet"]["aggregate_mflops"].as_f64().unwrap() > 0.0);
        assert!(doc["fleet"]["errors"].as_u64() == Some(0));
        assert!(doc["schedule_fnv"].as_str().unwrap().starts_with("0x"));
        assert_eq!(doc["schedules"].as_array().unwrap().len(), 2);
        // Same schedules → same fingerprint; different → different.
        let again = RunReport::build(
            "unit",
            "linpack n=128".into(),
            2,
            7,
            0.5,
            Vec::new(),
            None,
            vec![vec![0.1, 0.2], vec![0.15]],
        );
        assert_eq!(report.schedule_fnv, again.schedule_fnv);
        let other = RunReport::build(
            "unit",
            "linpack n=128".into(),
            2,
            7,
            0.5,
            Vec::new(),
            None,
            vec![vec![0.1, 0.2], vec![0.150001]],
        );
        assert_ne!(report.schedule_fnv, other.schedule_fnv);
    }

    #[test]
    fn csv_files_written_with_headers() {
        let dir = std::env::temp_dir().join(format!("ninf-loadgen-csv-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let report = RunReport::build(
            "unit",
            "w".into(),
            1,
            1,
            1.0,
            vec![call(0, 0, 0.010, Outcome::Ok)],
            None,
            vec![],
        );
        let files = report.write_csv(&dir).unwrap();
        assert_eq!(files.len(), 2);
        let calls_csv = std::fs::read_to_string(&files[0]).unwrap();
        assert!(calls_csv.starts_with("client,seq,routine"));
        assert_eq!(calls_csv.lines().count(), 2);
        let clients_csv = std::fs::read_to_string(&files[1]).unwrap();
        assert!(clients_csv.starts_with("client,calls,ok"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn server_view_decomposes_per_paper() {
        let stats = vec![CallStat {
            routine: "linpack".into(),
            n: Some(600),
            request_bytes: 0,
            reply_bytes: 0,
            t_submit: 1.0,
            t_enqueue: 1.5,
            t_dequeue: 3.0,
            t_complete: 10.0,
        }];
        let v = ServerView::from_stats(&stats);
        assert_eq!(v.records, 1);
        assert!((v.response.mean - 0.5).abs() < 1e-12);
        assert!((v.wait.mean - 1.5).abs() < 1e-12);
        assert!((v.service.mean - 7.0).abs() < 1e-12);
    }
}
