//! Live end-to-end tests: real client threads against real in-process
//! servers over loopback TCP.

use std::time::Duration;

use ninf_client::CallOptions;
use ninf_loadgen::{
    run_scenario, scenario, Arrival, MixEntry, Outcome, Phases, Routine, Scenario, Target,
    WorkloadSpec,
};
use ninf_server::SchedPolicy;

/// A fast closed-loop Linpack scenario for debug-build test runtimes: same
/// shape as `lan-linpack`, smaller order and budget.
fn small_linpack(calls_per_client: usize, n: usize) -> Scenario {
    Scenario {
        name: "test-linpack",
        about: "test",
        spec: WorkloadSpec {
            mix: vec![MixEntry {
                routine: Routine::Linpack { n },
                weight: 1,
            }],
            arrival: Arrival::Closed {
                think: Duration::ZERO,
            },
            phases: Phases::none(),
            calls_per_client,
            unique_args: false,
            options: CallOptions::default(),
        },
        target: Target::Spawn {
            pes: 1,
            policy: SchedPolicy::Fcfs,
            core: Default::default(),
        },
    }
}

#[test]
fn closed_loop_run_completes_with_zero_errors_and_server_join() {
    let sc = small_linpack(4, 64);
    let report = run_scenario(&sc, 2, 1997).unwrap();

    assert_eq!(report.clients, 2);
    assert_eq!(report.calls.len(), 8);
    assert_eq!(report.fleet.ok, 8);
    assert_eq!(report.fleet.errors(), 0);
    assert!(report.wall_secs > 0.0);

    // Every call has a full client-side decomposition and §4.1-consistent
    // ordering.
    for c in &report.calls {
        assert_eq!(c.outcome, Outcome::Ok);
        assert!(c.timing.total > 0.0);
        assert!(c.timing.roundtrip > 0.0);
        assert!(c.timing.total + 1e-9 >= c.timing.roundtrip);
        assert!(c.t_complete >= c.t_submit);
        assert!(c.mflops().unwrap() > 0.0);
    }

    // The server's own §4.1 records were joined and cover every call.
    let server = report.server.as_ref().expect("stats query succeeded");
    assert_eq!(server.records, 8);
    assert!(server.response.mean >= 0.0);
    assert!(server.wait.mean >= 0.0);
    assert!(server.service.mean > 0.0);

    // Percentiles are populated and ordered.
    assert!(report.fleet.p50 > 0.0);
    assert!(report.fleet.p50 <= report.fleet.p95);
    assert!(report.fleet.p95 <= report.fleet.p99);

    // The JSON document has the experiments.json family shape.
    let doc = report.to_json();
    assert_eq!(doc["cells"].as_array().unwrap().len(), 2);
    assert!(doc["fleet"]["perf"]["mean"].as_f64().unwrap() > 0.0);
    assert!(doc["server"]["records"].as_u64().unwrap() == 8);
}

#[test]
fn per_call_mflops_decreases_under_client_contention() {
    // Closed loop, think 0, one PE: with c clients the gate serializes the
    // fleet, so mean per-call time grows ~c× and per-call Mflops must fall —
    // Table 3's structural shape.
    let sc = small_linpack(6, 96);
    let solo = run_scenario(&sc, 1, 1997).unwrap();
    let packed = run_scenario(&sc, 4, 1997).unwrap();
    assert_eq!(solo.fleet.errors(), 0);
    assert_eq!(packed.fleet.errors(), 0);
    let m1 = solo.fleet.perf.mean;
    let m4 = packed.fleet.perf.mean;
    assert!(
        m4 < m1,
        "per-call Mflops should fall under contention: c=1 {m1:.2}, c=4 {m4:.2}"
    );
}

#[test]
fn open_loop_run_is_schedule_faithful_and_seed_reproducible() {
    let sc = Scenario {
        name: "test-open",
        about: "test",
        spec: WorkloadSpec {
            mix: vec![MixEntry {
                routine: Routine::Ep { m: 8 },
                weight: 1,
            }],
            arrival: Arrival::Open { rate_hz: 25.0 },
            phases: Phases {
                ramp_up: 0.2,
                steady: 0.8,
                ramp_down: 0.2,
            },
            calls_per_client: 0,
            unique_args: false,
            options: CallOptions::default(),
        },
        target: Target::Spawn {
            pes: 2,
            policy: SchedPolicy::Fcfs,
            core: Default::default(),
        },
    };
    let a = run_scenario(&sc, 2, 42).unwrap();
    assert_eq!(a.fleet.errors(), 0);
    assert!(a.fleet.ok > 0);
    // One call per scheduled arrival, issued no earlier than scheduled.
    let planned: usize = (0..2)
        .map(|c| sc.spec.arrival_schedule(42, c, 2).len())
        .sum();
    assert_eq!(a.calls.len(), planned);
    for c in &a.calls {
        assert!(c.t_submit + 1e-3 >= c.scheduled, "issued before schedule");
    }
    // Same seed → byte-identical offered load across whole runs.
    let b = run_scenario(&sc, 2, 42).unwrap();
    assert_eq!(a.schedule_fnv, b.schedule_fnv);
    assert_eq!(a.schedules, b.schedules);
    // Different seed → different offered load.
    let c = run_scenario(&sc, 2, 43).unwrap();
    assert_ne!(a.schedule_fnv, c.schedule_fnv);
}

#[test]
fn metaserver_fleet_scenario_runs_clean() {
    let mut sc = scenario("metaserver-ft").expect("library scenario");
    // Trim the budget for test runtime; the shape stays the same.
    sc.spec.calls_per_client = 3;
    let report = run_scenario(&sc, 3, 7).unwrap();
    assert_eq!(report.calls.len(), 9);
    assert_eq!(report.fleet.errors(), 0);
    // Fleet stats joined from both servers cover every call.
    let server = report.server.as_ref().expect("fleet stats join");
    assert_eq!(server.records, 9);
    // Mixed workload: EP calls have no Mflops, Linpack calls do; the mix is
    // seeded so at least the dominant EP side must appear.
    assert!(report.calls.iter().any(|c| c.routine == "ep"));
}

#[test]
fn unreachable_server_yields_transport_errors_not_hangs() {
    let sc = Scenario {
        target: Target::External("127.0.0.1:1".into()), // reserved port, refused
        ..small_linpack(3, 32)
    };
    let report = run_scenario(&sc, 2, 1).unwrap();
    assert_eq!(report.calls.len(), 6);
    assert_eq!(report.fleet.transport_errors, 6);
    assert_eq!(report.fleet.ok, 0);
    assert!(report.server.is_none());
}
