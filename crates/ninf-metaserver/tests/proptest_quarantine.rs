//! Property coverage for the quarantine state machine: no sequence of
//! failures and failed probes can reinstate a server — only a successful
//! probe (or a successful call) clears quarantine — and the event log the
//! directory emits always replays legally against a reference model.

use std::time::Duration;

use ninf_metaserver::{Directory, HealthEvent, ServerEntry, QUARANTINE_THRESHOLD};
use ninf_server::{
    builtin::register_stdlib, ExecMode, NinfServer, Registry, SchedPolicy, ServerConfig,
};
use proptest::prelude::*;

/// Events the harness can feed the directory. `ProbeDead` probes
/// 127.0.0.1:1 (connection refused, fails fast), so it can never succeed.
#[derive(Debug, Clone, Copy)]
enum Op {
    Fail,
    ProbeDead,
    Succeed,
}

fn dead_entry() -> ServerEntry {
    ServerEntry {
        name: "dead".into(),
        addr: "127.0.0.1:1".into(),
        bandwidth_bytes_per_sec: 10e6,
        linpack_mflops: 100.0,
    }
}

/// Reference state machine, replayed event-by-event to check the log.
#[derive(Default, Clone, Copy)]
struct Model {
    streak: u32,
    quarantined: bool,
}

/// Replay an event log against fresh models, panicking on any illegal
/// transition. Returns the final model per server.
fn replay(events: &[HealthEvent], servers: usize) -> Vec<Model> {
    let mut models = vec![Model::default(); servers];
    let mut pending_quarantine: Option<usize> = None;
    let mut pending_reinstate: Option<usize> = None;
    for (i, e) in events.iter().enumerate() {
        // A tip-over or clearing event must follow immediately.
        if let Some(s) = pending_quarantine.take() {
            assert_eq!(
                *e,
                HealthEvent::Quarantined { server: s },
                "event {i}: threshold crossed for {s} but no Quarantined followed"
            );
        } else if let Some(s) = pending_reinstate.take() {
            assert_eq!(
                *e,
                HealthEvent::Reinstated { server: s },
                "event {i}: success on quarantined {s} but no Reinstated followed"
            );
        }
        match *e {
            HealthEvent::Failure { server, streak, .. } => {
                let m = &mut models[server];
                m.streak += 1;
                assert_eq!(streak, m.streak, "event {i}: streak mismatch");
                if !m.quarantined && m.streak >= QUARANTINE_THRESHOLD {
                    m.quarantined = true;
                    pending_quarantine = Some(server);
                }
            }
            HealthEvent::Quarantined { server } => {
                assert!(
                    models[server].quarantined && models[server].streak >= QUARANTINE_THRESHOLD,
                    "event {i}: Quarantined without a tipping Failure"
                );
            }
            HealthEvent::Success { server, .. } => {
                let m = &mut models[server];
                if m.quarantined {
                    pending_reinstate = Some(server);
                }
                m.streak = 0;
                m.quarantined = false;
            }
            HealthEvent::Reinstated { server } => {
                // Legal only when the matching Success was just consumed;
                // `pending_reinstate` was cleared above, so reaching here
                // with state still quarantined (or out of order) is a bug.
                assert!(
                    !models[server].quarantined,
                    "event {i}: Reinstated while model still quarantined"
                );
            }
        }
    }
    assert!(pending_quarantine.is_none(), "dangling threshold crossing");
    assert!(pending_reinstate.is_none(), "dangling reinstatement");
    models
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Failures and dead probes can never reinstate: once the directory
    /// quarantines the server, every subsequent non-success event leaves it
    /// quarantined, and the directory state always agrees with the model.
    #[test]
    fn only_success_reinstates(ops in proptest::collection::vec(
        prop_oneof![4 => Just(Op::Fail), 2 => Just(Op::ProbeDead), 1 => Just(Op::Succeed)],
        1..40,
    )) {
        let mut d = Directory::new();
        d.register(dead_entry());
        let mut model = Model::default();
        for op in ops {
            match op {
                Op::Fail => {
                    d.record_failure(0);
                    model.streak += 1;
                    if model.streak >= QUARANTINE_THRESHOLD {
                        model.quarantined = true;
                    }
                }
                Op::ProbeDead => {
                    let available = d.try_reinstate(0, Some(Duration::from_millis(50)));
                    if model.quarantined {
                        // The probe target cannot answer, so reinstatement
                        // must be impossible.
                        prop_assert!(!available);
                        model.streak += 1;
                    } else {
                        prop_assert!(available);
                    }
                }
                Op::Succeed => {
                    d.record_success(0);
                    model = Model::default();
                }
            }
            prop_assert_eq!(d.is_quarantined(0), model.quarantined);
            prop_assert_eq!(d.failure_count(0), model.streak);
        }
        // The emitted event log replays legally and lands on the same state.
        let final_model = replay(&d.health_events(), 1)[0];
        prop_assert_eq!(final_model.quarantined, model.quarantined);
        prop_assert_eq!(final_model.streak, model.streak);
    }
}

/// A successful probe against a live server does reinstate — the positive
/// companion to the property above.
#[test]
fn successful_probe_reinstates() {
    let mut registry = Registry::new();
    register_stdlib(&mut registry, false);
    let server = NinfServer::start(
        "127.0.0.1:0",
        registry,
        ServerConfig {
            pes: 1,
            mode: ExecMode::TaskParallel,
            policy: SchedPolicy::Fcfs,
            core: Default::default(),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let mut d = Directory::new();
    d.register(ServerEntry {
        name: "live".into(),
        addr: server.addr().to_string(),
        bandwidth_bytes_per_sec: 10e6,
        linpack_mflops: 100.0,
    });
    for _ in 0..QUARANTINE_THRESHOLD {
        d.record_failure(0);
    }
    assert!(d.is_quarantined(0));
    assert!(d.try_reinstate(0, Some(Duration::from_secs(2))));
    assert!(!d.is_quarantined(0));
    assert_eq!(d.failure_count(0), 0);
    // The log ends Success{probe:true} → Reinstated and replays legally.
    let events = d.health_events();
    assert_eq!(
        &events[events.len() - 2..],
        &[
            HealthEvent::Success {
                server: 0,
                probe: true
            },
            HealthEvent::Reinstated { server: 0 },
        ]
    );
    let m = replay(&events, 1)[0];
    assert!(!m.quarantined);
    server.shutdown();
}
