//! The Ninf metaserver.
//!
//! "The Ninf metaserver monitors multiple Ninf computing servers on the
//! network, and performs scheduling and load balancing of client requests.
//! The client need not be aware (but could specify) the physical location of
//! computing servers" (paper §2.4).
//!
//! Besides the directory and monitoring, the metaserver executes recorded
//! [`ninf_client::Transaction`]s: it layers the data-dependency DAG and fans
//! each layer out to servers task-parallel — the mechanism behind the Fig 11
//! EP cluster benchmark. Four balancing policies are provided:
//!
//! * [`Balancing::RoundRobin`] — static rotation;
//! * [`Balancing::LoadBased`] — least loaded server, "such as is done for
//!   NetSolve" (§4.2.2);
//! * [`Balancing::BandwidthAware`] — highest client↔server bandwidth: the
//!   paper's headline recommendation for WAN ("task assignment and
//!   distribution should not be merely based on server load and utilization
//!   information, but rather on achievable network bandwidth");
//! * [`Balancing::MinCompletion`] — predicted `T_comm + T_comp` from IDL
//!   sizes and server calibration (§5.1).

pub mod balance;
pub mod directory;
pub mod metaserver;

pub use balance::{Balancing, CallEstimate, ServerState};
pub use directory::{
    probe_with_deadline, Directory, HealthEvent, HealthSnapshot, ServerEntry, QUARANTINE_THRESHOLD,
};
pub use metaserver::Metaserver;
