//! The metaserver proper: transaction execution over the server fleet.

use std::sync::{Arc, Mutex};
use std::time::Duration;

use ninf_client::{call_async_pooled, AsyncCall, CallOptions, PlannedCall, Transaction, TxArg};
use ninf_obs::{recorder, Counter, MetricsRegistry, Span};
use ninf_protocol::{ProtocolError, ProtocolResult, TraceContext, Value};
use ninf_reactor::{MuxPool, PoolConfig};

use crate::balance::{Balancing, CallEstimate};
use crate::directory::Directory;

/// The metaserver: a directory plus a balancing policy.
pub struct Metaserver {
    directory: Directory,
    balancing: Balancing,
    rr_cursor: Mutex<usize>,
    options: CallOptions,
    probe_deadline: Option<Duration>,
    metrics: Arc<MetricsRegistry>,
    routed: Counter,
    failed: Counter,
    /// Multiplexed streams to the fleet: fan-out legs check connections out
    /// of here instead of dialing one per call. Hit/miss counters land on
    /// [`Metaserver::metrics`].
    pool: Arc<MuxPool>,
}

impl Metaserver {
    /// Create over a directory with default failure handling: a 10 s
    /// per-operation call deadline and a 1 s probe deadline, so a hung
    /// server stalls a call briefly instead of forever.
    pub fn new(directory: Directory, balancing: Balancing) -> Self {
        Self::with_options(
            directory,
            balancing,
            CallOptions::with_deadline(Duration::from_secs(10)),
            Some(Duration::from_secs(1)),
        )
    }

    /// Create with explicit call options (deadline/backoff applied to every
    /// routed call) and load-probe deadline.
    pub fn with_options(
        directory: Directory,
        balancing: Balancing,
        options: CallOptions,
        probe_deadline: Option<Duration>,
    ) -> Self {
        let metrics = Arc::new(MetricsRegistry::new());
        let routed = metrics.counter(
            "ninf_meta_calls_total",
            "calls routed through the metaserver",
        );
        let failed = metrics.counter(
            "ninf_meta_errors_total",
            "routed calls whose final outcome was an error",
        );
        let pool = Arc::new(MuxPool::with_metrics(PoolConfig::default(), &metrics));
        Self {
            directory,
            balancing,
            rr_cursor: Mutex::new(0),
            options,
            probe_deadline,
            metrics,
            routed,
            failed,
            pool,
        }
    }

    /// The connection pool routed calls go through.
    pub fn pool(&self) -> &Arc<MuxPool> {
        &self.pool
    }

    /// The directory.
    pub fn directory(&self) -> &Directory {
        &self.directory
    }

    /// The metaserver's metrics registry (serve it with
    /// `ninf_obs::http::serve_metrics`).
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    /// Call options applied to routed calls.
    pub fn options(&self) -> CallOptions {
        self.options
    }

    /// Pick a server for a call with the given cost estimate, probing the
    /// current loads of the non-quarantined part of the fleet.
    pub fn choose_server(&self, est: CallEstimate) -> usize {
        let mut pool = self.directory.available_indices();
        if pool.is_empty() {
            // Entire fleet quarantined: fall back to everyone rather than
            // panic; deadlines and the ft retry loop govern from there.
            pool = (0..self.directory.len()).collect();
        }
        let states = self.directory.probe_states(&pool, self.probe_deadline);
        let mut rr = self.rr_cursor.lock().expect("rr lock");
        let k = self.balancing.choose(&states, est, &mut rr);
        pool[k]
    }

    /// First non-quarantined server strictly rotating from `last + 1`
    /// (wrapping), or `None` when the whole fleet is quarantined.
    fn next_available_after(&self, last: usize) -> Option<usize> {
        let n = self.directory.len();
        (1..=n)
            .map(|step| (last + step) % n)
            .find(|&i| !self.directory.is_quarantined(i))
    }

    /// Probe quarantined servers for reinstatement; returns the first one
    /// that answers, now available again.
    fn reinstate_any(&self) -> Option<usize> {
        (0..self.directory.len()).find(|&i| self.directory.try_reinstate(i, self.probe_deadline))
    }

    /// Route one `Ninf_call` through the metaserver (the client "need not be
    /// aware … of the physical location of computing servers", §2.4).
    pub fn ninf_call(&self, routine: &str, args: &[Value]) -> ProtocolResult<Vec<Value>> {
        self.ninf_call_traced(routine, args, None).0
    }

    /// [`Metaserver::ninf_call`] carrying the caller's trace position: the
    /// routing decision and the forwarded leg are recorded as metaserver
    /// spans under `parent` (a fresh root when `parent` is `None` and
    /// tracing is armed). Returns the outcome and the trace id used
    /// (0 when tracing is off).
    pub fn ninf_call_traced(
        &self,
        routine: &str,
        args: &[Value],
        parent: Option<TraceContext>,
    ) -> (ProtocolResult<Vec<Value>>, u64) {
        let ctx = recorder::global()
            .enabled()
            .then(|| parent.map(|p| p.child()).unwrap_or_else(TraceContext::root));
        let start_us = ninf_obs::now_us();
        let bytes: f64 = args.iter().map(|v| v.wire_bytes() as f64).sum();
        let route_start = ctx.map(|_| ninf_obs::now_us());
        let idx = self.choose_server(CallEstimate {
            bytes,
            flops: bytes * 100.0,
        });
        let addr = self.directory.entries()[idx].addr.clone();
        if let (Some(ctx), Some(start)) = (ctx, route_start) {
            // The probe + balancing decision is its own hop.
            recorder::global().record(
                Span::at(ctx.child(), "route", "metaserver", start)
                    .with_detail(format!("server={idx} addr={addr}")),
            );
        }
        let outcome = call_async_pooled(
            self.pool.clone(),
            addr,
            routine.to_owned(),
            args.to_vec(),
            self.options,
            ctx,
            "metaserver",
        )
        .wait();
        self.routed.inc();
        match &outcome {
            Ok(_) => self.directory.record_success(idx),
            Err(_) => {
                self.failed.inc();
                self.directory.record_failure(idx);
            }
        }
        let end_us = ninf_obs::now_us();
        self.metrics
            .histogram(
                "ninf_meta_call_seconds",
                "end-to-end routed call time as seen by the metaserver",
            )
            .lock()
            .record(end_us.saturating_sub(start_us) as f64 / 1e6);
        let trace_id = ctx.map_or(0, |c| c.trace_id);
        if let Some(ctx) = ctx {
            recorder::global().record(Span {
                trace_id: ctx.trace_id,
                span_id: ctx.span_id,
                parent_span_id: ctx.parent_span_id,
                name: "forward".into(),
                process: "metaserver".into(),
                start_us,
                dur_us: end_us.saturating_sub(start_us),
                detail: format!("routine={routine} server={idx} ok={}", outcome.is_ok()),
            });
        }
        (outcome, trace_id)
    }

    /// Execute a recorded transaction: topologically layer the dependency
    /// DAG, fan each layer out task-parallel across the fleet, and collect
    /// slot values.
    ///
    /// Returns the final contents of every slot (`None` if nothing wrote it).
    pub fn execute_transaction(&self, tx: &Transaction) -> ProtocolResult<Vec<Option<Value>>> {
        let levels = tx
            .dependency_levels()
            .map_err(|i| ProtocolError::Remote(format!("call #{i} reads an unwritten slot")))?;
        let mut slots: Vec<Option<Value>> = vec![None; tx.slot_count()];

        for level in levels {
            // Launch every call in this level concurrently, each on its own
            // connection (this is exactly the §4.3.1 EP fan-out).
            let mut in_flight: Vec<(usize, AsyncCall)> = Vec::with_capacity(level.len());
            for &call_idx in &level {
                let call = &tx.calls()[call_idx];
                let args = resolve_args(call, &slots)?;
                let bytes: f64 = args.iter().map(|v| v.wire_bytes() as f64).sum();
                let sidx = self.choose_server(CallEstimate {
                    bytes,
                    flops: bytes * 100.0,
                });
                let addr = self.directory.entries()[sidx].addr.clone();
                in_flight.push((
                    call_idx,
                    call_async_pooled(
                        self.pool.clone(),
                        addr,
                        call.routine.clone(),
                        args,
                        self.options,
                        None,
                        "metaserver",
                    ),
                ));
            }
            for (call_idx, pending) in in_flight {
                let results = pending.wait()?;
                let call = &tx.calls()[call_idx];
                if results.len() < call.outputs.iter().filter(|o| o.is_some()).count() {
                    return Err(ProtocolError::Remote(format!(
                        "call #{call_idx} returned {} values, transaction binds more",
                        results.len()
                    )));
                }
                for (out, value) in call.outputs.iter().zip(results) {
                    if let Some(slot) = out {
                        slots[slot.0] = Some(value);
                    }
                }
            }
        }
        Ok(slots)
    }
}

impl Metaserver {
    /// Fault-tolerant variant of [`Metaserver::execute_transaction`] (§2.4:
    /// the metaserver "controls the parallel, fault-tolerant execution of
    /// multiple sequence of Ninf_calls"): a call that fails on one server is
    /// retried elsewhere with exponential backoff and jitter. Every outcome
    /// feeds the directory's failure accounting — a server that fails
    /// [`crate::directory::QUARANTINE_THRESHOLD`] times in a row is
    /// quarantined and skipped by retries until a probe reinstates it. When
    /// every server is quarantined, the quarantined ones are probed and the
    /// first responder is put back in rotation before giving up. Calls are
    /// bounded by the configured [`CallOptions`] deadline, so a hung
    /// (accepting-but-silent) server costs one deadline, not a hang.
    pub fn execute_transaction_ft(&self, tx: &Transaction) -> ProtocolResult<Vec<Option<Value>>> {
        let levels = tx
            .dependency_levels()
            .map_err(|i| ProtocolError::Remote(format!("call #{i} reads an unwritten slot")))?;
        let n_servers = self.directory.len();
        let max_attempts = (2 * n_servers) as u32;
        let mut slots: Vec<Option<Value>> = vec![None; tx.slot_count()];

        for level in levels {
            let mut in_flight: Vec<(usize, usize, AsyncCall)> = Vec::with_capacity(level.len());
            for &call_idx in &level {
                let call = &tx.calls()[call_idx];
                let args = resolve_args(call, &slots)?;
                let bytes: f64 = args.iter().map(|v| v.wire_bytes() as f64).sum();
                let sidx = self.choose_server(CallEstimate {
                    bytes,
                    flops: bytes * 100.0,
                });
                let addr = self.directory.entries()[sidx].addr.clone();
                in_flight.push((
                    call_idx,
                    sidx,
                    call_async_pooled(
                        self.pool.clone(),
                        addr,
                        call.routine.clone(),
                        args,
                        self.options,
                        None,
                        "metaserver",
                    ),
                ));
            }
            for (call_idx, first_server, pending) in in_flight {
                let call = &tx.calls()[call_idx];
                let mut outcome = pending.wait();
                match &outcome {
                    Ok(_) => self.directory.record_success(first_server),
                    Err(_) => {
                        self.directory.record_failure(first_server);
                    }
                }
                let mut last_server = first_server;
                let mut attempt: u32 = 0;
                // Only retryable failures fail over: a Remote error is the
                // application itself answering (another server would say
                // the same), and an UnsupportedVersion peer will not
                // change its mind on a retry — burning attempts on either
                // just delays the caller's error.
                while outcome.as_ref().is_err_and(|e| e.is_retryable()) && attempt < max_attempts {
                    // Exponential backoff with per-call jitter so concurrent
                    // retriers don't stampede a recovering server.
                    std::thread::sleep(self.options.backoff_delay(attempt, call_idx as u64));
                    let sidx = match self.next_available_after(last_server) {
                        Some(i) => i,
                        None => match self.reinstate_any() {
                            Some(i) => i,
                            // Nothing answers probes either; give up.
                            None => break,
                        },
                    };
                    // Arguments are re-resolved (slots from earlier levels
                    // are still intact).
                    let args = resolve_args(call, &slots)?;
                    let addr = self.directory.entries()[sidx].addr.clone();
                    outcome = call_async_pooled(
                        self.pool.clone(),
                        addr,
                        call.routine.clone(),
                        args,
                        self.options,
                        None,
                        "metaserver",
                    )
                    .wait();
                    match &outcome {
                        Ok(_) => self.directory.record_success(sidx),
                        Err(_) => {
                            self.directory.record_failure(sidx);
                        }
                    }
                    last_server = sidx;
                    attempt += 1;
                }
                let results = outcome.map_err(|e| {
                    ProtocolError::Remote(format!(
                        "call #{call_idx} ({}) failed after {attempt} retries across {n_servers} servers: {e}",
                        call.routine
                    ))
                })?;
                for (out, value) in call.outputs.iter().zip(results) {
                    if let Some(slot) = out {
                        slots[slot.0] = Some(value);
                    }
                }
            }
        }
        Ok(slots)
    }
}

fn resolve_args(call: &PlannedCall, slots: &[Option<Value>]) -> ProtocolResult<Vec<Value>> {
    call.args
        .iter()
        .map(|a| match a {
            TxArg::Value(v) => Ok(v.clone()),
            TxArg::Ref(slot) => slots
                .get(slot.0)
                .and_then(|s| s.clone())
                .ok_or_else(|| ProtocolError::Remote(format!("slot {} is empty", slot.0))),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::directory::ServerEntry;
    use ninf_client::Transaction;
    use ninf_server::{
        builtin::register_stdlib, ExecMode, NinfServer, Registry, SchedPolicy, ServerConfig,
    };

    fn spawn_fleet(n: usize) -> (Vec<NinfServer>, Directory) {
        let mut dir = Directory::new();
        let mut servers = Vec::new();
        for i in 0..n {
            let mut registry = Registry::new();
            register_stdlib(&mut registry, false);
            let server = NinfServer::start(
                "127.0.0.1:0",
                registry,
                ServerConfig {
                    pes: 2,
                    mode: ExecMode::TaskParallel,
                    policy: SchedPolicy::Fcfs,
                    core: Default::default(),
                    ..ServerConfig::default()
                },
            )
            .unwrap();
            dir.register(ServerEntry {
                name: format!("node{i}"),
                addr: server.addr().to_string(),
                bandwidth_bytes_per_sec: 10e6,
                linpack_mflops: 100.0,
            });
            servers.push(server);
        }
        (servers, dir)
    }

    #[test]
    fn routes_single_call() {
        let (servers, dir) = spawn_fleet(2);
        let meta = Metaserver::new(dir, Balancing::RoundRobin);
        let out = meta.ninf_call("ep", &[Value::Int(8)]).unwrap();
        assert_eq!(out.len(), 2); // sums + counts
        for s in servers {
            s.shutdown();
        }
    }

    #[test]
    fn routed_calls_share_pooled_streams() {
        let (servers, dir) = spawn_fleet(1);
        let meta = Metaserver::new(dir, Balancing::RoundRobin);
        meta.ninf_call("ep", &[Value::Int(6)]).unwrap();
        meta.ninf_call("ep", &[Value::Int(6)]).unwrap();
        assert_eq!(meta.pool().misses(), 1, "one server, one dialed stream");
        assert!(meta.pool().hits() >= 1, "second call must reuse the stream");
        // The hit/miss counters live on the metaserver's own registry.
        let text = meta.metrics().render_prometheus();
        assert!(text.contains("ninf_client_pool_hits_total"), "{text}");
        assert!(text.contains("ninf_client_pool_misses_total"), "{text}");
        for s in servers {
            s.shutdown();
        }
    }

    #[test]
    fn ep_transaction_fans_out_round_robin() {
        let (servers, dir) = spawn_fleet(3);
        let meta = Metaserver::new(dir, Balancing::RoundRobin);
        let mut tx = Transaction::new();
        let mut out_slots = Vec::new();
        for _ in 0..6 {
            let sums = tx.slot();
            let counts = tx.slot();
            tx.call(
                "ep",
                vec![TxArg::Value(Value::Int(10))],
                vec![Some(sums), Some(counts)],
            );
            out_slots.push((sums, counts));
        }
        let slots = meta.execute_transaction(&tx).unwrap();
        for (sums, counts) in out_slots {
            assert!(slots[sums.0].is_some());
            let Some(Value::DoubleArray(c)) = &slots[counts.0] else {
                panic!()
            };
            assert_eq!(c.len(), 10);
        }
        // Round-robin over 3 servers × 6 calls: every server saw exactly 2.
        let counts: Vec<usize> = servers.iter().map(|s| s.stats().completed()).collect();
        assert_eq!(counts, vec![2, 2, 2]);
        for s in servers {
            s.shutdown();
        }
    }

    #[test]
    fn dependent_calls_flow_through_slots() {
        let (servers, dir) = spawn_fleet(2);
        let meta = Metaserver::new(dir, Balancing::RoundRobin);
        let n = 8usize;
        let (a, b) = ninf_exec::matgen(n);

        let mut tx = Transaction::new();
        let lu = tx.slot();
        let piv = tx.slot();
        let info = tx.slot();
        tx.call(
            "dgefa",
            vec![
                TxArg::Value(Value::Int(n as i32)),
                TxArg::Value(Value::DoubleArray(a.as_slice().to_vec())),
            ],
            vec![Some(lu), Some(piv), Some(info)],
        );
        let x = tx.slot();
        tx.call(
            "dgesl",
            vec![
                TxArg::Value(Value::Int(n as i32)),
                TxArg::Ref(lu),
                TxArg::Ref(piv),
                TxArg::Value(Value::DoubleArray(b)),
            ],
            vec![Some(x)],
        );
        let slots = meta.execute_transaction(&tx).unwrap();
        let Some(Value::DoubleArray(solution)) = &slots[x.0] else {
            panic!("no solution")
        };
        for xi in solution {
            assert!((xi - 1.0).abs() < 1e-8);
        }
        for s in servers {
            s.shutdown();
        }
    }

    #[test]
    fn unwritten_slot_read_is_reported() {
        let (servers, dir) = spawn_fleet(1);
        let meta = Metaserver::new(dir, Balancing::RoundRobin);
        let mut tx = Transaction::new();
        let ghost = tx.slot();
        tx.call("ep", vec![TxArg::Ref(ghost)], vec![None, None]);
        assert!(meta.execute_transaction(&tx).is_err());
        for s in servers {
            s.shutdown();
        }
    }

    #[test]
    fn ft_execution_survives_a_dead_server() {
        let (mut servers, mut dir) = spawn_fleet(2);
        // Register a dead address as a third "server" that every third call
        // round-robins onto.
        dir.register(ServerEntry {
            name: "dead".into(),
            addr: "127.0.0.1:1".into(), // nothing listens here
            bandwidth_bytes_per_sec: 10e6,
            linpack_mflops: 100.0,
        });
        let meta = Metaserver::new(dir, Balancing::RoundRobin);
        let mut tx = Transaction::new();
        let mut outs = Vec::new();
        for _ in 0..6 {
            let sums = tx.slot();
            let counts = tx.slot();
            tx.call(
                "ep",
                vec![TxArg::Value(Value::Int(10))],
                vec![Some(sums), Some(counts)],
            );
            outs.push(sums);
        }
        // Plain execution fails (some calls land on the dead server)...
        assert!(meta.execute_transaction(&tx).is_err());
        // ...fault-tolerant execution retries them elsewhere and succeeds.
        let slots = meta.execute_transaction_ft(&tx).unwrap();
        for s in outs {
            assert!(slots[s.0].is_some());
        }
        for s in servers.drain(..) {
            s.shutdown();
        }
    }

    #[test]
    fn ft_execution_fails_when_all_servers_dead() {
        let mut dir = Directory::new();
        for i in 0..2 {
            dir.register(ServerEntry {
                name: format!("dead{i}"),
                addr: "127.0.0.1:1".into(),
                bandwidth_bytes_per_sec: 1e6,
                linpack_mflops: 1.0,
            });
        }
        let meta = Metaserver::new(dir, Balancing::RoundRobin);
        let mut tx = Transaction::new();
        tx.call("ep", vec![TxArg::Value(Value::Int(8))], vec![None, None]);
        assert!(meta.execute_transaction_ft(&tx).is_err());
    }

    /// A listener that accepts connections and then stays silent forever —
    /// the failure mode a connection-refused check can't see.
    fn hung_server() -> String {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        std::thread::spawn(move || {
            let mut held = Vec::new();
            while let Ok((sock, _)) = listener.accept() {
                held.push(sock); // keep sockets open, never answer
            }
        });
        addr
    }

    fn fast_failure_options() -> ninf_client::CallOptions {
        ninf_client::CallOptions {
            deadline: Some(std::time::Duration::from_millis(300)),
            retries: 0,
            backoff: std::time::Duration::from_millis(10),
            ..ninf_client::CallOptions::default()
        }
    }

    #[test]
    fn ft_execution_survives_a_hung_server() {
        // A hung server accepts but never replies: without deadlines this
        // blocks forever; with them each call on it costs one deadline and
        // is then retried on a live server.
        let (mut servers, mut dir) = spawn_fleet(2);
        dir.register(ServerEntry {
            name: "hung".into(),
            addr: hung_server(),
            bandwidth_bytes_per_sec: 10e6,
            linpack_mflops: 100.0,
        });
        let meta = Metaserver::with_options(
            dir,
            Balancing::RoundRobin,
            fast_failure_options(),
            Some(std::time::Duration::from_millis(200)),
        );
        let mut tx = Transaction::new();
        let mut outs = Vec::new();
        for _ in 0..6 {
            let sums = tx.slot();
            let counts = tx.slot();
            tx.call(
                "ep",
                vec![TxArg::Value(Value::Int(10))],
                vec![Some(sums), Some(counts)],
            );
            outs.push(sums);
        }
        let slots = meta.execute_transaction_ft(&tx).unwrap();
        for s in outs {
            assert!(slots[s.0].is_some());
        }
        for s in servers.drain(..) {
            s.shutdown();
        }
    }

    #[test]
    fn ft_reinstates_quarantined_server_after_probe() {
        // One live server (manually quarantined) plus one dead address: the
        // retry loop must exhaust the dead server, find nothing available,
        // probe the quarantined one, reinstate it, and finish there.
        let (mut servers, mut dir) = spawn_fleet(1);
        dir.register(ServerEntry {
            name: "dead".into(),
            addr: "127.0.0.1:1".into(),
            bandwidth_bytes_per_sec: 10e6,
            linpack_mflops: 100.0,
        });
        for _ in 0..crate::directory::QUARANTINE_THRESHOLD {
            dir.record_failure(0);
        }
        assert!(dir.is_quarantined(0));
        let meta = Metaserver::with_options(
            dir,
            Balancing::RoundRobin,
            fast_failure_options(),
            Some(std::time::Duration::from_millis(200)),
        );
        let mut tx = Transaction::new();
        let sums = tx.slot();
        tx.call(
            "ep",
            vec![TxArg::Value(Value::Int(8))],
            vec![Some(sums), None],
        );
        let slots = meta.execute_transaction_ft(&tx).unwrap();
        assert!(slots[sums.0].is_some());
        // The probe that reinstated it also cleared the quarantine.
        assert!(!meta.directory().is_quarantined(0));
        for s in servers.drain(..) {
            s.shutdown();
        }
    }

    #[test]
    fn repeated_failures_quarantine_a_server() {
        let (mut servers, mut dir) = spawn_fleet(1);
        dir.register(ServerEntry {
            name: "dead".into(),
            addr: "127.0.0.1:1".into(),
            bandwidth_bytes_per_sec: 10e6,
            linpack_mflops: 100.0,
        });
        let meta = Metaserver::with_options(
            dir,
            Balancing::RoundRobin,
            fast_failure_options(),
            Some(std::time::Duration::from_millis(200)),
        );
        // Enough round-robined calls to hit the dead server repeatedly.
        let mut tx = Transaction::new();
        for _ in 0..8 {
            tx.call("ep", vec![TxArg::Value(Value::Int(8))], vec![None, None]);
        }
        meta.execute_transaction_ft(&tx).unwrap();
        assert!(meta.directory().is_quarantined(1));
        assert!(!meta.directory().is_quarantined(0));
        for s in servers.drain(..) {
            s.shutdown();
        }
    }

    #[test]
    fn load_based_prefers_idle_server() {
        // Two servers; the chooser must pick one with lower runnable count.
        let (servers, dir) = spawn_fleet(2);
        let meta = Metaserver::new(dir, Balancing::LoadBased);
        let idx = meta.choose_server(CallEstimate {
            bytes: 1e3,
            flops: 1e6,
        });
        assert!(idx < 2);
        for s in servers {
            s.shutdown();
        }
    }
}
