//! The server directory: registration, monitoring, and failure accounting.

use std::sync::Mutex;
use std::time::Duration;

use ninf_client::{CallOptions, NinfClient};
use ninf_protocol::{LoadReport, ProtocolResult};

use crate::balance::ServerState;

/// Consecutive failures after which a server is quarantined: selection skips
/// it until a probe succeeds again.
pub const QUARANTINE_THRESHOLD: u32 = 3;

/// Cap on the retained health-event log; transitions beyond it are counted
/// in [`Directory::health_events_dropped`] instead of recorded.
const EVENT_CAP: usize = 1 << 16;

/// One registered computational server.
#[derive(Debug, Clone)]
pub struct ServerEntry {
    /// Human-readable name ("J90@ETL").
    pub name: String,
    /// TCP address ("host:port").
    pub addr: String,
    /// Configured/measured bandwidth estimate in bytes/second.
    pub bandwidth_bytes_per_sec: f64,
    /// Calibrated Linpack rate in Mflops.
    pub linpack_mflops: f64,
}

/// Health accounting for one server.
#[derive(Debug, Clone, Copy, Default)]
struct Health {
    consecutive_failures: u32,
    quarantined: bool,
}

/// One observable health-state transition, appended (under the same lock
/// that mutates the state) every time failure accounting runs. The log is
/// what a correctness harness replays to check quarantine/reinstate
/// legality: a [`HealthEvent::Quarantined`] may only follow a
/// [`HealthEvent::Failure`] whose streak reached the threshold, and a
/// [`HealthEvent::Reinstated`] may only follow a [`HealthEvent::Success`]
/// on the same server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthEvent {
    /// One failed call (`probe == false`) or failed reinstatement probe
    /// (`probe == true`); `streak` is the consecutive-failure count *after*
    /// this failure.
    Failure {
        /// Server index.
        server: usize,
        /// Whether the failure came from a reinstatement probe.
        probe: bool,
        /// Consecutive failures including this one.
        streak: u32,
    },
    /// The failure streak crossed [`QUARANTINE_THRESHOLD`]; emitted
    /// immediately after the tipping [`HealthEvent::Failure`].
    Quarantined {
        /// Server index.
        server: usize,
    },
    /// One successful call (`probe == false`) or reinstatement probe
    /// (`probe == true`); resets the streak.
    Success {
        /// Server index.
        server: usize,
        /// Whether the success came from a reinstatement probe.
        probe: bool,
    },
    /// A quarantined server became available again; emitted immediately
    /// after the clearing [`HealthEvent::Success`].
    Reinstated {
        /// Server index.
        server: usize,
    },
}

/// Health slots plus the transition log, guarded by one lock so every
/// event sequence in the log is a legal serialization of the state
/// machine.
#[derive(Debug, Default, Clone)]
struct HealthState {
    slots: Vec<Health>,
    events: Vec<HealthEvent>,
    events_dropped: u64,
}

impl HealthState {
    fn note(&mut self, e: HealthEvent) {
        if self.events.len() < EVENT_CAP {
            self.events.push(e);
        } else {
            self.events_dropped += 1;
        }
    }
}

/// Point-in-time copy of one server's health accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthSnapshot {
    /// Consecutive failures so far.
    pub consecutive_failures: u32,
    /// Whether the server is currently quarantined.
    pub quarantined: bool,
}

/// The metaserver's view of the server fleet.
#[derive(Debug, Default)]
pub struct Directory {
    entries: Vec<ServerEntry>,
    // Interior mutability: failure accounting happens on the read-only call
    // paths (choose/execute), which take `&self`.
    health: Mutex<HealthState>,
}

impl Clone for Directory {
    fn clone(&self) -> Self {
        Self {
            entries: self.entries.clone(),
            health: Mutex::new(self.health.lock().expect("health lock").clone()),
        }
    }
}

impl Directory {
    /// Empty directory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a server; returns its index.
    pub fn register(&mut self, entry: ServerEntry) -> usize {
        self.entries.push(entry);
        self.health
            .lock()
            .expect("health lock")
            .slots
            .push(Health::default());
        self.entries.len() - 1
    }

    /// All entries.
    pub fn entries(&self) -> &[ServerEntry] {
        &self.entries
    }

    /// Number of servers.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the directory is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Shared failure bookkeeping for calls and probes.
    fn fail(&self, idx: usize, probe: bool) -> bool {
        let mut health = self.health.lock().expect("health lock");
        let h = &mut health.slots[idx];
        h.consecutive_failures += 1;
        let streak = h.consecutive_failures;
        let tipped = !h.quarantined && streak >= QUARANTINE_THRESHOLD;
        if tipped {
            health.slots[idx].quarantined = true;
        }
        health.note(HealthEvent::Failure {
            server: idx,
            probe,
            streak,
        });
        if tipped {
            health.note(HealthEvent::Quarantined { server: idx });
        }
        tipped
    }

    /// Shared success bookkeeping for calls and probes.
    fn succeed(&self, idx: usize, probe: bool) {
        let mut health = self.health.lock().expect("health lock");
        let was_quarantined = health.slots[idx].quarantined;
        health.slots[idx] = Health::default();
        health.note(HealthEvent::Success { server: idx, probe });
        if was_quarantined {
            health.note(HealthEvent::Reinstated { server: idx });
        }
    }

    /// Record one failed call against server `idx`. Returns `true` if this
    /// failure pushed the server over [`QUARANTINE_THRESHOLD`] into
    /// quarantine.
    pub fn record_failure(&self, idx: usize) -> bool {
        self.fail(idx, false)
    }

    /// Record one successful call against server `idx`, clearing its
    /// failure streak (and any quarantine).
    pub fn record_success(&self, idx: usize) {
        self.succeed(idx, false);
    }

    /// Whether server `idx` is currently quarantined.
    pub fn is_quarantined(&self, idx: usize) -> bool {
        self.health.lock().expect("health lock").slots[idx].quarantined
    }

    /// Consecutive failure count for server `idx`.
    pub fn failure_count(&self, idx: usize) -> u32 {
        self.health.lock().expect("health lock").slots[idx].consecutive_failures
    }

    /// Point-in-time health of every server, in registration order.
    pub fn health_snapshot(&self) -> Vec<HealthSnapshot> {
        self.health
            .lock()
            .expect("health lock")
            .slots
            .iter()
            .map(|h| HealthSnapshot {
                consecutive_failures: h.consecutive_failures,
                quarantined: h.quarantined,
            })
            .collect()
    }

    /// The health-state transition log so far (capped; see
    /// [`Directory::health_events_dropped`]).
    pub fn health_events(&self) -> Vec<HealthEvent> {
        self.health.lock().expect("health lock").events.clone()
    }

    /// Transitions that no longer fit the capped event log.
    pub fn health_events_dropped(&self) -> u64 {
        self.health.lock().expect("health lock").events_dropped
    }

    /// Indices of all non-quarantined servers, in registration order.
    pub fn available_indices(&self) -> Vec<usize> {
        let health = self.health.lock().expect("health lock");
        (0..self.entries.len())
            .filter(|&i| !health.slots[i].quarantined)
            .collect()
    }

    /// Probe a quarantined server and reinstate it if it answers within
    /// `deadline`. Returns `true` if the server is available afterwards.
    pub fn try_reinstate(&self, idx: usize, deadline: Option<Duration>) -> bool {
        if !self.is_quarantined(idx) {
            return true;
        }
        match probe_with_deadline(&self.entries[idx].addr, deadline) {
            Ok(_) => {
                self.succeed(idx, true);
                true
            }
            Err(_) => {
                // Stays quarantined; keep counting so monitoring can see how
                // long it has been down.
                self.fail(idx, true);
                false
            }
        }
    }

    /// Probe every server's load over the wire; unreachable servers report
    /// an all-zero load with zero PEs (they will never win selection).
    pub fn probe_all(&self) -> Vec<ServerState> {
        self.probe_states(&(0..self.entries.len()).collect::<Vec<_>>(), None)
    }

    /// Probe the given subset of servers, each bounded by `deadline` (a hung
    /// server then reports infinite load instead of blocking the probe).
    pub fn probe_states(&self, indices: &[usize], deadline: Option<Duration>) -> Vec<ServerState> {
        indices
            .iter()
            .map(|&i| {
                let e = &self.entries[i];
                let load = probe_with_deadline(&e.addr, deadline).unwrap_or(LoadReport {
                    pes: 0,
                    running: u32::MAX / 2,
                    queued: 0,
                    load_average: f64::INFINITY,
                    cpu_utilization: 100.0,
                });
                ServerState {
                    load,
                    bandwidth_bytes_per_sec: e.bandwidth_bytes_per_sec,
                    linpack_mflops: e.linpack_mflops,
                }
            })
            .collect()
    }
}

/// One load probe over a fresh connection.
pub fn probe(addr: &str) -> ProtocolResult<LoadReport> {
    probe_with_deadline(addr, None)
}

/// One load probe over a fresh connection, bounded by `deadline` so that an
/// accepting-but-silent server yields a typed timeout instead of a hang.
pub fn probe_with_deadline(addr: &str, deadline: Option<Duration>) -> ProtocolResult<LoadReport> {
    let options = match deadline {
        Some(d) => CallOptions::with_deadline(d),
        None => CallOptions::default(),
    };
    NinfClient::connect_with(addr, options)?.query_load()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(name: &str) -> ServerEntry {
        ServerEntry {
            name: name.into(),
            addr: "127.0.0.1:1".into(),
            bandwidth_bytes_per_sec: 2.5e6,
            linpack_mflops: 600.0,
        }
    }

    #[test]
    fn register_and_list() {
        let mut d = Directory::new();
        assert!(d.is_empty());
        d.register(entry("a"));
        d.register(entry("b"));
        assert_eq!(d.len(), 2);
        assert_eq!(d.entries()[1].name, "b");
    }

    #[test]
    fn probe_of_dead_server_yields_infinite_load() {
        let mut d = Directory::new();
        d.register(entry("dead"));
        let states = d.probe_all();
        assert_eq!(states.len(), 1);
        assert!(states[0].load.load_average.is_infinite());
    }

    #[test]
    fn quarantine_kicks_in_after_threshold() {
        let mut d = Directory::new();
        d.register(entry("flaky"));
        for i in 0..QUARANTINE_THRESHOLD {
            assert!(!d.is_quarantined(0), "quarantined after only {i} failures");
            let tipped = d.record_failure(0);
            assert_eq!(tipped, i + 1 == QUARANTINE_THRESHOLD);
        }
        assert!(d.is_quarantined(0));
        assert!(d.available_indices().is_empty());
    }

    #[test]
    fn success_clears_failure_streak() {
        let mut d = Directory::new();
        d.register(entry("recovering"));
        d.record_failure(0);
        d.record_failure(0);
        d.record_success(0);
        assert_eq!(d.failure_count(0), 0);
        // The streak restarts: two more failures still don't quarantine.
        d.record_failure(0);
        d.record_failure(0);
        assert!(!d.is_quarantined(0));
    }

    #[test]
    fn available_indices_skips_quarantined() {
        let mut d = Directory::new();
        d.register(entry("a"));
        d.register(entry("b"));
        d.register(entry("c"));
        for _ in 0..QUARANTINE_THRESHOLD {
            d.record_failure(1);
        }
        assert_eq!(d.available_indices(), vec![0, 2]);
    }

    #[test]
    fn reinstate_of_dead_server_fails_and_keeps_quarantine() {
        let mut d = Directory::new();
        d.register(entry("dead"));
        for _ in 0..QUARANTINE_THRESHOLD {
            d.record_failure(0);
        }
        assert!(!d.try_reinstate(0, Some(Duration::from_millis(100))));
        assert!(d.is_quarantined(0));
    }

    #[test]
    fn clone_carries_health_state() {
        let mut d = Directory::new();
        d.register(entry("a"));
        for _ in 0..QUARANTINE_THRESHOLD {
            d.record_failure(0);
        }
        let d2 = d.clone();
        assert!(d2.is_quarantined(0));
        // The event log travels too.
        assert_eq!(d2.health_events(), d.health_events());
    }

    #[test]
    fn event_log_records_quarantine_transition() {
        let mut d = Directory::new();
        d.register(entry("flaky"));
        d.record_failure(0);
        d.record_success(0);
        for _ in 0..QUARANTINE_THRESHOLD {
            d.record_failure(0);
        }
        let events = d.health_events();
        assert_eq!(
            events,
            vec![
                HealthEvent::Failure {
                    server: 0,
                    probe: false,
                    streak: 1
                },
                HealthEvent::Success {
                    server: 0,
                    probe: false
                },
                HealthEvent::Failure {
                    server: 0,
                    probe: false,
                    streak: 1
                },
                HealthEvent::Failure {
                    server: 0,
                    probe: false,
                    streak: 2
                },
                HealthEvent::Failure {
                    server: 0,
                    probe: false,
                    streak: 3
                },
                HealthEvent::Quarantined { server: 0 },
            ]
        );
        assert_eq!(d.health_events_dropped(), 0);
    }

    #[test]
    fn failed_probe_logs_probe_failure() {
        let mut d = Directory::new();
        d.register(entry("dead"));
        for _ in 0..QUARANTINE_THRESHOLD {
            d.record_failure(0);
        }
        assert!(!d.try_reinstate(0, Some(Duration::from_millis(50))));
        let last = *d.health_events().last().unwrap();
        assert_eq!(
            last,
            HealthEvent::Failure {
                server: 0,
                probe: true,
                streak: QUARANTINE_THRESHOLD + 1
            }
        );
    }

    #[test]
    fn snapshot_reflects_current_state() {
        let mut d = Directory::new();
        d.register(entry("a"));
        d.register(entry("b"));
        d.record_failure(1);
        let snap = d.health_snapshot();
        assert_eq!(
            snap,
            vec![
                HealthSnapshot {
                    consecutive_failures: 0,
                    quarantined: false
                },
                HealthSnapshot {
                    consecutive_failures: 1,
                    quarantined: false
                },
            ]
        );
    }
}
