//! The server directory: registration, monitoring, and failure accounting.

use std::sync::Mutex;
use std::time::Duration;

use ninf_client::{CallOptions, NinfClient};
use ninf_protocol::{LoadReport, ProtocolResult};

use crate::balance::ServerState;

/// Consecutive failures after which a server is quarantined: selection skips
/// it until a probe succeeds again.
pub const QUARANTINE_THRESHOLD: u32 = 3;

/// One registered computational server.
#[derive(Debug, Clone)]
pub struct ServerEntry {
    /// Human-readable name ("J90@ETL").
    pub name: String,
    /// TCP address ("host:port").
    pub addr: String,
    /// Configured/measured bandwidth estimate in bytes/second.
    pub bandwidth_bytes_per_sec: f64,
    /// Calibrated Linpack rate in Mflops.
    pub linpack_mflops: f64,
}

/// Health accounting for one server.
#[derive(Debug, Clone, Copy, Default)]
struct Health {
    consecutive_failures: u32,
    quarantined: bool,
}

/// The metaserver's view of the server fleet.
#[derive(Debug, Default)]
pub struct Directory {
    entries: Vec<ServerEntry>,
    // Interior mutability: failure accounting happens on the read-only call
    // paths (choose/execute), which take `&self`.
    health: Mutex<Vec<Health>>,
}

impl Clone for Directory {
    fn clone(&self) -> Self {
        Self {
            entries: self.entries.clone(),
            health: Mutex::new(self.health.lock().expect("health lock").clone()),
        }
    }
}

impl Directory {
    /// Empty directory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a server; returns its index.
    pub fn register(&mut self, entry: ServerEntry) -> usize {
        self.entries.push(entry);
        self.health
            .lock()
            .expect("health lock")
            .push(Health::default());
        self.entries.len() - 1
    }

    /// All entries.
    pub fn entries(&self) -> &[ServerEntry] {
        &self.entries
    }

    /// Number of servers.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the directory is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Record one failed call/probe against server `idx`. Returns `true` if
    /// this failure pushed the server over [`QUARANTINE_THRESHOLD`] into
    /// quarantine.
    pub fn record_failure(&self, idx: usize) -> bool {
        let mut health = self.health.lock().expect("health lock");
        let h = &mut health[idx];
        h.consecutive_failures += 1;
        if !h.quarantined && h.consecutive_failures >= QUARANTINE_THRESHOLD {
            h.quarantined = true;
            return true;
        }
        false
    }

    /// Record one successful call/probe against server `idx`, clearing its
    /// failure streak (and any quarantine).
    pub fn record_success(&self, idx: usize) {
        let mut health = self.health.lock().expect("health lock");
        health[idx] = Health::default();
    }

    /// Whether server `idx` is currently quarantined.
    pub fn is_quarantined(&self, idx: usize) -> bool {
        self.health.lock().expect("health lock")[idx].quarantined
    }

    /// Consecutive failure count for server `idx`.
    pub fn failure_count(&self, idx: usize) -> u32 {
        self.health.lock().expect("health lock")[idx].consecutive_failures
    }

    /// Indices of all non-quarantined servers, in registration order.
    pub fn available_indices(&self) -> Vec<usize> {
        let health = self.health.lock().expect("health lock");
        (0..self.entries.len())
            .filter(|&i| !health[i].quarantined)
            .collect()
    }

    /// Probe a quarantined server and reinstate it if it answers within
    /// `deadline`. Returns `true` if the server is available afterwards.
    pub fn try_reinstate(&self, idx: usize, deadline: Option<Duration>) -> bool {
        if !self.is_quarantined(idx) {
            return true;
        }
        match probe_with_deadline(&self.entries[idx].addr, deadline) {
            Ok(_) => {
                self.record_success(idx);
                true
            }
            Err(_) => {
                // Stays quarantined; keep counting so monitoring can see how
                // long it has been down.
                self.record_failure(idx);
                false
            }
        }
    }

    /// Probe every server's load over the wire; unreachable servers report
    /// an all-zero load with zero PEs (they will never win selection).
    pub fn probe_all(&self) -> Vec<ServerState> {
        self.probe_states(&(0..self.entries.len()).collect::<Vec<_>>(), None)
    }

    /// Probe the given subset of servers, each bounded by `deadline` (a hung
    /// server then reports infinite load instead of blocking the probe).
    pub fn probe_states(&self, indices: &[usize], deadline: Option<Duration>) -> Vec<ServerState> {
        indices
            .iter()
            .map(|&i| {
                let e = &self.entries[i];
                let load = probe_with_deadline(&e.addr, deadline).unwrap_or(LoadReport {
                    pes: 0,
                    running: u32::MAX / 2,
                    queued: 0,
                    load_average: f64::INFINITY,
                    cpu_utilization: 100.0,
                });
                ServerState {
                    load,
                    bandwidth_bytes_per_sec: e.bandwidth_bytes_per_sec,
                    linpack_mflops: e.linpack_mflops,
                }
            })
            .collect()
    }
}

/// One load probe over a fresh connection.
pub fn probe(addr: &str) -> ProtocolResult<LoadReport> {
    probe_with_deadline(addr, None)
}

/// One load probe over a fresh connection, bounded by `deadline` so that an
/// accepting-but-silent server yields a typed timeout instead of a hang.
pub fn probe_with_deadline(addr: &str, deadline: Option<Duration>) -> ProtocolResult<LoadReport> {
    let options = match deadline {
        Some(d) => CallOptions::with_deadline(d),
        None => CallOptions::default(),
    };
    NinfClient::connect_with(addr, options)?.query_load()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(name: &str) -> ServerEntry {
        ServerEntry {
            name: name.into(),
            addr: "127.0.0.1:1".into(),
            bandwidth_bytes_per_sec: 2.5e6,
            linpack_mflops: 600.0,
        }
    }

    #[test]
    fn register_and_list() {
        let mut d = Directory::new();
        assert!(d.is_empty());
        d.register(entry("a"));
        d.register(entry("b"));
        assert_eq!(d.len(), 2);
        assert_eq!(d.entries()[1].name, "b");
    }

    #[test]
    fn probe_of_dead_server_yields_infinite_load() {
        let mut d = Directory::new();
        d.register(entry("dead"));
        let states = d.probe_all();
        assert_eq!(states.len(), 1);
        assert!(states[0].load.load_average.is_infinite());
    }

    #[test]
    fn quarantine_kicks_in_after_threshold() {
        let mut d = Directory::new();
        d.register(entry("flaky"));
        for i in 0..QUARANTINE_THRESHOLD {
            assert!(!d.is_quarantined(0), "quarantined after only {i} failures");
            let tipped = d.record_failure(0);
            assert_eq!(tipped, i + 1 == QUARANTINE_THRESHOLD);
        }
        assert!(d.is_quarantined(0));
        assert!(d.available_indices().is_empty());
    }

    #[test]
    fn success_clears_failure_streak() {
        let mut d = Directory::new();
        d.register(entry("recovering"));
        d.record_failure(0);
        d.record_failure(0);
        d.record_success(0);
        assert_eq!(d.failure_count(0), 0);
        // The streak restarts: two more failures still don't quarantine.
        d.record_failure(0);
        d.record_failure(0);
        assert!(!d.is_quarantined(0));
    }

    #[test]
    fn available_indices_skips_quarantined() {
        let mut d = Directory::new();
        d.register(entry("a"));
        d.register(entry("b"));
        d.register(entry("c"));
        for _ in 0..QUARANTINE_THRESHOLD {
            d.record_failure(1);
        }
        assert_eq!(d.available_indices(), vec![0, 2]);
    }

    #[test]
    fn reinstate_of_dead_server_fails_and_keeps_quarantine() {
        let mut d = Directory::new();
        d.register(entry("dead"));
        for _ in 0..QUARANTINE_THRESHOLD {
            d.record_failure(0);
        }
        assert!(!d.try_reinstate(0, Some(Duration::from_millis(100))));
        assert!(d.is_quarantined(0));
    }

    #[test]
    fn clone_carries_health_state() {
        let mut d = Directory::new();
        d.register(entry("a"));
        for _ in 0..QUARANTINE_THRESHOLD {
            d.record_failure(0);
        }
        let d2 = d.clone();
        assert!(d2.is_quarantined(0));
    }
}
