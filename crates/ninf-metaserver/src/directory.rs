//! The server directory: registration and monitoring.

use ninf_client::NinfClient;
use ninf_protocol::{LoadReport, ProtocolResult};

use crate::balance::ServerState;

/// One registered computational server.
#[derive(Debug, Clone)]
pub struct ServerEntry {
    /// Human-readable name ("J90@ETL").
    pub name: String,
    /// TCP address ("host:port").
    pub addr: String,
    /// Configured/measured bandwidth estimate in bytes/second.
    pub bandwidth_bytes_per_sec: f64,
    /// Calibrated Linpack rate in Mflops.
    pub linpack_mflops: f64,
}

/// The metaserver's view of the server fleet.
#[derive(Debug, Default, Clone)]
pub struct Directory {
    entries: Vec<ServerEntry>,
}

impl Directory {
    /// Empty directory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a server; returns its index.
    pub fn register(&mut self, entry: ServerEntry) -> usize {
        self.entries.push(entry);
        self.entries.len() - 1
    }

    /// All entries.
    pub fn entries(&self) -> &[ServerEntry] {
        &self.entries
    }

    /// Number of servers.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the directory is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Probe every server's load over the wire; unreachable servers report
    /// an all-zero load with zero PEs (they will never win selection).
    pub fn probe_all(&self) -> Vec<ServerState> {
        self.entries
            .iter()
            .map(|e| {
                let load = probe(&e.addr).unwrap_or(LoadReport {
                    pes: 0,
                    running: u32::MAX / 2,
                    queued: 0,
                    load_average: f64::INFINITY,
                    cpu_utilization: 100.0,
                });
                ServerState {
                    load,
                    bandwidth_bytes_per_sec: e.bandwidth_bytes_per_sec,
                    linpack_mflops: e.linpack_mflops,
                }
            })
            .collect()
    }
}

/// One load probe over a fresh connection.
pub fn probe(addr: &str) -> ProtocolResult<LoadReport> {
    NinfClient::connect(addr)?.query_load()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(name: &str) -> ServerEntry {
        ServerEntry {
            name: name.into(),
            addr: "127.0.0.1:1".into(),
            bandwidth_bytes_per_sec: 2.5e6,
            linpack_mflops: 600.0,
        }
    }

    #[test]
    fn register_and_list() {
        let mut d = Directory::new();
        assert!(d.is_empty());
        d.register(entry("a"));
        d.register(entry("b"));
        assert_eq!(d.len(), 2);
        assert_eq!(d.entries()[1].name, "b");
    }

    #[test]
    fn probe_of_dead_server_yields_infinite_load() {
        let mut d = Directory::new();
        d.register(entry("dead"));
        let states = d.probe_all();
        assert_eq!(states.len(), 1);
        assert!(states[0].load.load_average.is_infinite());
    }
}
