//! Load-balancing policies.

use ninf_protocol::LoadReport;

/// What the metaserver knows about one computational server when choosing.
#[derive(Debug, Clone)]
pub struct ServerState {
    /// Last load report from monitoring.
    pub load: LoadReport,
    /// Estimated achievable client↔server bandwidth in bytes/second
    /// (measured by probes or configured; the paper measured FTP throughput).
    pub bandwidth_bytes_per_sec: f64,
    /// Calibrated Linpack rate of the server's registered library in Mflops
    /// (for completion-time prediction).
    pub linpack_mflops: f64,
}

/// Cost characteristics of the call being placed (derived from the IDL
/// layout, §5.1: "IDL and server execution trace will give us effective
/// information for predicting the communication transfer time versus
/// computing time").
#[derive(Debug, Clone, Copy)]
pub struct CallEstimate {
    /// Total array payload bytes (request + reply).
    pub bytes: f64,
    /// Floating-point operations of the computation.
    pub flops: f64,
}

/// Server-selection policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Balancing {
    /// Rotate through servers regardless of state.
    RoundRobin,
    /// Pick the server with the lowest normalized runnable count
    /// (NetSolve-style: "current NetSolve attempts to perform load balancing
    /// solely on server load average information", §6).
    LoadBased,
    /// Pick the server with the highest achievable bandwidth (the paper's
    /// WAN recommendation).
    BandwidthAware,
    /// Minimize predicted completion time `bytes/B + flops/P + queueing`.
    MinCompletion,
}

impl Balancing {
    /// Choose a server index. `rr_state` carries the round-robin cursor.
    ///
    /// # Panics
    /// Panics if `servers` is empty.
    pub fn choose(
        &self,
        servers: &[ServerState],
        call: CallEstimate,
        rr_state: &mut usize,
    ) -> usize {
        assert!(!servers.is_empty(), "no servers registered");
        match self {
            Balancing::RoundRobin => {
                let i = *rr_state % servers.len();
                *rr_state += 1;
                i
            }
            Balancing::LoadBased => argmin(servers, |s| {
                (s.load.running + s.load.queued) as f64 / s.load.pes.max(1) as f64
            }),
            Balancing::BandwidthAware => argmin(servers, |s| -s.bandwidth_bytes_per_sec),
            Balancing::MinCompletion => argmin(servers, |s| {
                let t_comm = call.bytes / s.bandwidth_bytes_per_sec;
                // A queued/running backlog delays us by roughly its share of
                // the PEs; fold it into an effective rate derating.
                let backlog = (s.load.running + s.load.queued) as f64 / s.load.pes.max(1) as f64;
                let t_comp = call.flops / (s.linpack_mflops * 1e6) * (1.0 + backlog);
                t_comm + t_comp
            }),
        }
    }

    /// All policies, for ablation sweeps.
    pub fn all() -> [Balancing; 4] {
        [
            Balancing::RoundRobin,
            Balancing::LoadBased,
            Balancing::BandwidthAware,
            Balancing::MinCompletion,
        ]
    }

    /// Table name.
    pub fn name(&self) -> &'static str {
        match self {
            Balancing::RoundRobin => "round-robin",
            Balancing::LoadBased => "load-based (NetSolve-style)",
            Balancing::BandwidthAware => "bandwidth-aware",
            Balancing::MinCompletion => "min-completion",
        }
    }
}

fn argmin(servers: &[ServerState], key: impl Fn(&ServerState) -> f64) -> usize {
    servers
        .iter()
        .enumerate()
        .min_by(|(_, a), (_, b)| key(a).total_cmp(&key(b)))
        .map(|(i, _)| i)
        .expect("non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state(running: u32, queued: u32, pes: u32, bw: f64, mflops: f64) -> ServerState {
        ServerState {
            load: LoadReport {
                pes,
                running,
                queued,
                load_average: (running + queued) as f64,
                cpu_utilization: 0.0,
            },
            bandwidth_bytes_per_sec: bw,
            linpack_mflops: mflops,
        }
    }

    const CALL: CallEstimate = CallEstimate {
        bytes: 8e6,
        flops: 1e9,
    };

    #[test]
    fn round_robin_rotates() {
        let servers = vec![state(0, 0, 4, 1e6, 100.0); 3];
        let mut rr = 0;
        let picks: Vec<usize> = (0..6)
            .map(|_| Balancing::RoundRobin.choose(&servers, CALL, &mut rr))
            .collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn load_based_picks_idle_server() {
        let servers = vec![state(4, 8, 4, 1e6, 100.0), state(1, 0, 4, 1e6, 100.0)];
        let mut rr = 0;
        assert_eq!(Balancing::LoadBased.choose(&servers, CALL, &mut rr), 1);
    }

    #[test]
    fn load_based_normalizes_by_pes() {
        // 4 runnable on 16 PEs is lighter than 2 runnable on 1 PE.
        let servers = vec![state(2, 0, 1, 1e6, 100.0), state(4, 0, 16, 1e6, 100.0)];
        let mut rr = 0;
        assert_eq!(Balancing::LoadBased.choose(&servers, CALL, &mut rr), 1);
    }

    #[test]
    fn bandwidth_aware_ignores_load() {
        // The paper's WAN lesson: the loaded-but-close server wins over the
        // idle-but-far one for communication-bound work.
        let servers = vec![
            state(0, 0, 4, 0.17e6, 600.0), // idle, thin WAN pipe
            state(3, 2, 4, 2.5e6, 600.0),  // busy, fat LAN pipe
        ];
        let mut rr = 0;
        assert_eq!(Balancing::BandwidthAware.choose(&servers, CALL, &mut rr), 1);
    }

    #[test]
    fn min_completion_trades_comm_and_comp() {
        // Communication-heavy call: bandwidth dominates.
        let comm_heavy = CallEstimate {
            bytes: 20e6,
            flops: 1e8,
        };
        let servers = vec![
            state(0, 0, 4, 0.17e6, 600.0), // super fast compute, slow pipe
            state(0, 0, 1, 2.5e6, 35.0),   // modest compute, fast pipe
        ];
        let mut rr = 0;
        assert_eq!(
            Balancing::MinCompletion.choose(&servers, comm_heavy, &mut rr),
            1
        );

        // Compute-heavy call (EP-like): the supercomputer wins despite the pipe.
        let comp_heavy = CallEstimate {
            bytes: 100.0,
            flops: 5e11,
        };
        assert_eq!(
            Balancing::MinCompletion.choose(&servers, comp_heavy, &mut rr),
            0
        );
    }

    #[test]
    fn min_completion_avoids_backlogged_server() {
        let servers = vec![state(4, 12, 4, 2.5e6, 600.0), state(0, 0, 4, 2.5e6, 600.0)];
        let mut rr = 0;
        assert_eq!(Balancing::MinCompletion.choose(&servers, CALL, &mut rr), 1);
    }

    #[test]
    #[should_panic(expected = "no servers")]
    fn empty_directory_panics() {
        let mut rr = 0;
        Balancing::RoundRobin.choose(&[], CALL, &mut rr);
    }
}
