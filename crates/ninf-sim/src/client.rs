//! The simulated client: the §4.1 model program.
//!
//! "we employ a routine which calls either the Linpack (sgetrf and sgetrs) or
//! the EP routine repeatedly. We assume that each client performs a Ninf_call
//! on the interval of s seconds with probability p" — with `s = 3`,
//! `p = 1/2` in the paper's runs. A client is synchronous: while a call is in
//! flight, decision epochs are skipped.

use ninf_netsim::SplitMix64;

/// One simulated client process.
#[derive(Debug)]
pub struct ClientProc {
    /// Index in the scenario's client list.
    pub index: usize,
    /// Whether a call is currently in flight.
    pub busy: bool,
    /// Private random stream (coin flips for the decision process).
    pub rng: SplitMix64,
}

impl ClientProc {
    /// New idle client.
    pub fn new(index: usize, rng: SplitMix64) -> Self {
        Self {
            index,
            busy: false,
            rng,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clients_start_idle() {
        let c = ClientProc::new(3, SplitMix64::new(1));
        assert_eq!(c.index, 3);
        assert!(!c.busy);
    }

    #[test]
    fn client_rngs_are_independent() {
        let mut root = SplitMix64::new(9);
        let mut a = ClientProc::new(0, root.fork());
        let mut b = ClientProc::new(1, root.fork());
        assert_ne!(a.rng.next_u64(), b.rng.next_u64());
    }
}
