//! Experiment drivers: one per table/figure of the SC'97 paper, plus the §5
//! ablations. Each returns a rendered text block and a JSON value for
//! EXPERIMENTS.md generation.

use ninf_machine::{
    alpha, alpha_cluster_node, j90, sparc_smp, supersparc, ultrasparc, MachineSpec,
};
use ninf_metaserver::{Balancing, CallEstimate, ServerState};
use ninf_protocol::LoadReport;
use ninf_server::{ExecMode, JobInfo, SchedPolicy};
use serde_json::{json, Value as Json};

use crate::metrics::CellResult;
use crate::report::{render_series, render_table};
use crate::scenario::Scenario;
use crate::workload::Workload;
use crate::world::World;

/// One experiment's output.
#[derive(Debug, Clone)]
pub struct ExperimentOutput {
    /// Stable id, e.g. "fig3", "table4", "ablation-sjf".
    pub id: &'static str,
    /// Human title.
    pub title: &'static str,
    /// Rendered text (tables / series).
    pub text: String,
    /// Structured results.
    pub json: Json,
}

/// All experiment ids, in paper order.
pub fn all_ids() -> Vec<&'static str> {
    vec![
        "fig3",
        "fig4",
        "fig5",
        "table3",
        "table4",
        "fig7",
        "table5",
        "table6",
        "table7",
        "fig8",
        "fig10",
        "table8",
        "fig11",
        "ablation-sjf",
        "ablation-fpfs",
        "ablation-sched",
        "ablation-sched-sim",
        "ablation-twophase",
        "ablation-smp-threads",
        "dos-app",
        "argcache-wan",
        "sweep-lan",
    ]
}

/// Run one experiment by id.
pub fn run(id: &str, seed: u64) -> Option<ExperimentOutput> {
    Some(match id {
        "fig3" => fig3(seed),
        "fig4" => fig4(seed),
        "fig5" => fig5(),
        "table3" => lan_table(
            "table3",
            "Table 3: 1-PE multi-client LAN Linpack (J90)",
            ExecMode::TaskParallel,
            seed,
        ),
        "table4" => lan_table(
            "table4",
            "Table 4: 4-PE multi-client LAN Linpack (J90)",
            ExecMode::DataParallel,
            seed,
        ),
        "fig7" => fig7(seed),
        "table5" => table5(seed),
        "table6" => wan_table(
            "table6",
            "Table 6: single-site WAN 1-PE Linpack",
            ExecMode::TaskParallel,
            seed,
        ),
        "table7" => wan_table(
            "table7",
            "Table 7: single-site WAN 4-PE Linpack",
            ExecMode::DataParallel,
            seed,
        ),
        "fig8" => fig8(seed),
        "fig10" => fig10(seed),
        "table8" => table8(seed),
        "fig11" => fig11(),
        "ablation-sjf" => ablation_sjf(seed),
        "ablation-fpfs" => ablation_fpfs(seed),
        "ablation-sched" => ablation_sched(),
        "ablation-sched-sim" => ablation_sched_sim(seed),
        "ablation-twophase" => ablation_twophase(seed),
        "ablation-smp-threads" => ablation_smp_threads(seed),
        "dos-app" => dos_app(seed),
        "argcache-wan" => argcache_wan(seed),
        "sweep-lan" => sweep_lan(seed),
        _ => return None,
    })
}

/// Per-pair per-stream TCP ceilings, calibrated to Fig 5 / Table 2.
fn stream_cap(client: &str, server: &str) -> f64 {
    match (client, server) {
        (_, s) if s.contains("J90") => 2.6e6,
        ("SuperSPARC", _) => 3.6e6,
        ("UltraSPARC", s) if s.contains("Ultra") => 6.0e6,
        ("UltraSPARC", _) => 6.2e6,
        ("Alpha", s) if s.contains("Alpha") => 6.0e6,
        _ => 3.6e6,
    }
}

/// One single-client Ninf_call curve: client (stream cap) → server, sweep n.
fn ninf_curve(
    client_name: &str,
    server: MachineSpec,
    mode: ExecMode,
    ns: &[u64],
    seed: u64,
) -> Vec<(f64, f64)> {
    ns.iter()
        .map(|&n| {
            let cap = stream_cap(client_name, &server.name);
            let mut s = Scenario::lan_custom(
                server.clone(),
                1,
                cap,
                Workload::Linpack { n },
                mode,
                SchedPolicy::Fcfs,
                seed,
            )
            .saturated();
            // Long enough for ≥ 8 calls at the largest n.
            s.duration = 40.0 + 20.0 * (n as f64 / 400.0).powi(2);
            s.warmup = s.duration * 0.15;
            let cell = World::new(s).run();
            (n as f64, cell.perf.mean)
        })
        .collect()
}

const FIG3_NS: [u64; 9] = [100, 200, 300, 400, 600, 800, 1000, 1200, 1600];

fn fig3(seed: u64) -> ExperimentOutput {
    let ns = FIG3_NS;
    let mut text = String::new();
    let mut data = serde_json::Map::new();

    for client in [supersparc(), ultrasparc()] {
        // Local line: the client machine's own (flat) Linpack rate.
        let local: Vec<(f64, f64)> = ns
            .iter()
            .map(|&n| (n as f64, client.pe_linpack.mflops(n)))
            .collect();
        text += &render_series(&format!("{} Local", client.name), ("n", "Mflops"), &local);
        data.insert(format!("{} local", client.name), points_json(&local));

        for (server, mode) in [
            (ultrasparc(), ExecMode::TaskParallel),
            (alpha(), ExecMode::TaskParallel),
            (j90(), ExecMode::DataParallel),
        ] {
            if server.name == client.name {
                continue; // Table 1: same-machine pairs not benchmarked
            }
            let curve = ninf_curve(&client.name, server.clone(), mode, &ns, seed);
            text += &render_series(
                &format!("{} -> {} Ninf_call", client.name, server.name),
                ("n", "Mflops"),
                &curve,
            );
            data.insert(
                format!("{} -> {}", client.name, server.name),
                points_json(&curve),
            );
        }
    }
    ExperimentOutput {
        id: "fig3",
        title: "Fig 3: Ninf LAN Linpack, single SPARC clients vs Local",
        text,
        json: Json::Object(data),
    }
}

fn fig4(seed: u64) -> ExperimentOutput {
    let ns = FIG3_NS;
    let opt: Vec<(f64, f64)> = ns
        .iter()
        .map(|&n| (n as f64, alpha().pe_linpack.mflops(n)))
        .collect();
    let std: Vec<(f64, f64)> = ns
        .iter()
        .map(|&n| {
            (
                n as f64,
                ninf_machine::catalog::alpha_standard_linpack().mflops(n),
            )
        })
        .collect();
    let ninf = ninf_curve("Alpha", j90(), ExecMode::DataParallel, &ns, seed);

    let crossover_opt = crossover(&ninf, &opt);
    let crossover_std = crossover(&ninf, &std);

    let mut text = String::new();
    text += &render_series("Alpha Local (optimized glub4)", ("n", "Mflops"), &opt);
    text += &render_series("Alpha Local (standard, unblocked)", ("n", "Mflops"), &std);
    text += &render_series("Alpha -> J90 Ninf_call", ("n", "Mflops"), &ninf);
    text += &format!(
        "crossover vs optimized local: n ≈ {crossover_opt:?} (paper: 800–1000)\n\
         crossover vs standard  local: n ≈ {crossover_std:?} (paper: 400–600)\n"
    );
    ExperimentOutput {
        id: "fig4",
        title: "Fig 4: Ninf LAN Linpack for single Alpha client",
        text,
        json: json!({
            "alpha_local_optimized": points_json(&opt),
            "alpha_local_standard": points_json(&std),
            "alpha_to_j90": points_json(&ninf),
            "crossover_vs_optimized": crossover_opt,
            "crossover_vs_standard": crossover_std,
        }),
    }
}

/// First x where curve `a` exceeds curve `b`.
fn crossover(a: &[(f64, f64)], b: &[(f64, f64)]) -> Option<f64> {
    a.iter()
        .zip(b)
        .find(|((_, ya), (_, yb))| ya > yb)
        .map(|((x, _), _)| *x)
}

fn fig5() -> ExperimentOutput {
    // Ninf_call throughput vs payload: the pipelined transfer saturates at
    // the per-stream ceiling; small messages are latency-bound. FTP baseline
    // = the raw ceiling (Table 2).
    let pairs: [(&str, &str, f64, f64); 5] = [
        ("SuperSPARC", "J90", 2.6e6, 2.8e6),
        ("UltraSPARC", "J90", 2.6e6, 2.7e6),
        ("Alpha", "J90", 2.6e6, 2.9e6),
        ("SuperSPARC", "Alpha", 3.6e6, 4.0e6),
        ("UltraSPARC", "Alpha", 6.2e6, 7.4e6),
    ];
    let sizes: Vec<f64> = (0..12).map(|i| 8e3 * 2f64.powi(i)).collect(); // 8 KB .. 16 MB
    let mut text = String::new();
    let mut data = serde_json::Map::new();
    for (client, server, ninf_cap, ftp_cap) in pairs {
        let overhead = 0.008; // connection + header round trips
        let curve: Vec<(f64, f64)> = sizes
            .iter()
            .map(|&b| (b, b / (overhead + b / ninf_cap) / 1e6))
            .collect();
        text += &render_series(
            &format!(
                "{client} -> {server} Ninf_call throughput (FTP {:.1} MB/s)",
                ftp_cap / 1e6
            ),
            ("bytes", "MB/s"),
            &curve,
        );
        data.insert(
            format!("{client} -> {server}"),
            json!({ "ninf": points_json(&curve), "ftp_mbs": ftp_cap / 1e6 }),
        );
    }
    ExperimentOutput {
        id: "fig5",
        title: "Fig 5 + Table 2: Ninf_call communication throughput vs FTP",
        text,
        json: Json::Object(data),
    }
}

const MULTI_NS: [u64; 3] = [600, 1000, 1400];
const MULTI_CS: [usize; 5] = [1, 2, 4, 8, 16];

fn lan_cells(mode: ExecMode, seed: u64) -> Vec<CellResult> {
    let mut cells = Vec::new();
    for &n in &MULTI_NS {
        for &c in &MULTI_CS {
            let mut s = Scenario::lan(
                j90(),
                c,
                Workload::Linpack { n },
                mode,
                SchedPolicy::Fcfs,
                seed ^ (n * 31 + c as u64),
            );
            s.duration = 700.0;
            s.warmup = 100.0;
            cells.push(World::new(s).run());
        }
    }
    cells
}

fn lan_table(id: &'static str, title: &'static str, mode: ExecMode, seed: u64) -> ExperimentOutput {
    let cells = lan_cells(mode, seed);
    ExperimentOutput {
        id,
        title,
        text: render_table(title, &cells),
        json: cells_json(&cells),
    }
}

fn fig7(seed: u64) -> ExperimentOutput {
    // The (n, c) -> mean Mflops surface for both modes.
    let mut text = String::new();
    let mut data = serde_json::Map::new();
    for (label, mode) in [
        ("1-PE", ExecMode::TaskParallel),
        ("4-PE", ExecMode::DataParallel),
    ] {
        let cells = lan_cells(mode, seed);
        let pts: Vec<Json> = cells
            .iter()
            .map(|c| json!({ "workload": c.workload, "c": c.clients, "mflops": c.perf.mean }))
            .collect();
        text += &format!("## Fig 7 surface, {label}\n");
        for c in &cells {
            text += &format!(
                "{:<16} c={:<3} -> {:.2} Mflops\n",
                c.workload, c.clients, c.perf.mean
            );
        }
        data.insert(label.to_string(), Json::Array(pts));
    }
    ExperimentOutput {
        id: "fig7",
        title: "Fig 7: average multi-client LAN Ninf_call performance surface",
        text,
        json: Json::Object(data),
    }
}

fn table5(seed: u64) -> ExperimentOutput {
    let mut cells = Vec::new();
    for &c in &[4usize, 8, 16] {
        let mut s = Scenario::lan_custom(
            sparc_smp(),
            c,
            1.1e6,
            Workload::Linpack { n: 600 },
            ExecMode::TaskParallel,
            SchedPolicy::Fcfs,
            seed ^ c as u64,
        );
        s.duration = 900.0;
        s.warmup = 120.0;
        cells.push(World::new(s).run());
    }
    let title = "Table 5: SuperSPARC-SMP multi-client LAN Linpack (n=600)";
    ExperimentOutput {
        id: "table5",
        title,
        text: render_table(title, &cells),
        json: cells_json(&cells),
    }
}

fn wan_cells(mode: ExecMode, seed: u64) -> Vec<CellResult> {
    let mut cells = Vec::new();
    for &n in &MULTI_NS {
        for &c in &MULTI_CS {
            let mut s = Scenario::single_site_wan(
                j90(),
                c,
                Workload::Linpack { n },
                mode,
                SchedPolicy::Fcfs,
                seed ^ (n * 17 + c as u64),
            );
            s.duration = 2500.0;
            s.warmup = 200.0;
            cells.push(World::new(s).run());
        }
    }
    cells
}

fn wan_table(id: &'static str, title: &'static str, mode: ExecMode, seed: u64) -> ExperimentOutput {
    let cells = wan_cells(mode, seed);
    ExperimentOutput {
        id,
        title,
        text: render_table(title, &cells),
        json: cells_json(&cells),
    }
}

fn fig8(seed: u64) -> ExperimentOutput {
    let mut text = String::new();
    let mut data = serde_json::Map::new();
    for (label, mode) in [
        ("1-PE", ExecMode::TaskParallel),
        ("4-PE", ExecMode::DataParallel),
    ] {
        let cells = wan_cells(mode, seed);
        text += &format!("## Fig 8 surface, {label}\n");
        for c in &cells {
            text += &format!(
                "{:<16} c={:<3} -> {:.2} Mflops\n",
                c.workload, c.clients, c.perf.mean
            );
        }
        let pts: Vec<Json> = cells
            .iter()
            .map(|c| json!({ "workload": c.workload, "c": c.clients, "mflops": c.perf.mean }))
            .collect();
        data.insert(label.to_string(), Json::Array(pts));
    }
    ExperimentOutput {
        id: "fig8",
        title: "Fig 8: average WAN Linpack Ninf_call performance surface",
        text,
        json: Json::Object(data),
    }
}

fn fig10(seed: u64) -> ExperimentOutput {
    let mut text = String::new();
    let mut rows = Vec::new();
    for &n in &MULTI_NS {
        for &c_per_site in &[1usize, 4] {
            let mut s = Scenario::multi_site_wan(
                j90(),
                4,
                c_per_site,
                Workload::Linpack { n },
                ExecMode::DataParallel,
                SchedPolicy::Fcfs,
                seed ^ (n + c_per_site as u64),
            );
            s.duration = 2500.0;
            s.warmup = 200.0;
            let multi = World::new(s).run();

            // Baseline: the same total clients all at Ocha-U.
            let mut sb = Scenario::single_site_wan(
                j90(),
                4 * c_per_site,
                Workload::Linpack { n },
                ExecMode::DataParallel,
                SchedPolicy::Fcfs,
                seed ^ (n + 77 + c_per_site as u64),
            );
            sb.duration = 2500.0;
            sb.warmup = 200.0;
            let single = World::new(sb).run();

            let agg_multi = multi.throughput.mean * multi.clients as f64;
            let agg_single = single.throughput.mean * single.clients as f64;
            text += &format!(
                "n={n:<5} {c_per_site}x4 sites: perf {:.2} Mflops, agg thpt {:.3} MB/s, CPU {:.1}% | same {} clients single-site: perf {:.2}, agg {:.3}, CPU {:.1}%\n",
                multi.perf.mean,
                agg_multi,
                multi.cpu_utilization,
                single.clients,
                single.perf.mean,
                agg_single,
                single.cpu_utilization,
            );
            rows.push(json!({
                "n": n, "clients_per_site": c_per_site,
                "multi_perf": multi.perf.mean, "multi_agg_mbs": agg_multi,
                "multi_cpu": multi.cpu_utilization,
                "single_perf": single.perf.mean, "single_agg_mbs": agg_single,
                "single_cpu": single.cpu_utilization,
            }));
        }
    }
    ExperimentOutput {
        id: "fig10",
        title: "Fig 10: multi-site WAN Linpack — aggregate bandwidth across sites",
        text,
        json: Json::Array(rows),
    }
}

fn table8(seed: u64) -> ExperimentOutput {
    let mut cells = Vec::new();
    for (env, wan) in [("LAN", false), ("WAN", true)] {
        for &c in &MULTI_CS {
            let mut s = if wan {
                Scenario::single_site_wan(
                    j90(),
                    c,
                    Workload::Ep { m: 24 },
                    ExecMode::TaskParallel,
                    SchedPolicy::Fcfs,
                    seed ^ c as u64,
                )
            } else {
                Scenario::lan(
                    j90(),
                    c,
                    Workload::Ep { m: 24 },
                    ExecMode::TaskParallel,
                    SchedPolicy::Fcfs,
                    seed ^ (c as u64 + 100),
                )
            };
            // EP calls take ~200 s each; run long enough for ≥ 10 per cell.
            s.duration = 5000.0;
            s.warmup = 250.0;
            let mut cell = World::new(s).run();
            cell.workload = format!("{env} EP 2^24");
            cells.push(cell);
        }
    }
    let title = "Table 8: multi-client EP, LAN and single-site WAN (J90, task-parallel)";
    ExperimentOutput {
        id: "table8",
        title,
        text: render_table(title, &cells),
        json: cells_json(&cells),
    }
}

/// The Fig 11 metaserver model: the Java prototype spends
/// `serial_dispatch` CPU per Ninf_call scheduling/distributing (serialized
/// in the metaserver) plus a concurrent per-wave overhead.
pub struct MetaserverModel {
    /// Serialized scheduling cost per dispatched call (seconds).
    pub serial_dispatch: f64,
    /// Overlapped per-wave dispatch latency (seconds).
    pub concurrent_overhead: f64,
}

impl Default for MetaserverModel {
    fn default() -> Self {
        // Calibrated so the 2^24 "sample" class flattens/slows beyond p ≈ 8
        // while class B stays near-linear to 32 (Fig 11).
        Self {
            serial_dispatch: 0.35,
            concurrent_overhead: 1.5,
        }
    }
}

impl MetaserverModel {
    /// Wall time of a `p`-way task-parallel EP transaction of `2^m` trials.
    pub fn transaction_seconds(&self, m: u32, p: usize, node: &MachineSpec) -> f64 {
        let work = Workload::Ep { m };
        let per_node = work.work_units() / p as f64;
        let t_comp = per_node / (node.ep_mops_per_pe * 1e6);
        self.serial_dispatch * p as f64 + self.concurrent_overhead + t_comp
    }
}

fn fig11() -> ExperimentOutput {
    let node = alpha_cluster_node();
    let model = MetaserverModel::default();
    let ps = [1usize, 2, 4, 8, 16, 32];
    let classes: [(&str, u32); 3] = [
        ("sample 2^24", 24),
        ("class A 2^28", 28),
        ("class B 2^30", 30),
    ];
    let mut text = String::new();
    let mut data = serde_json::Map::new();
    for (label, m) in classes {
        let t1 = model.transaction_seconds(m, 1, &node);
        let pts: Vec<(f64, f64)> = ps
            .iter()
            .map(|&p| (p as f64, t1 / model.transaction_seconds(m, p, &node)))
            .collect();
        text += &render_series(&format!("EP {label} speedup"), ("servers", "speedup"), &pts);
        data.insert(label.to_string(), points_json(&pts));
    }
    ExperimentOutput {
        id: "fig11",
        title: "Fig 11: EP metaserver task-parallel execution on the Alpha cluster",
        text,
        json: Json::Object(data),
    }
}

// ---------- ablations (§5) ----------

/// Simple queue simulation driving the *live* policy code: jobs (arrival,
/// cost, pes) admitted by `policy` onto `pes` processors.
pub fn policy_queue_sim(jobs: &[(f64, f64, usize)], policy: SchedPolicy, pes: usize) -> (f64, f64) {
    #[derive(Clone, Copy)]
    struct Running {
        end: f64,
        pes: usize,
    }
    let mut queue: Vec<(usize, JobInfo)> = Vec::new(); // (job idx, info)
    let mut running: Vec<Running> = Vec::new();
    let mut waits = vec![0.0f64; jobs.len()];
    let mut next_arrival = 0usize;
    let mut free = pes;
    let mut now = 0.0f64;
    let mut makespan = 0.0f64;
    let mut done = 0usize;

    while done < jobs.len() {
        // Admit whatever the policy allows right now.
        loop {
            let infos: Vec<JobInfo> = queue.iter().map(|&(_, j)| j).collect();
            match policy.pick(&infos, free) {
                Some(idx) => {
                    let (job_idx, info) = queue.remove(idx);
                    waits[job_idx] = now - jobs[job_idx].0;
                    free -= info.pes_required;
                    running.push(Running {
                        end: now + jobs[job_idx].1,
                        pes: info.pes_required,
                    });
                }
                None => break,
            }
        }
        // Advance to the next arrival or completion.
        let t_arr = jobs.get(next_arrival).map(|j| j.0);
        let t_done = running.iter().map(|r| r.end).fold(f64::INFINITY, f64::min);
        match (t_arr, t_done.is_finite()) {
            (Some(a), true) if a <= t_done => now = a,
            (Some(a), false) => now = a,
            (_, true) => now = t_done,
            (None, false) => break,
        }
        if t_arr == Some(now) {
            let (arr, cost, p) = jobs[next_arrival];
            debug_assert_eq!(arr, now);
            queue.push((
                next_arrival,
                JobInfo {
                    arrival_seq: next_arrival as u64,
                    estimated_cost: cost,
                    pes_required: p,
                },
            ));
            next_arrival += 1;
        }
        let before = running.len();
        running.retain(|r| r.end > now + 1e-12);
        let finished = before - running.len();
        if finished > 0 {
            free += pes - running.iter().map(|r| r.pes).sum::<usize>() - free;
            done += finished;
            makespan = makespan.max(now);
        }
    }
    let mean_wait = waits.iter().sum::<f64>() / jobs.len() as f64;
    (mean_wait, makespan)
}

fn ablation_sjf(seed: u64) -> ExperimentOutput {
    // Mixed small/large Linpack jobs on the 4-PE gate: SJF should cut mean
    // wait vs FCFS (§5.2).
    let mut rng = ninf_netsim::SplitMix64::new(seed);
    let jobs: Vec<(f64, f64, usize)> = (0..200)
        .map(|i| {
            let arrival = i as f64 * 0.8;
            let cost = if rng.bernoulli(0.25) { 12.0 } else { 0.6 };
            (arrival, cost, 4)
        })
        .collect();
    let (fcfs_wait, fcfs_make) = policy_queue_sim(&jobs, SchedPolicy::Fcfs, 4);
    let (sjf_wait, sjf_make) = policy_queue_sim(&jobs, SchedPolicy::Sjf, 4);
    let text = format!(
        "mixed workload (25% long jobs), 4-PE data-parallel gate\n\
         FCFS: mean wait {fcfs_wait:.2}s, makespan {fcfs_make:.1}s\n\
         SJF : mean wait {sjf_wait:.2}s, makespan {sjf_make:.1}s\n\
         SJF/FCFS mean-wait ratio: {:.2}\n",
        sjf_wait / fcfs_wait
    );
    ExperimentOutput {
        id: "ablation-sjf",
        title: "Ablation A1 (§5.2): FCFS vs SJF server job handling",
        text,
        json: json!({
            "fcfs_mean_wait": fcfs_wait, "sjf_mean_wait": sjf_wait,
            "fcfs_makespan": fcfs_make, "sjf_makespan": sjf_make,
        }),
    }
}

fn ablation_fpfs(seed: u64) -> ExperimentOutput {
    // Mixed-width jobs (1, 2, 4 PEs): FCFS head-of-line blocking idles PEs;
    // FPFS/FPMPFS backfill (§5.3).
    let mut rng = ninf_netsim::SplitMix64::new(seed);
    let jobs: Vec<(f64, f64, usize)> = (0..300)
        .map(|i| {
            let arrival = i as f64 * 0.5;
            let pes = [1usize, 1, 2, 4][rng.below(4) as usize];
            let cost = 1.0 + rng.next_f64() * 4.0;
            (arrival, cost, pes)
        })
        .collect();
    let mut text = String::from("mixed-width jobs (1/2/4 PEs) on 4 PEs\n");
    let mut data = serde_json::Map::new();
    for policy in [SchedPolicy::Fcfs, SchedPolicy::Fpfs, SchedPolicy::Fpmpfs] {
        let (wait, makespan) = policy_queue_sim(&jobs, policy, 4);
        text += &format!(
            "{:<7}: mean wait {wait:.2}s, makespan {makespan:.1}s\n",
            policy.name()
        );
        data.insert(
            policy.name().to_string(),
            json!({ "mean_wait": wait, "makespan": makespan }),
        );
    }
    ExperimentOutput {
        id: "ablation-fpfs",
        title: "Ablation A3 (§5.3): FCFS vs FPFS vs FPMPFS multi-PE scheduling",
        text,
        json: Json::Object(data),
    }
}

fn ablation_sched() -> ExperimentOutput {
    // Two servers: an idle one behind the 0.17 MB/s WAN link, a moderately
    // loaded one on the LAN. Communication-bound Linpack should go LAN
    // regardless of load — the paper's §4.2.2 conclusion.
    let wan_idle = ServerState {
        load: LoadReport {
            pes: 4,
            running: 0,
            queued: 0,
            load_average: 0.0,
            cpu_utilization: 5.0,
        },
        bandwidth_bytes_per_sec: 0.17e6,
        linpack_mflops: 556.0,
    };
    let lan_busy = ServerState {
        load: LoadReport {
            pes: 4,
            running: 3,
            queued: 1,
            load_average: 4.0,
            cpu_utilization: 90.0,
        },
        bandwidth_bytes_per_sec: 2.5e6,
        linpack_mflops: 556.0,
    };
    let servers = [wan_idle, lan_busy];
    let call = CallEstimate {
        bytes: 8.1e6,
        flops: 6.7e8,
    }; // linpack n=1000

    let completion = |s: &ServerState| {
        let backlog = (s.load.running + s.load.queued) as f64 / s.load.pes as f64;
        call.bytes / s.bandwidth_bytes_per_sec
            + call.flops / (s.linpack_mflops * 1e6) * (1.0 + backlog)
    };

    let mut text =
        String::from("servers: [0] idle behind WAN (0.17 MB/s), [1] busy on LAN (2.5 MB/s)\n");
    let mut data = serde_json::Map::new();
    for policy in [
        Balancing::LoadBased,
        Balancing::BandwidthAware,
        Balancing::MinCompletion,
    ] {
        let mut rr = 0;
        let pick = policy.choose(&servers, call, &mut rr);
        let t = completion(&servers[pick]);
        text += &format!(
            "{:<28} -> server {pick} ({}), predicted call time {t:.1}s\n",
            policy.name(),
            if pick == 0 { "WAN idle" } else { "LAN busy" },
        );
        data.insert(
            policy.name().to_string(),
            json!({ "picked": pick, "time": t }),
        );
    }
    text += "load-based (NetSolve-style) picks the idle WAN server and loses ~5x —\n\
             'task assignment should not be merely based on server load' (§4.2.3)\n";
    ExperimentOutput {
        id: "ablation-sched",
        title: "Ablation A2 (§4.2.2/§6): load-based vs bandwidth-aware metaserver placement",
        text,
        json: Json::Object(data),
    }
}

/// The A2 question answered by *full simulation* rather than a one-shot
/// prediction: clients at one site, a far J90 behind the 0.17 MB/s WAN link
/// and a near UltraSPARC on the LAN; each balancing policy runs the whole
/// multi-client workload and we compare realized client-observed Mflops.
fn ablation_sched_sim(seed: u64) -> ExperimentOutput {
    let mut text = String::from(
        "4 clients, linpack n=800; far J90 behind 0.17 MB/s WAN vs near UltraSPARC on LAN\n",
    );
    let mut data = serde_json::Map::new();
    for balancing in [
        Balancing::LoadBased,
        Balancing::BandwidthAware,
        Balancing::MinCompletion,
    ] {
        let mut s = crate::scenario::Scenario::two_server_lan_wan(
            j90(),
            ultrasparc(),
            4,
            Workload::Linpack { n: 800 },
            balancing,
            seed,
        );
        s.duration = 1500.0;
        s.warmup = 150.0;
        let cell = World::new(s).run();
        text += &format!(
            "{:<28}: {:>7.2} Mflops mean per client ({} calls)\n",
            balancing.name(),
            cell.perf.mean,
            cell.times
        );
        data.insert(
            balancing.name().to_string(),
            json!({ "mflops": cell.perf.mean, "calls": cell.times }),
        );
    }
    text += "the paper's conclusion, end to end: for communication-intensive tasks,\n\
             placement by achievable bandwidth beats placement by server load\n";
    ExperimentOutput {
        id: "ablation-sched-sim",
        title: "Ablation A2 (full simulation): balancing policies on a LAN/WAN fleet",
        text,
        json: Json::Object(data),
    }
}

fn ablation_twophase(seed: u64) -> ExperimentOutput {
    // §5.1: connected RPC holds a server connection slot through the whole
    // call; two-phase transfers release it during computation. With K slots
    // and c > K clients, two-phase multiplies admitted concurrency.
    let mut rng = ninf_netsim::SplitMix64::new(seed);
    let slots = 4usize;
    let clients = 16usize;
    let t_transfer = 3.0;
    let t_compute = 12.0;
    let horizon = 2000.0;

    let run = |two_phase: bool, rng: &mut ninf_netsim::SplitMix64| -> (f64, usize) {
        // Each client loops: acquire slot, hold (transfer [+ compute if
        // connected]), release, [compute offline], repeat. FIFO slot queue.
        let hold = if two_phase {
            t_transfer
        } else {
            t_transfer + t_compute
        };
        let offline = if two_phase { t_compute } else { 0.0 };
        let mut ready: Vec<f64> = (0..clients).map(|_| rng.next_f64()).collect();
        let mut slot_free: Vec<f64> = vec![0.0; slots];
        let mut completed = 0usize;
        let mut total_response = 0.0;
        loop {
            let (ci, &t_ready) = ready
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.total_cmp(b.1))
                .expect("clients");
            if t_ready > horizon {
                break;
            }
            let (si, &t_slot) = slot_free
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.total_cmp(b.1))
                .expect("slots");
            let start = t_ready.max(t_slot);
            let t_done = start + hold + offline;
            total_response += t_done - t_ready;
            slot_free[si] = start + hold;
            ready[ci] = t_done;
            completed += 1;
        }
        (total_response / completed as f64, completed)
    };

    let (one_resp, one_done) = run(false, &mut rng);
    let (two_resp, two_done) = run(true, &mut rng);
    let text = format!(
        "{clients} clients, {slots} connection slots, transfer {t_transfer}s, compute {t_compute}s\n\
         connected RPC : mean call time {one_resp:.1}s, {one_done} calls in {horizon}s\n\
         two-phase     : mean call time {two_resp:.1}s, {two_done} calls in {horizon}s\n\
         two-phase throughput gain: {:.2}x\n",
        two_done as f64 / one_done as f64
    );
    ExperimentOutput {
        id: "ablation-twophase",
        title: "Ablation A4 (§5.1): connected RPC vs two-phase transfer protocol",
        text,
        json: json!({
            "connected": { "mean_time": one_resp, "calls": one_done },
            "two_phase": { "mean_time": two_resp, "calls": two_done },
        }),
    }
}

fn ablation_smp_threads(seed: u64) -> ExperimentOutput {
    // §4.2.1: "highly-multithreaded versions exhibit notable slowdown as c
    // increases (e.g., when number of threads = 12)".
    let mut text = String::from("SPARC-SMP (16 PE), Linpack n=600, varying library thread width\n");
    let mut rows = Vec::new();
    for &threads in &[1.0f64, 4.0, 8.0, 12.0] {
        for &c in &[4usize, 16] {
            let mut s = Scenario::lan_custom(
                sparc_smp(),
                c,
                1.1e6,
                Workload::Linpack { n: 600 },
                ExecMode::TaskParallel,
                SchedPolicy::Fcfs,
                seed ^ (threads as u64 * 64 + c as u64),
            );
            s.threads_per_job = Some(threads);
            s.duration = 900.0;
            s.warmup = 120.0;
            let cell = World::new(s).run();
            text += &format!(
                "threads={threads:<4} c={c:<3}: {:.2} Mflops mean, load {:.1}\n",
                cell.perf.mean, cell.load_average
            );
            rows.push(json!({ "threads": threads, "c": c, "mflops": cell.perf.mean }));
        }
    }
    ExperimentOutput {
        id: "ablation-smp-threads",
        title: "Ablation A5 (§4.2.1): SMP library thread count vs number of clients",
        text,
        json: Json::Array(rows),
    }
}

/// §4.3.1's closing claim: "We also conducted benchmarks with DOS
/// (Density-Of-States) calculation, which is an EP-style practical
/// application in computational chemistry, and came up with similar
/// results." Run the DOS workload through the same LAN/WAN cells as EP and
/// compare.
fn dos_app(seed: u64) -> ExperimentOutput {
    let mut cells = Vec::new();
    let mut ratios = Vec::new();
    for (env, wan) in [("LAN", false), ("WAN", true)] {
        for &c in &[1usize, 4, 16] {
            let build = |w: Workload, salt: u64| {
                let mut s = if wan {
                    Scenario::single_site_wan(
                        j90(),
                        c,
                        w,
                        ExecMode::TaskParallel,
                        SchedPolicy::Fcfs,
                        seed ^ salt,
                    )
                } else {
                    Scenario::lan(
                        j90(),
                        c,
                        w,
                        ExecMode::TaskParallel,
                        SchedPolicy::Fcfs,
                        seed ^ salt,
                    )
                };
                s.duration = 4000.0;
                s.warmup = 250.0;
                World::new(s).run()
            };
            // DOS sized to the same per-call work as EP 2^24 (2^25 ops).
            let mut dos = build(Workload::Dos { m: 22, levels: 8 }, c as u64);
            let ep = build(Workload::Ep { m: 24 }, c as u64 + 50);
            ratios.push(dos.perf.mean / ep.perf.mean);
            dos.workload = format!("{env} {}", dos.workload);
            cells.push(dos);
        }
    }
    let mut text = render_table("DOS application (EP-style chemistry workload)", &cells);
    text += &format!(
        "DOS/EP client-observed performance ratios across cells: {:?}\n",
        ratios
            .iter()
            .map(|r| (r * 100.0).round() / 100.0)
            .collect::<Vec<_>>()
    );
    text += "'similar results' (4.3.1): the workload class, not the kernel, determines behaviour\n";
    ExperimentOutput {
        id: "dos-app",
        title: "DOS: the §4.3.1 practical EP-style application, LAN + WAN",
        text,
        json: json!({ "cells": cells_json(&cells), "dos_over_ep": ratios }),
    }
}

fn points_json(pts: &[(f64, f64)]) -> Json {
    Json::Array(pts.iter().map(|&(x, y)| json!([x, y])).collect())
}

/// The argument-cache WAN experiment: iterative N-body over the modeled
/// Ocha-U↔ETL link (0.17 MB/s nominal), where a cold call's ~512 KiB
/// particle arrays dominate the three-second round trip. `cold` models
/// `--no-arg-cache` — every iteration pays full freight — and `warm`
/// models the cache's steady state, the arrays riding as two 16-byte
/// digests. Same work units both ways, so the Mflops/calls-per-second gap
/// is purely the wire bytes the cache removed. Live counterpart:
/// `ninf-load --scenario wan-iterative [--no-arg-cache]`.
fn argcache_wan(seed: u64) -> ExperimentOutput {
    let mut cells = Vec::new();
    for cached in [false, true] {
        for &c in &[1usize, 2, 4] {
            let mut s = Scenario::single_site_wan(
                j90(),
                c,
                Workload::Nbody { n: 16384, cached },
                ExecMode::TaskParallel,
                SchedPolicy::Fcfs,
                seed ^ (u64::from(cached) * 31 + c as u64),
            );
            s.duration = 2500.0;
            s.warmup = 200.0;
            cells.push(World::new(s).run());
        }
    }
    let title = "Argument cache: iterative N-body n=16384 over the WAN, cold vs warm";
    ExperimentOutput {
        id: "argcache-wan",
        title,
        text: render_table(title, &cells),
        json: cells_json(&cells),
    }
}

/// Latency-elasticity threshold for the closed-loop sim ramp. The *rule*
/// is the live sweep's (saturation when relative latency growth per
/// relative offered-load growth crosses a threshold) but the constant
/// differs: an open-loop FIFO queue explodes past the knee (the live
/// default is 2.0), while the sim's timesharing gate stretches service
/// roughly linearly with clients — elasticity ≈ 0 below the knee, ≈ 1
/// above — so 0.5 splits the two regimes.
const SWEEP_KNEE_THRESHOLD: f64 = 0.5;

/// The sim half of the coordinated-sweep cross-check: ramp the client
/// count over the EP workload (the closed-loop analogue of ramping the
/// live open-loop rate) and locate the saturation knee with the same
/// latency-elasticity rule `ninf-load --sweep` applies to its live curve.
/// The rule is restated here — the sim cannot depend on the live load
/// generator — and `ninf-load --sweep --compare-sim` diffs the two knees.
fn sweep_lan(seed: u64) -> ExperimentOutput {
    let cs = [1usize, 2, 4, 8, 16, 32];
    // (c, throughput Hz, latency s, calls measured)
    let mut points: Vec<(usize, f64, f64, usize)> = Vec::new();
    for &c in &cs {
        let mut s = Scenario::lan(
            j90(),
            c,
            Workload::Ep { m: 18 },
            ExecMode::TaskParallel,
            SchedPolicy::Fcfs,
            seed ^ c as u64,
        );
        s.duration = 900.0;
        s.warmup = 90.0;
        let window = s.duration - s.warmup;
        let cell = World::new(s).run();
        // Client-observed call latency: admission (response) + queueing
        // (wait) + execution. The gate timeshares, so past the knee the
        // execution term stretches with the client count; per-call elapsed
        // is recoverable from the per-call Mops rate (2^(m+1) ops/call).
        let exec = if cell.perf.mean > 0.0 {
            2f64.powi(19) / 1e6 / cell.perf.mean
        } else {
            0.0
        };
        let latency = cell.response.mean + cell.wait.mean + exec;
        points.push((c, cell.times as f64 / window, latency, cell.times));
    }
    let mut knee = points.len() - 1;
    let mut saturated = false;
    for k in 1..points.len() {
        let (c0, _, l0, _) = points[k - 1];
        let (c1, _, l1, _) = points[k];
        if l0 > 0.0 {
            let dl = (l1 - l0) / l0;
            let dr = (c1 - c0) as f64 / c0 as f64;
            if dl / dr > SWEEP_KNEE_THRESHOLD {
                knee = k - 1;
                saturated = true;
                break;
            }
        }
    }
    let mut text = render_series(
        "Simulated saturation sweep: EP 2^18 on the J90, latency vs clients",
        ("clients", "latency[s]"),
        &points
            .iter()
            .map(|&(c, _, l, _)| (c as f64, l))
            .collect::<Vec<_>>(),
    );
    text += &render_series(
        "throughput vs clients",
        ("clients", "throughput[Hz]"),
        &points
            .iter()
            .map(|&(c, t, _, _)| (c as f64, t))
            .collect::<Vec<_>>(),
    );
    let (kc, kt, kl, _) = points[knee];
    text += &format!("knee: c={kc} ({kt:.3} Hz, {kl:.3} s mean latency), saturated={saturated}\n");
    ExperimentOutput {
        id: "sweep-lan",
        title: "Coordinated sweep cross-check: simulated EP client ramp + knee",
        text,
        json: json!({
            "workload": "ep m=18",
            "knee_threshold": SWEEP_KNEE_THRESHOLD,
            "points": points.iter().map(|&(c, t, l, times)| json!({
                "clients": c as u64,
                "throughput_hz": t,
                "latency_s": l,
                "calls": times as u64,
            })).collect::<Vec<Json>>(),
            "knee": {
                "clients": kc as u64,
                "throughput_hz": kt,
                "latency_s": kl,
                "saturated": saturated,
            },
        }),
    }
}

fn cells_json(cells: &[CellResult]) -> Json {
    Json::Array(
        cells
            .iter()
            .map(|c| serde_json::to_value(c).expect("serializable"))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_id_runs() {
        // Smoke-level: ids resolve; heavy experiments are validated in
        // integration tests and the repro binary.
        for id in all_ids() {
            assert!(matches!(id, _x), "id list is static");
        }
        assert!(run("nonexistent", 1).is_none());
    }

    #[test]
    fn fig11_shapes_match_paper() {
        let out = fig11();
        let sample = out.json["sample 2^24"].as_array().unwrap();
        let class_b = out.json["class B 2^30"].as_array().unwrap();
        // Sample class: far from linear at p=32.
        let s32 = sample.last().unwrap()[1].as_f64().unwrap();
        assert!(s32 < 8.0, "sample speedup at 32 = {s32}");
        // Class B: near-linear.
        let b32 = class_b.last().unwrap()[1].as_f64().unwrap();
        assert!(b32 > 20.0, "class B speedup at 32 = {b32}");
        // Sample class peaks before p=32 (the 'significant slowdown').
        let speeds: Vec<f64> = sample.iter().map(|p| p[1].as_f64().unwrap()).collect();
        let peak = speeds.iter().cloned().fold(0.0, f64::max);
        assert!(peak > s32, "sample should decline after its peak");
    }

    #[test]
    fn sjf_reduces_mean_wait() {
        let out = ablation_sjf(42);
        let fcfs = out.json["fcfs_mean_wait"].as_f64().unwrap();
        let sjf = out.json["sjf_mean_wait"].as_f64().unwrap();
        assert!(sjf < fcfs, "SJF {sjf} !< FCFS {fcfs}");
    }

    #[test]
    fn backfilling_beats_fcfs_on_mixed_widths() {
        let out = ablation_fpfs(42);
        let fcfs = out.json["FCFS"]["mean_wait"].as_f64().unwrap();
        let fpfs = out.json["FPFS"]["mean_wait"].as_f64().unwrap();
        assert!(fpfs <= fcfs, "FPFS {fpfs} !<= FCFS {fcfs}");
    }

    #[test]
    fn dos_tracks_ep() {
        let out = dos_app(3);
        let ratios = out.json["dos_over_ep"].as_array().unwrap();
        for r in ratios {
            let r = r.as_f64().unwrap();
            assert!((0.8..=1.25).contains(&r), "DOS/EP ratio {r} diverges");
        }
    }

    #[test]
    fn full_sim_bandwidth_aware_beats_load_based() {
        let out = ablation_sched_sim(5);
        let load = out.json["load-based (NetSolve-style)"]["mflops"]
            .as_f64()
            .unwrap();
        let bw = out.json["bandwidth-aware"]["mflops"].as_f64().unwrap();
        assert!(
            bw > 1.5 * load,
            "bandwidth-aware ({bw:.2}) should clearly beat load-based ({load:.2})"
        );
    }

    #[test]
    fn bandwidth_aware_picks_lan_server() {
        let out = ablation_sched();
        assert_eq!(out.json["load-based (NetSolve-style)"]["picked"], 0);
        assert_eq!(out.json["bandwidth-aware"]["picked"], 1);
        assert_eq!(out.json["min-completion"]["picked"], 1);
    }

    #[test]
    fn two_phase_improves_throughput_under_slot_pressure() {
        let out = ablation_twophase(42);
        let one = out.json["connected"]["calls"].as_u64().unwrap();
        let two = out.json["two_phase"]["calls"].as_u64().unwrap();
        assert!(two > one, "two-phase {two} !> connected {one}");
    }

    #[test]
    fn sweep_lan_finds_a_saturation_knee() {
        let out = sweep_lan(1997);
        let points = out.json["points"].as_array().unwrap();
        assert_eq!(points.len(), 6);
        // Latency at c=32 must dwarf latency at c=1 (the ramp saturates).
        let l1 = points[0]["latency_s"].as_f64().unwrap();
        let l32 = points[5]["latency_s"].as_f64().unwrap();
        assert!(l32 > 3.0 * l1, "no saturation: {l1} -> {l32}");
        let knee = &out.json["knee"];
        assert_eq!(knee["saturated"], true);
        let kc = knee["clients"].as_u64().unwrap();
        assert!((1..32).contains(&kc), "knee at boundary: c={kc}");
    }

    #[test]
    fn fig5_throughput_saturates_at_cap() {
        let out = fig5();
        let curve = out.json["UltraSPARC -> J90"]["ninf"].as_array().unwrap();
        let last = curve.last().unwrap()[1].as_f64().unwrap();
        assert!((last - 2.6).abs() < 0.2, "saturation at {last} MB/s");
        let first = curve.first().unwrap()[1].as_f64().unwrap();
        assert!(first < last / 2.0, "small messages must be latency-bound");
    }
}
