//! Whole-system Ninf simulation.
//!
//! This crate assembles the substrates into the "global computing simulator
//! for Ninf" the paper's Conclusion calls for: simulated clients issue
//! `Ninf_call`s through a modelled network ([`ninf_netsim`]) against modelled
//! servers ([`ninf_machine`]), reproducing the full call lifecycle of §4.1 —
//! `T_submit → T_enqueue (connection accepted) → T_dequeue (executable
//! forked) → argument transfer → execution → result transfer → T_complete`
//! — with the same scheduling-policy code the live server uses
//! ([`ninf_server::policy`]).
//!
//! Model structure (calibrations in `ninf-machine`, derivations in DESIGN.md):
//!
//! * **Network** — flow-level max-min sharing with per-stream TCP caps; WAN
//!   sites share thin access links (0.17 MB/s Ocha-U↔ETL, §4.1), multi-site
//!   clients ride distinct backbones (Fig 9).
//! * **Server CPU** — a fluid processor: running executables and active XDR
//!   (un)marshalling tasks water-fill the PEs. Marshalling demand follows
//!   transfer rate, so LAN throughput sags as computation saturates the CPU
//!   (Tables 3/4) while thin WAN pipes leave the server idle (Tables 6/7).
//! * **Execution modes** — task-parallel: one PE per executable, unbounded
//!   concurrency, OS timeshares (load average 16+ at c=16, §4.2.1);
//!   data-parallel: the optimized all-PE library serializes calls.
//! * **Clients** — the §4.1 model program: every `s` seconds, with
//!   probability `p`, issue a synchronous call (s=3, p=1/2).
//!
//! [`experiments`] drives one scenario per table/figure of the paper, plus
//! the §5 ablations; `ninf-bench`'s `repro` binary prints them.

pub mod client;
pub mod experiments;
pub mod metrics;
pub mod report;
pub mod scenario;
pub mod server;
pub mod workload;
pub mod world;

pub use metrics::{spans_from_metrics, CellResult, Summary};
pub use scenario::{ClientGroup, NetworkKind, Scenario};
pub use workload::Workload;
pub use world::World;
