//! Workloads: what one `Ninf_call` costs in bytes and work.

use ninf_machine::MachineSpec;

/// The two application cores of the evaluation (§3): communication-heavy
/// Linpack and communication-free EP.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Workload {
    /// Dense solve of order `n`: ships `8n² + 8n` bytes out, `12n + 4` back,
    /// computes `2/3·n³ + 2n²` flops.
    Linpack {
        /// Matrix order.
        n: u64,
    },
    /// NAS EP with `2^m` pair trials per call: O(1) communication,
    /// `2^{m+1}` "operations".
    Ep {
        /// Trial exponent.
        m: u32,
    },
    /// Density-of-states Monte-Carlo (§4.3.1's "EP-style practical
    /// application in computational chemistry"): `2^m` samples of `levels`
    /// uniform draws each, returning only a histogram.
    Dos {
        /// Sample exponent.
        m: u32,
        /// Uniform levels summed per sample.
        levels: u32,
    },
    /// Iterative N-body probe sweep (the argument-cache workload): `n`
    /// fixed source particles — masses `8n` + positions `24n` bytes —
    /// evaluated at 64 probe points for `n·64·22` flops and an O(1) reply.
    /// With `cached`, the particle arrays ride as content digests (the
    /// warm steady state of the live argument cache): only the scalars and
    /// two 16-byte digests ship.
    Nbody {
        /// Source particle count.
        n: u64,
        /// Warm steady state: arrays replaced by digests on the wire.
        cached: bool,
    },
}

impl Workload {
    /// Request payload bytes (client → server arrays).
    pub fn request_bytes(&self) -> f64 {
        match *self {
            // A (8n²) + b (8n); the formula total 8n²+20n of §3.1 splits as
            // request 8n²+8n, reply 12n (+ the 4-byte info/ipvt padding).
            Workload::Linpack { n } => (8 * n * n + 8 * n) as f64,
            Workload::Ep { .. } => 64.0,  // the call header + m
            Workload::Dos { .. } => 64.0, // header + m + bins
            // Cold: header + n + step + masses (8n) + pos (24n).
            // Warm: header + scalars + two Arg::Ref digests (16 B each).
            Workload::Nbody { n, cached } => {
                if cached {
                    112.0
                } else {
                    (32 * n + 72) as f64
                }
            }
        }
    }

    /// Reply payload bytes (server → client arrays).
    pub fn reply_bytes(&self) -> f64 {
        match *self {
            Workload::Linpack { n } => (12 * n) as f64,
            Workload::Ep { .. } => 96.0,    // sums[2] + counts[10]
            Workload::Dos { .. } => 288.0,  // a 32-bin histogram + header
            Workload::Nbody { .. } => 72.0, // diag[5] + header
        }
    }

    /// Work metric of one call: flops for Linpack, "ops" (`2^{m+1}`) for EP.
    pub fn work_units(&self) -> f64 {
        match *self {
            Workload::Linpack { n } => (2.0 * (n as f64).powi(3)) / 3.0 + 2.0 * (n as f64).powi(2),
            Workload::Ep { m } => 2f64.powi(m as i32 + 1),
            // Each sample draws `levels` uniforms: 2^m · levels "operations".
            Workload::Dos { m, levels } => 2f64.powi(m as i32) * levels as f64,
            // 64 probes × n sources × ~22 flops per softened interaction.
            Workload::Nbody { n, .. } => (n * 64) as f64 * 22.0,
        }
    }

    /// Pure execution seconds on `machine` when the call gets `pes` PEs at
    /// full speed.
    pub fn service_seconds(&self, machine: &MachineSpec, pes: usize) -> f64 {
        match *self {
            Workload::Linpack { n } => self.work_units() / (machine.linpack_mflops(n, pes) * 1e6),
            // EP is task-parallel across PEs within a call only if the
            // library shards it; the paper runs one batch per PE, so a call's
            // batch runs on however many PEs it was given, linearly.
            Workload::Ep { .. } | Workload::Dos { .. } => {
                self.work_units() / (machine.ep_mops_per_pe * 1e6 * pes as f64)
            }
            // Direct summation runs at dense-kernel rates; use the
            // machine's asymptotic Linpack rate as the flop clock.
            Workload::Nbody { n, .. } => self.work_units() / (machine.linpack_mflops(n, pes) * 1e6),
        }
    }

    /// Client-observed performance for a call that took `t_total` seconds:
    /// Mflops for Linpack (§3.1), Mops for EP (§4.3).
    pub fn performance(&self, t_total: f64) -> f64 {
        self.work_units() / (t_total * 1e6)
    }

    /// Table label.
    pub fn label(&self) -> String {
        match *self {
            Workload::Linpack { n } => format!("linpack n={n}"),
            Workload::Ep { m } => format!("EP 2^{m}"),
            Workload::Dos { m, levels } => format!("DOS 2^{m}x{levels}"),
            Workload::Nbody { n, cached } => {
                format!("nbody n={n} {}", if cached { "warm" } else { "cold" })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ninf_machine::j90;

    #[test]
    fn linpack_totals_match_paper_formula() {
        for n in [100u64, 600, 1000, 1400] {
            let w = Workload::Linpack { n };
            let total = w.request_bytes() + w.reply_bytes();
            assert_eq!(total, (8 * n * n + 20 * n) as f64);
            assert_eq!(
                w.work_units(),
                (2.0 * (n as f64).powi(3)) / 3.0 + 2.0 * (n as f64).powi(2)
            );
        }
    }

    #[test]
    fn ep_communication_is_constant() {
        let small = Workload::Ep { m: 10 };
        let big = Workload::Ep { m: 30 };
        assert_eq!(small.request_bytes(), big.request_bytes());
        assert_eq!(small.reply_bytes(), big.reply_bytes());
        assert!(big.work_units() > small.work_units() * 1e5);
    }

    #[test]
    fn ep_service_time_anchors_table8() {
        // One 2^24 batch on one J90 PE at 0.168 Mops: T = 2^25 / 0.168e6 ≈ 200 s.
        let t = Workload::Ep { m: 24 }.service_seconds(&j90(), 1);
        assert!((t - 199.7).abs() < 5.0, "t = {t}");
    }

    #[test]
    fn linpack_4pe_faster_than_1pe() {
        let w = Workload::Linpack { n: 1000 };
        let m = j90();
        assert!(w.service_seconds(&m, 4) < w.service_seconds(&m, 1));
    }

    #[test]
    fn dos_behaves_like_ep() {
        // Same communication profile (O(1)), compute scaling with samples.
        let d = Workload::Dos { m: 20, levels: 8 };
        assert!(d.request_bytes() < 1e3);
        assert_eq!(
            Workload::Dos { m: 21, levels: 8 }.work_units(),
            2.0 * d.work_units()
        );
        let m = j90();
        assert!(d.service_seconds(&m, 2) < d.service_seconds(&m, 1));
    }

    #[test]
    fn nbody_cache_collapses_request_bytes_only() {
        let cold = Workload::Nbody {
            n: 16384,
            cached: false,
        };
        let warm = Workload::Nbody {
            n: 16384,
            cached: true,
        };
        // The arrays (32n bytes) vanish from the wire; work is unchanged.
        assert_eq!(cold.request_bytes(), (32 * 16384 + 72) as f64);
        assert!(cold.request_bytes() / warm.request_bytes() > 1000.0);
        assert_eq!(cold.work_units(), warm.work_units());
        assert_eq!(cold.reply_bytes(), warm.reply_bytes());
        let m = j90();
        assert_eq!(cold.service_seconds(&m, 1), warm.service_seconds(&m, 1));
    }

    #[test]
    fn performance_inverts_time() {
        let w = Workload::Linpack { n: 600 };
        let p = w.performance(2.0);
        assert!((p - w.work_units() / 2e6).abs() < 1e-9);
    }
}
