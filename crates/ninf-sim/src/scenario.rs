//! Scenario builders: the paper's LAN, single-site WAN, and multi-site WAN
//! benchmarking environments (Figures 2 and 9).

use ninf_machine::MachineSpec;
use ninf_metaserver::Balancing;
use ninf_netsim::{NodeId, Topology};
use ninf_server::{ExecMode, SchedPolicy};

use crate::workload::Workload;

/// Built network plus the server's node.
#[derive(Debug, Clone)]
pub struct NetworkBuild {
    /// Routed topology.
    pub topo: Topology,
    /// Where the computational server sits.
    pub server_node: NodeId,
}

/// Which of the paper's environments a scenario models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetworkKind {
    /// Switched LAN (Figure 2).
    Lan,
    /// One remote site behind a thin shared link (Ocha-U ↔ ETL, §4.1).
    SingleSiteWan,
    /// Multiple sites on distinct backbones (Figure 9).
    MultiSiteWan,
}

/// Background cross-traffic on a WAN link: the 1997 Internet was shared,
/// which is why the paper's nominal 0.17 MB/s Ocha-U↔ETL link averaged
/// ~0.13 MB/s for a single stream. Bursts arrive as an on/off process and
/// consume up to `intensity` of the link while on.
#[derive(Debug, Clone, Copy)]
pub struct CrossTraffic {
    /// Fraction of the link a burst can consume (its flow-rate cap relative
    /// to the link capacity).
    pub intensity: f64,
    /// Mean burst duration in seconds (exponential).
    pub mean_on: f64,
    /// Mean gap between bursts in seconds (exponential).
    pub mean_off: f64,
}

impl CrossTraffic {
    /// The calibration used for the paper's WAN environment.
    pub fn internet_1997() -> CrossTraffic {
        CrossTraffic {
            intensity: 0.45,
            mean_on: 25.0,
            mean_off: 25.0,
        }
    }
}

/// One simulated client host.
#[derive(Debug, Clone, Copy)]
pub struct ClientGroup {
    /// The client's node in the topology.
    pub node: NodeId,
    /// Per-stream TCP ceiling for this client↔server pair (bytes/s) — the
    /// Fig 5 / Table 2 saturation levels.
    pub stream_cap: f64,
    /// One-way latency to the server (seconds).
    pub latency_to_server: f64,
}

/// An additional computational server in a multi-server scenario (the
/// metaserver-in-the-loop simulations).
#[derive(Debug, Clone)]
pub struct ExtraServer {
    /// Machine model.
    pub machine: MachineSpec,
    /// Execution mode on this server.
    pub mode: ExecMode,
    /// Its node in the topology.
    pub node: NodeId,
    /// Per-stream TCP ceiling between the clients and this server.
    pub stream_cap: f64,
    /// One-way client↔server latency (seconds).
    pub latency: f64,
    /// The bandwidth estimate the metaserver's directory holds for this
    /// server (what `Balancing::BandwidthAware` consults).
    pub bandwidth_estimate: f64,
}

/// A complete experiment cell configuration.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Scenario label for reports.
    pub name: String,
    /// Environment class.
    pub kind: NetworkKind,
    /// Server machine model.
    pub server: MachineSpec,
    /// Execution mode (1-PE vs 4-PE tables).
    pub mode: ExecMode,
    /// Gate policy (FCFS in the paper; ablations vary it).
    pub policy: SchedPolicy,
    /// What each call computes.
    pub workload: Workload,
    /// The client hosts.
    pub clients: Vec<ClientGroup>,
    /// Built network.
    pub network: NetworkBuild,
    /// Decision interval `s` (paper: 3 s).
    pub interval_s: f64,
    /// Decision probability `p` (paper: 1/2).
    pub prob_p: f64,
    /// Virtual seconds to simulate (measurement window ends here).
    pub duration: f64,
    /// Warm-up seconds excluded from measurement.
    pub warmup: f64,
    /// RNG seed (every result is a pure function of the scenario).
    pub seed: u64,
    /// Probability a connection hits a 5 s SYN-retransmit timeout (the
    /// sporadic ~5 s response maxima in every table).
    pub syn_retry_prob: f64,
    /// Per-job thread demand override (SMP multithreaded-library ablation);
    /// `None` uses the execution mode's width.
    pub threads_per_job: Option<f64>,
    /// Background traffic process on the WAN link, with the node pair whose
    /// route crosses that link.
    pub cross_traffic: Option<(CrossTraffic, NodeId, NodeId)>,
    /// Additional servers (server 0 is always [`Scenario::server`] at
    /// [`NetworkBuild::server_node`]).
    pub extra_servers: Vec<ExtraServer>,
    /// How calls pick a server when several exist; `None` (and any
    /// single-server scenario) always uses server 0. Reuses the *live*
    /// metaserver's policy code.
    pub balancing: Option<Balancing>,
}

/// LAN per-stream ceiling to the J90 (Fig 5: ~2.5 MB/s achieved).
pub const LAN_STREAM_CAP_J90: f64 = 2.6e6;
/// LAN client access capacity (switched 100 Mb Ethernet ballpark).
pub const LAN_ACCESS: f64 = 10e6;
/// Server LAN attachment (aggregate ceiling ≈ 15 MB/s, Tables 3/4).
pub const LAN_SERVER_ACCESS: f64 = 15e6;
/// Ocha-U ↔ ETL shared WAN link (§4.1: "approximately 0.17 MB/s").
pub const WAN_SITE_LINK: f64 = 0.17e6;
/// Shared convergence capacity at the server side of the multi-site WAN.
pub const WAN_BACKBONE: f64 = 0.55e6;

impl Scenario {
    /// The Figure 2 LAN: `c` clients on a switch in front of `server`.
    pub fn lan(
        server: MachineSpec,
        c: usize,
        workload: Workload,
        mode: ExecMode,
        policy: SchedPolicy,
        seed: u64,
    ) -> Scenario {
        Self::lan_custom(server, c, LAN_STREAM_CAP_J90, workload, mode, policy, seed)
    }

    /// LAN with an explicit per-stream ceiling (client/server pair specific,
    /// Table 2).
    pub fn lan_custom(
        server: MachineSpec,
        c: usize,
        stream_cap: f64,
        workload: Workload,
        mode: ExecMode,
        policy: SchedPolicy,
        seed: u64,
    ) -> Scenario {
        let mut topo = Topology::new();
        let latency = 0.0002; // 0.2 ms switched LAN
        let switch = topo.add_node("switch");
        let server_node = topo.add_node(&server.name);
        topo.add_duplex_link(switch, server_node, LAN_SERVER_ACCESS, latency / 2.0);
        let clients: Vec<ClientGroup> = (0..c)
            .map(|i| {
                let node = topo.add_node(format!("client{i}"));
                topo.add_duplex_link(node, switch, LAN_ACCESS, latency / 2.0);
                ClientGroup {
                    node,
                    stream_cap,
                    latency_to_server: latency,
                }
            })
            .collect();
        topo.compute_routes();
        Scenario {
            name: format!("LAN {} c={c}", workload.label()),
            kind: NetworkKind::Lan,
            server,
            mode,
            policy,
            workload,
            clients,
            network: NetworkBuild { topo, server_node },
            interval_s: 3.0,
            prob_p: 0.5,
            duration: 600.0,
            warmup: 60.0,
            seed,
            syn_retry_prob: 0.015,
            threads_per_job: None,
            cross_traffic: None,
            extra_servers: Vec::new(),
            balancing: None,
        }
    }

    /// The §4.1 single-site WAN: `c` clients at Ocha-U behind the shared
    /// 0.17 MB/s link to ETL, ~60 km away.
    pub fn single_site_wan(
        server: MachineSpec,
        c: usize,
        workload: Workload,
        mode: ExecMode,
        policy: SchedPolicy,
        seed: u64,
    ) -> Scenario {
        let mut topo = Topology::new();
        let site_router = topo.add_node("ocha-u");
        let server_router = topo.add_node("etl-router");
        let server_node = topo.add_node(&server.name);
        // The thin shared site link is the defining feature.
        topo.add_duplex_link(site_router, server_router, WAN_SITE_LINK, 0.015);
        topo.add_duplex_link(server_router, server_node, LAN_SERVER_ACCESS, 0.0001);
        // Background Internet traffic rides the same site link.
        let bg_src = topo.add_node("bg-src");
        let bg_sink = topo.add_node("bg-sink");
        topo.add_duplex_link(bg_src, site_router, LAN_ACCESS, 0.0001);
        topo.add_duplex_link(bg_sink, server_router, LAN_ACCESS, 0.0001);
        let clients: Vec<ClientGroup> = (0..c)
            .map(|i| {
                let node = topo.add_node(format!("ocha{i}"));
                topo.add_duplex_link(node, site_router, LAN_ACCESS, 0.0001);
                ClientGroup {
                    node,
                    stream_cap: WAN_SITE_LINK,
                    latency_to_server: 0.0152,
                }
            })
            .collect();
        topo.compute_routes();
        Scenario {
            name: format!("WAN(single-site) {} c={c}", workload.label()),
            kind: NetworkKind::SingleSiteWan,
            server,
            mode,
            policy,
            workload,
            clients,
            network: NetworkBuild { topo, server_node },
            interval_s: 3.0,
            prob_p: 0.5,
            duration: 1800.0,
            warmup: 120.0,
            seed,
            syn_retry_prob: 0.03,
            threads_per_job: None,
            cross_traffic: Some((CrossTraffic::internet_1997(), bg_src, bg_sink)),
            extra_servers: Vec::new(),
            balancing: None,
        }
    }

    /// The Figure 9 multi-site WAN: `sites` university sites on distinct
    /// backbones, `c_per_site` clients each, converging on the ETL J90.
    pub fn multi_site_wan(
        server: MachineSpec,
        sites: usize,
        c_per_site: usize,
        workload: Workload,
        mode: ExecMode,
        policy: SchedPolicy,
        seed: u64,
    ) -> Scenario {
        let mut topo = Topology::new();
        let convergence = topo.add_node("etl-ingress");
        let server_router = topo.add_node("etl-router");
        let server_node = topo.add_node(&server.name);
        topo.add_duplex_link(convergence, server_router, WAN_BACKBONE, 0.004);
        topo.add_duplex_link(server_router, server_node, LAN_SERVER_ACCESS, 0.0001);
        let site_names = ["Ocha-U", "U-Tokyo", "NITech", "TITech"];
        let mut clients = Vec::new();
        for s in 0..sites {
            let site = topo.add_node(site_names.get(s).copied().unwrap_or("site"));
            // Each site rides its own backbone with its own thin uplink and
            // slightly different latency (NITech is ~350 km out).
            let latency = 0.012 + 0.004 * s as f64;
            topo.add_duplex_link(site, convergence, WAN_SITE_LINK, latency);
            for i in 0..c_per_site {
                let node = topo.add_node(format!("site{s}-client{i}"));
                topo.add_duplex_link(node, site, LAN_ACCESS, 0.0001);
                clients.push(ClientGroup {
                    node,
                    stream_cap: WAN_SITE_LINK,
                    latency_to_server: latency + 0.0042,
                });
            }
        }
        topo.compute_routes();
        Scenario {
            name: format!(
                "WAN(multi-site) {} {sites}x{c_per_site} clients",
                workload.label()
            ),
            kind: NetworkKind::MultiSiteWan,
            server,
            mode,
            policy,
            workload,
            clients,
            network: NetworkBuild { topo, server_node },
            interval_s: 3.0,
            prob_p: 0.5,
            duration: 1800.0,
            warmup: 120.0,
            seed,
            syn_retry_prob: 0.03,
            threads_per_job: None,
            cross_traffic: None,
            extra_servers: Vec::new(),
            balancing: None,
        }
    }

    /// A metaserver-in-the-loop scenario: `c` clients at one site choosing,
    /// per `balancing`, between a *far* supercomputer (server 0: `far`,
    /// behind the thin WAN link) and a *near* modest server (server 1:
    /// `near`, on the clients' LAN). This is the placement dilemma of
    /// §4.2.2/§6: NetSolve-style load-based choice favours the idle far
    /// machine; bandwidth-aware choice keeps communication-bound work near.
    pub fn two_server_lan_wan(
        far: MachineSpec,
        near: MachineSpec,
        c: usize,
        workload: Workload,
        balancing: Balancing,
        seed: u64,
    ) -> Scenario {
        let mut topo = Topology::new();
        let site_router = topo.add_node("site");
        let server_router = topo.add_node("far-router");
        let far_node = topo.add_node(&far.name);
        // Far: behind the 0.17 MB/s WAN link.
        topo.add_duplex_link(site_router, server_router, WAN_SITE_LINK, 0.015);
        topo.add_duplex_link(server_router, far_node, LAN_SERVER_ACCESS, 0.0001);
        // Near: on the clients' own LAN.
        let near_node = topo.add_node(&near.name);
        topo.add_duplex_link(site_router, near_node, LAN_SERVER_ACCESS, 0.0001);
        let clients: Vec<ClientGroup> = (0..c)
            .map(|i| {
                let node = topo.add_node(format!("client{i}"));
                topo.add_duplex_link(node, site_router, LAN_ACCESS, 0.0001);
                ClientGroup {
                    node,
                    stream_cap: WAN_SITE_LINK,
                    latency_to_server: 0.0152,
                }
            })
            .collect();
        topo.compute_routes();
        let near_cap = 3.6e6;
        let extra = ExtraServer {
            machine: near,
            mode: ExecMode::TaskParallel,
            node: near_node,
            stream_cap: near_cap,
            latency: 0.0003,
            bandwidth_estimate: near_cap,
        };
        Scenario {
            name: format!("two-server {} c={c}", workload.label()),
            kind: NetworkKind::SingleSiteWan,
            server: far,
            mode: ExecMode::DataParallel,
            policy: SchedPolicy::Fcfs,
            workload,
            clients,
            network: NetworkBuild {
                topo,
                server_node: far_node,
            },
            interval_s: 3.0,
            prob_p: 0.5,
            duration: 1800.0,
            warmup: 150.0,
            seed,
            syn_retry_prob: 0.0,
            threads_per_job: None,
            cross_traffic: None,
            extra_servers: vec![extra],
            balancing: Some(balancing),
        }
    }

    /// Make the client(s) call back-to-back (single-client curves of §3:
    /// the client loops on `Ninf_call`).
    pub fn saturated(mut self) -> Scenario {
        self.interval_s = 0.05;
        self.prob_p = 1.0;
        self.syn_retry_prob = 0.0;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ninf_machine::j90;

    #[test]
    fn lan_topology_routes_all_clients() {
        let s = Scenario::lan(
            j90(),
            4,
            Workload::Linpack { n: 600 },
            ExecMode::TaskParallel,
            SchedPolicy::Fcfs,
            1,
        );
        for c in &s.clients {
            assert!(s
                .network
                .topo
                .route(c.node, s.network.server_node)
                .is_some());
            assert!(s
                .network
                .topo
                .route(s.network.server_node, c.node)
                .is_some());
        }
    }

    #[test]
    fn wan_path_capacity_is_site_link() {
        let s = Scenario::single_site_wan(
            j90(),
            2,
            Workload::Linpack { n: 600 },
            ExecMode::TaskParallel,
            SchedPolicy::Fcfs,
            1,
        );
        let cap = s
            .network
            .topo
            .path_capacity(s.clients[0].node, s.network.server_node)
            .unwrap();
        assert_eq!(cap, WAN_SITE_LINK);
    }

    #[test]
    fn multi_site_sites_have_distinct_uplinks() {
        let s = Scenario::multi_site_wan(
            j90(),
            4,
            1,
            Workload::Linpack { n: 600 },
            ExecMode::TaskParallel,
            SchedPolicy::Fcfs,
            1,
        );
        assert_eq!(s.clients.len(), 4);
        // Each client's path capacity is its own site link, not shared.
        for c in &s.clients {
            let cap = s
                .network
                .topo
                .path_capacity(c.node, s.network.server_node)
                .unwrap();
            assert_eq!(cap, WAN_SITE_LINK);
        }
        // Latencies differ per site.
        assert!(s.clients[0].latency_to_server < s.clients[3].latency_to_server);
    }

    #[test]
    fn saturated_builder_enables_back_to_back() {
        let s = Scenario::lan(
            j90(),
            1,
            Workload::Linpack { n: 600 },
            ExecMode::TaskParallel,
            SchedPolicy::Fcfs,
            1,
        )
        .saturated();
        assert_eq!(s.prob_p, 1.0);
        assert!(s.interval_s < 0.1);
    }
}
