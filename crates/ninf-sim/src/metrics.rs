//! Per-call measurements and the max/min/mean summaries of the paper's
//! tables.

use serde::Serialize;

/// max/min/mean triple, as every table cell reports.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Maximum observed.
    pub max: f64,
    /// Minimum observed.
    pub min: f64,
    /// Arithmetic mean.
    pub mean: f64,
}

impl Summary {
    /// Summarize a sample; zeros if empty.
    pub fn of(samples: &[f64]) -> Summary {
        if samples.is_empty() {
            return Summary {
                max: 0.0,
                min: 0.0,
                mean: 0.0,
            };
        }
        let mut max = f64::NEG_INFINITY;
        let mut min = f64::INFINITY;
        let mut sum = 0.0;
        for &s in samples {
            max = max.max(s);
            min = min.min(s);
            sum += s;
        }
        Summary {
            max,
            min,
            mean: sum / samples.len() as f64,
        }
    }

    /// Render as the paper's `max/min/mean` cell.
    pub fn cell(&self, decimals: usize) -> String {
        format!(
            "{:.d$}/{:.d$}/{:.d$}",
            self.max,
            self.min,
            self.mean,
            d = decimals
        )
    }
}

/// One completed simulated `Ninf_call`.
#[derive(Debug, Clone, PartialEq)]
pub struct CallMetrics {
    /// Issuing client index.
    pub client: usize,
    /// §4.1 lifecycle timestamps (seconds of virtual time).
    pub t_submit: f64,
    /// Connection accepted at the server.
    pub t_enqueue: f64,
    /// Ninf executable forked.
    pub t_dequeue: f64,
    /// Results fully received by the client.
    pub t_complete: f64,
    /// Seconds spent in argument/result transfer phases.
    pub transfer_seconds: f64,
    /// Array bytes moved (both directions).
    pub bytes: f64,
    /// Work units (flops or EP ops) of the call.
    pub work_units: f64,
}

impl CallMetrics {
    /// Client-observed performance in M(fl)ops: `work / T_Ninf_call`.
    pub fn performance(&self) -> f64 {
        self.work_units / ((self.t_complete - self.t_submit) * 1e6)
    }

    /// `T_response = T_enqueue − T_submit`.
    pub fn response(&self) -> f64 {
        self.t_enqueue - self.t_submit
    }

    /// `T_wait = T_dequeue − T_enqueue`.
    pub fn wait(&self) -> f64 {
        self.t_dequeue - self.t_enqueue
    }

    /// Observed transfer throughput in MB/s (marshalling included, §3.2).
    pub fn throughput_mbs(&self) -> f64 {
        if self.transfer_seconds <= 0.0 {
            return 0.0;
        }
        self.bytes / self.transfer_seconds / 1e6
    }
}

/// Virtual-time seconds → span microseconds (epoch 0 = run start).
fn vt_us(t: f64) -> u64 {
    (t.max(0.0) * 1e6).round() as u64
}

/// Render simulated calls in the live stack's span schema, so a sim run and
/// a live trace diff side by side (`ninf-obs`'s `diff_summary`, keyed by
/// `(process, name)`). Per call `i` the trace id is `i + 1` and the spans
/// mirror the live hierarchy: a client `call` span covering
/// `T_submit..T_complete` with server `queue_wait`
/// (`T_enqueue..T_dequeue`) and `exec` (`T_dequeue..T_complete`) nested
/// inside it. Span ids are deterministic functions of the call index.
pub fn spans_from_metrics(calls: &[CallMetrics]) -> Vec<ninf_obs::Span> {
    let mut spans = Vec::with_capacity(calls.len() * 3);
    for (i, c) in calls.iter().enumerate() {
        let trace_id = i as u64 + 1;
        let call_id = trace_id << 8 | 1;
        spans.push(ninf_obs::Span {
            trace_id,
            span_id: call_id,
            parent_span_id: 0,
            name: "call".into(),
            process: "client".into(),
            start_us: vt_us(c.t_submit),
            dur_us: vt_us(c.t_complete).saturating_sub(vt_us(c.t_submit)),
            detail: format!("client={} sim=1", c.client),
        });
        spans.push(ninf_obs::Span {
            trace_id,
            span_id: call_id | 2,
            parent_span_id: call_id,
            name: "queue_wait".into(),
            process: "server".into(),
            start_us: vt_us(c.t_enqueue),
            dur_us: vt_us(c.t_dequeue).saturating_sub(vt_us(c.t_enqueue)),
            detail: String::new(),
        });
        spans.push(ninf_obs::Span {
            trace_id,
            span_id: call_id | 4,
            parent_span_id: call_id,
            name: "exec".into(),
            process: "server".into(),
            start_us: vt_us(c.t_dequeue),
            dur_us: vt_us(c.t_complete).saturating_sub(vt_us(c.t_dequeue)),
            detail: format!("work_units={}", c.work_units),
        });
    }
    spans
}

impl Serialize for Summary {
    fn to_json_value(&self) -> serde::Value {
        let mut m = serde::Map::new();
        m.insert("max".to_string(), self.max.to_json_value());
        m.insert("min".to_string(), self.min.to_json_value());
        m.insert("mean".to_string(), self.mean.to_json_value());
        serde::Value::Object(m)
    }
}

/// One cell of a results table (fixed workload × client count).
#[derive(Debug, Clone)]
pub struct CellResult {
    /// Workload label ("linpack n=600", "EP 2^24").
    pub workload: String,
    /// Number of clients.
    pub clients: usize,
    /// Client-observed performance (Mflops / Mops).
    pub perf: Summary,
    /// Response time (s).
    pub response: Summary,
    /// Wait time (s).
    pub wait: Summary,
    /// Per-call transfer throughput (MB/s).
    pub throughput: Summary,
    /// Server CPU utilization (%).
    pub cpu_utilization: f64,
    /// Mean damped load average.
    pub load_average: f64,
    /// Peak damped load average.
    pub load_max: f64,
    /// Completed calls in the measurement window.
    pub times: usize,
    /// Jain's fairness index over per-call performance (1 = perfectly fair
    /// service across calls; the paper's widening max/min spread under load
    /// is this number falling).
    pub fairness: f64,
}

impl Serialize for CellResult {
    fn to_json_value(&self) -> serde::Value {
        let mut m = serde::Map::new();
        m.insert("workload".to_string(), self.workload.to_json_value());
        m.insert("clients".to_string(), self.clients.to_json_value());
        m.insert("perf".to_string(), self.perf.to_json_value());
        m.insert("response".to_string(), self.response.to_json_value());
        m.insert("wait".to_string(), self.wait.to_json_value());
        m.insert("throughput".to_string(), self.throughput.to_json_value());
        m.insert(
            "cpu_utilization".to_string(),
            self.cpu_utilization.to_json_value(),
        );
        m.insert(
            "load_average".to_string(),
            self.load_average.to_json_value(),
        );
        m.insert("load_max".to_string(), self.load_max.to_json_value());
        m.insert("times".to_string(), self.times.to_json_value());
        m.insert("fairness".to_string(), self.fairness.to_json_value());
        serde::Value::Object(m)
    }
}

impl CellResult {
    /// Aggregate per-call metrics into a table cell.
    pub fn from_calls(
        workload: String,
        clients: usize,
        calls: &[CallMetrics],
        cpu_utilization: f64,
        load_average: f64,
        load_max: f64,
    ) -> CellResult {
        let perf: Vec<f64> = calls.iter().map(|c| c.performance()).collect();
        let response: Vec<f64> = calls.iter().map(|c| c.response()).collect();
        let wait: Vec<f64> = calls.iter().map(|c| c.wait()).collect();
        let throughput: Vec<f64> = calls.iter().map(|c| c.throughput_mbs()).collect();
        CellResult {
            workload,
            clients,
            perf: Summary::of(&perf),
            fairness: jain_index(&perf),
            response: Summary::of(&response),
            wait: Summary::of(&wait),
            throughput: Summary::of(&throughput),
            cpu_utilization,
            load_average,
            load_max,
            times: calls.len(),
        }
    }
}

/// Jain's fairness index `( Σx )² / ( n·Σx² )` over a sample; 1.0 when all
/// equal, →1/n when one call hogs everything. 0 for empty samples.
pub fn jain_index(samples: &[f64]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let sum: f64 = samples.iter().sum();
    let sum_sq: f64 = samples.iter().map(|x| x * x).sum();
    if sum_sq <= 0.0 {
        return 0.0;
    }
    sum * sum / (samples.len() as f64 * sum_sq)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basic() {
        let s = Summary::of(&[1.0, 3.0, 2.0]);
        assert_eq!(s.max, 3.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.mean, 2.0);
    }

    #[test]
    fn summary_empty_is_zero() {
        let s = Summary::of(&[]);
        assert_eq!((s.max, s.min, s.mean), (0.0, 0.0, 0.0));
    }

    #[test]
    fn summary_cell_formats_like_the_paper() {
        let s = Summary {
            max: 72.71,
            min: 69.9,
            mean: 71.16,
        };
        assert_eq!(s.cell(2), "72.71/69.90/71.16");
        assert_eq!(s.cell(0), "73/70/71");
    }

    #[test]
    fn call_metrics_derivations() {
        let c = CallMetrics {
            client: 0,
            t_submit: 10.0,
            t_enqueue: 10.02,
            t_dequeue: 10.05,
            t_complete: 12.05,
            transfer_seconds: 1.2,
            bytes: 3e6,
            work_units: 1.4472e8,
        };
        assert!((c.response() - 0.02).abs() < 1e-12);
        assert!((c.wait() - 0.03).abs() < 1e-12);
        assert!((c.performance() - 1.4472e8 / (2.05e6)).abs() < 1e-6);
        assert!((c.throughput_mbs() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn zero_transfer_time_gives_zero_throughput() {
        let c = CallMetrics {
            client: 0,
            t_submit: 0.0,
            t_enqueue: 0.0,
            t_dequeue: 0.0,
            t_complete: 1.0,
            transfer_seconds: 0.0,
            bytes: 100.0,
            work_units: 1.0,
        };
        assert_eq!(c.throughput_mbs(), 0.0);
    }

    #[test]
    fn jain_index_properties() {
        assert_eq!(jain_index(&[]), 0.0);
        assert!((jain_index(&[5.0, 5.0, 5.0]) - 1.0).abs() < 1e-12);
        // One hog among n: index -> 1/n.
        let idx = jain_index(&[100.0, 0.0, 0.0, 0.0]);
        assert!((idx - 0.25).abs() < 1e-12);
        // Mild spread: between 1/n and 1.
        let idx = jain_index(&[1.0, 2.0, 3.0]);
        assert!(idx > 1.0 / 3.0 && idx < 1.0);
    }

    #[test]
    fn cell_result_aggregates() {
        let calls = vec![
            CallMetrics {
                client: 0,
                t_submit: 0.0,
                t_enqueue: 0.1,
                t_dequeue: 0.2,
                t_complete: 2.0,
                transfer_seconds: 1.0,
                bytes: 2e6,
                work_units: 1e8,
            },
            CallMetrics {
                client: 1,
                t_submit: 0.0,
                t_enqueue: 0.2,
                t_dequeue: 0.5,
                t_complete: 4.0,
                transfer_seconds: 2.0,
                bytes: 2e6,
                work_units: 1e8,
            },
        ];
        let cell = CellResult::from_calls("linpack n=600".into(), 2, &calls, 42.0, 1.5, 3.0);
        assert_eq!(cell.times, 2);
        assert_eq!(cell.clients, 2);
        assert!(cell.perf.max > cell.perf.min);
        assert_eq!(cell.cpu_utilization, 42.0);
    }

    #[test]
    fn sim_spans_match_live_schema_and_nest() {
        let calls = vec![
            CallMetrics {
                client: 0,
                t_submit: 0.0,
                t_enqueue: 0.1,
                t_dequeue: 0.2,
                t_complete: 2.0,
                transfer_seconds: 1.0,
                bytes: 2e6,
                work_units: 1e8,
            },
            CallMetrics {
                client: 1,
                t_submit: 0.5,
                t_enqueue: 0.6,
                t_dequeue: 0.9,
                t_complete: 4.0,
                transfer_seconds: 2.0,
                bytes: 2e6,
                work_units: 1e8,
            },
        ];
        let spans = spans_from_metrics(&calls);
        assert_eq!(spans.len(), 6);
        // Same hierarchy the live stack records: queue_wait and exec nest
        // inside the client call span, and every client call has server
        // spans in its trace.
        ninf_obs::export::validate_nesting(&spans, 0).unwrap();
        assert_eq!(ninf_obs::export::client_server_coverage(&spans).unwrap(), 2);
        // The Chrome export round-trips.
        let json = ninf_obs::export::chrome_trace_json(&spans);
        let back = ninf_obs::export::parse_chrome_trace(&json).unwrap();
        assert_eq!(back.len(), spans.len());
        // Virtual seconds land as microseconds.
        assert_eq!(spans[0].start_us, 0);
        assert_eq!(spans[0].dur_us, 2_000_000);
    }
}
