//! The whole-system simulation driver: clients, one computational server,
//! the fluid network, and the `Ninf_call` lifecycle state machine.

use std::collections::HashMap;

use ninf_metaserver::{CallEstimate, ServerState};
use ninf_netsim::{Engine, FlowId, FlowSpec, FluidNet, SplitMix64};
use ninf_protocol::LoadReport;

use crate::client::ClientProc;
use crate::metrics::{CallMetrics, CellResult};
use crate::scenario::Scenario;
use crate::server::ServerSim;

/// Heap events (network and CPU completions come from the fluid models).
#[derive(Debug, Clone, Copy)]
enum Event {
    /// A client's decision epoch (§4.1: every `s` seconds, probability `p`).
    Decision { client: usize },
    /// Connection accepted at the server → `T_enqueue`.
    Accepted { call: u64 },
    /// Ninf executable forked → `T_dequeue`; the argument transfer begins.
    Forked { call: u64 },
    /// End of the warm-up window: reset measurement accounting.
    WarmupEnd,
    /// Background cross-traffic burst toggles on/off.
    CrossToggle,
}

/// Base fork&exec cost of spawning one Ninf executable (seconds).
const FORK_BASE_S: f64 = 0.02;

/// Exponential deviate with the given mean.
fn exp_sample(rng: &mut SplitMix64, mean: f64) -> f64 {
    -mean * (1.0 - rng.next_f64()).ln()
}

/// Lifecycle phase of a call.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Phase {
    Connecting,
    Forking,
    RequestTransfer(FlowId),
    Computing,
    ReplyTransfer(FlowId),
}

#[derive(Debug, Clone)]
struct CallState {
    client: usize,
    /// Which server (0 = the scenario's primary) serves this call.
    server: usize,
    phase: Phase,
    t_submit: f64,
    t_enqueue: f64,
    t_dequeue: f64,
    transfer_seconds: f64,
    transfer_began: f64,
    bytes: f64,
    work_units: f64,
}

/// The assembled simulation world.
/// Static facts about one server in the world.
struct ServerSlot {
    sim: ServerSim,
    node: ninf_netsim::NodeId,
    /// Per-stream ceiling clients get to this server (`None`: use the
    /// client's own configured cap).
    stream_cap: Option<f64>,
    latency: f64,
    bandwidth_estimate: f64,
}

/// The assembled simulation world.
pub struct World {
    scenario: Scenario,
    engine: Engine<Event>,
    net: FluidNet,
    servers: Vec<ServerSlot>,
    rr_cursor: usize,
    clients: Vec<ClientProc>,
    calls: HashMap<u64, CallState>,
    flow_owner: HashMap<FlowId, u64>,
    next_call: u64,
    rng: SplitMix64,
    completed: Vec<CallMetrics>,
    measuring: bool,
    cross_flow: Option<FlowId>,
}

impl World {
    /// Build a world from a scenario.
    pub fn new(scenario: Scenario) -> Self {
        let mut engine = Engine::new();
        let net = FluidNet::new(scenario.network.topo.clone());
        let mut primary = ServerSim::new(scenario.server.clone(), scenario.mode, scenario.policy);
        primary.threads_per_job = scenario.threads_per_job;
        let mut servers = vec![ServerSlot {
            sim: primary,
            node: scenario.network.server_node,
            stream_cap: None,
            latency: 0.0,
            bandwidth_estimate: 0.0,
        }];
        for extra in &scenario.extra_servers {
            servers.push(ServerSlot {
                sim: ServerSim::new(extra.machine.clone(), extra.mode, scenario.policy),
                node: extra.node,
                stream_cap: Some(extra.stream_cap),
                latency: extra.latency,
                bandwidth_estimate: extra.bandwidth_estimate,
            });
        }
        let mut rng = SplitMix64::new(scenario.seed);
        let clients: Vec<ClientProc> = (0..scenario.clients.len())
            .map(|i| ClientProc::new(i, rng.fork()))
            .collect();
        // Stagger first decisions uniformly over one interval to avoid a
        // thundering herd at t = 0.
        for (i, _) in clients.iter().enumerate() {
            let offset = rng.next_f64() * scenario.interval_s;
            engine.schedule(offset, Event::Decision { client: i });
        }
        engine.schedule(scenario.warmup, Event::WarmupEnd);
        if scenario.cross_traffic.is_some() {
            engine.schedule(0.0, Event::CrossToggle);
        }
        let mut world = Self {
            scenario,
            engine,
            net,
            servers,
            rr_cursor: 0,
            clients,
            calls: HashMap::new(),
            flow_owner: HashMap::new(),
            next_call: 0,
            rng,
            completed: Vec::new(),
            measuring: false,
            cross_flow: None,
        };
        if world.scenario.warmup <= 0.0 {
            world.measuring = true;
        }
        world
    }

    /// Run to the scenario's end time and aggregate the table cell.
    pub fn run(self) -> CellResult {
        self.run_detailed().0
    }

    /// Like [`World::run`], but also return every completed call's metrics
    /// (for percentile/fairness analysis beyond the paper's max/min/mean).
    pub fn run_detailed(mut self) -> (CellResult, Vec<CallMetrics>) {
        let t_end = self.scenario.duration;
        loop {
            let t_heap = self.engine.peek_time();
            let t_net = self.net.next_completion().map(|(t, _)| t);
            let now = self.engine.now();
            let t_cpu = self
                .servers
                .iter()
                .filter_map(|srv| srv.sim.next_job_completion(now))
                .map(|(t, _)| t)
                .min_by(f64::total_cmp);

            let next = [t_heap, t_net, t_cpu]
                .into_iter()
                .flatten()
                .fold(f64::INFINITY, f64::min);
            if !next.is_finite() || next > t_end {
                break;
            }

            // Dispatch the earliest source; ties prefer net/cpu completions
            // (they unblock state the heap events may need).
            if t_net.is_some_and(|t| t <= next + 1e-12) {
                let (t, flow) = self.net.next_completion().expect("checked");
                self.advance_all(t);
                self.net.finish_flow(flow);
                self.on_flow_done(flow);
            } else if t_cpu.is_some_and(|t| t <= next + 1e-12) {
                let (t, call) = self
                    .servers
                    .iter()
                    .filter_map(|srv| srv.sim.next_job_completion(now))
                    .min_by(|a, b| a.0.total_cmp(&b.0))
                    .expect("checked");
                self.advance_all(t);
                self.on_compute_done(call);
            } else {
                let entry = self.engine.pop().expect("heap had the minimum");
                self.net.advance_to(entry.time);
                for srv in &mut self.servers {
                    srv.sim.drain(entry.time);
                }
                self.handle(entry.event);
            }
        }
        self.finish()
    }

    fn finish_detailed(mut self) -> (CellResult, Vec<CallMetrics>) {
        let now = self.now().max(self.scenario.warmup);
        let cpu = self.servers[0].sim.cpu_utilization(now);
        let (load_mean, load_max) = self.servers[0].sim.load_stats(now);
        let cell = CellResult::from_calls(
            self.scenario.workload.label(),
            self.scenario.clients.len(),
            &self.completed,
            cpu,
            load_mean,
            load_max,
        );
        (cell, self.completed)
    }

    fn advance_all(&mut self, t: f64) {
        self.engine.advance_to(t);
        self.net.advance_to(t);
        for srv in &mut self.servers {
            srv.sim.drain(t);
        }
    }

    /// Re-run the PE water-fill on every server (marshal caps interact
    /// through shared links, so one server's change can shift another's
    /// achieved rates).
    fn rebalance_all(&mut self, now: f64) {
        for srv in &mut self.servers {
            srv.sim.rebalance(&mut self.net, now);
        }
    }

    /// Per-stream cap between `client` and `server`.
    fn cap_for(&self, client: usize, server: usize) -> f64 {
        self.servers[server]
            .stream_cap
            .unwrap_or(self.scenario.clients[client].stream_cap)
    }

    /// One-way latency between `client` and `server`.
    fn latency_for(&self, client: usize, server: usize) -> f64 {
        if server == 0 {
            self.scenario.clients[client].latency_to_server
        } else {
            self.servers[server].latency
        }
    }

    /// Pick a server for a new call using the metaserver's *live* balancing
    /// code over the simulated servers' current state.
    fn choose_server(&mut self) -> usize {
        let Some(balancing) = self.scenario.balancing else {
            return 0;
        };
        if self.servers.len() == 1 {
            return 0;
        }
        let w = self.scenario.workload;
        let states: Vec<ServerState> = self
            .servers
            .iter()
            .enumerate()
            .map(|(i, srv)| {
                let pes = srv.sim.machine.pes as u32;
                let running = srv.sim.running_jobs() as u32;
                let queued = srv.sim.queued_jobs() as u32;
                let bandwidth = if i == 0 {
                    // The directory's estimate for the primary: the thin
                    // WAN path capacity if one exists, else the stream cap.
                    self.scenario
                        .clients
                        .first()
                        .map(|c| c.stream_cap)
                        .unwrap_or(1e6)
                } else {
                    srv.bandwidth_estimate
                };
                ServerState {
                    load: LoadReport {
                        pes,
                        running,
                        queued,
                        load_average: (running + queued) as f64,
                        cpu_utilization: 0.0,
                    },
                    bandwidth_bytes_per_sec: bandwidth,
                    linpack_mflops: srv.sim.machine.allpe_linpack.mflops(1000),
                }
            })
            .collect();
        let est = CallEstimate {
            bytes: w.request_bytes() + w.reply_bytes(),
            flops: w.work_units(),
        };
        balancing.choose(&states, est, &mut self.rr_cursor)
    }

    fn now(&self) -> f64 {
        self.engine.now()
    }

    fn handle(&mut self, event: Event) {
        match event {
            Event::Decision { client } => self.on_decision(client),
            Event::Accepted { call } => self.on_accepted(call),
            Event::Forked { call } => self.on_forked(call),
            Event::WarmupEnd => {
                self.measuring = true;
                let now = self.now();
                for srv in &mut self.servers {
                    srv.sim.reset_windows(now);
                }
                self.completed.clear();
            }
            Event::CrossToggle => self.on_cross_toggle(),
        }
    }

    /// Toggle the background-traffic burst (exponential on/off process).
    fn on_cross_toggle(&mut self) {
        let now = self.now();
        let (ct, src, dst) = self
            .scenario
            .cross_traffic
            .expect("cross traffic configured");
        let next_delay = if let Some(flow) = self.cross_flow.take() {
            self.net.cancel_flow(flow);
            exp_sample(&mut self.rng, ct.mean_off)
        } else {
            // Effectively-infinite burst; removed at the next toggle. Its
            // cap is a fraction of the WAN site link.
            let cap = ct.intensity * crate::scenario::WAN_SITE_LINK;
            let flow = self.net.start_flow(
                FlowSpec {
                    src,
                    dst,
                    bytes: 1e15,
                    cap,
                },
                now,
            );
            self.cross_flow = Some(flow);
            exp_sample(&mut self.rng, ct.mean_on)
        };
        self.engine.schedule(now + next_delay, Event::CrossToggle);
    }

    fn on_decision(&mut self, client: usize) {
        let now = self.now();
        self.engine
            .schedule(now + self.scenario.interval_s, Event::Decision { client });
        let c = &mut self.clients[client];
        if c.busy {
            return;
        }
        if !c.rng.bernoulli(self.scenario.prob_p) {
            return;
        }
        c.busy = true;

        let call = self.next_call;
        self.next_call += 1;
        let server = self.choose_server();
        let w = self.scenario.workload;
        self.calls.insert(
            call,
            CallState {
                client,
                server,
                phase: Phase::Connecting,
                t_submit: now,
                t_enqueue: 0.0,
                t_dequeue: 0.0,
                transfer_seconds: 0.0,
                transfer_began: 0.0,
                bytes: w.request_bytes() + w.reply_bytes(),
                work_units: w.work_units(),
            },
        );
        // Connection: one round trip, the server's accept/dispatch overhead
        // (dominant on the SMP, Table 5), plus an occasional 1997-style SYN
        // retransmit timeout (the ~5 s maxima all over the paper's tables).
        let rtt = 2.0 * self.latency_for(client, server);
        let accept = self.servers[server].sim.machine.accept_overhead_s;
        let retry = if self.rng.bernoulli(self.scenario.syn_retry_prob) {
            5.0
        } else {
            0.0
        };
        self.engine
            .schedule(now + rtt + accept + retry, Event::Accepted { call });
    }

    fn on_accepted(&mut self, call: u64) {
        let now = self.now();
        let state = self.calls.get_mut(&call).expect("call exists");
        state.t_enqueue = now;
        state.phase = Phase::Forking;
        // fork & exec: base overhead stretched by how crowded the run queue
        // is (the slight growth of T_wait with c in Tables 3-5).
        let sim = &self.servers[self.calls[&call].server].sim;
        let crowding = 1.0 + sim.runnable_now() / sim.machine.pes as f64 * 0.5;
        let fork = FORK_BASE_S * crowding;
        self.engine.schedule(now + fork, Event::Forked { call });
    }

    fn on_forked(&mut self, call: u64) {
        let now = self.now();
        let (client, server, req_bytes) = {
            let state = self.calls.get_mut(&call).expect("call exists");
            state.t_dequeue = now;
            state.transfer_began = now;
            (
                state.client,
                state.server,
                self.scenario.workload.request_bytes(),
            )
        };
        let cap = self.cap_for(client, server);
        let flow = self.net.start_flow(
            FlowSpec {
                src: self.scenario.clients[client].node,
                dst: self.servers[server].node,
                bytes: req_bytes,
                cap,
            },
            now,
        );
        self.calls.get_mut(&call).expect("exists").phase = Phase::RequestTransfer(flow);
        self.flow_owner.insert(flow, call);
        self.servers[server].sim.transfer_started(flow, cap, now);
        self.rebalance_all(now);
    }

    fn on_flow_done(&mut self, flow: FlowId) {
        let now = self.now();
        let call = self.flow_owner.remove(&flow).expect("flow owner");
        let server = self.calls[&call].server;
        self.servers[server].sim.transfer_ended(flow, now);
        let state = self.calls.get_mut(&call).expect("call exists");
        state.transfer_seconds += now - state.transfer_began;

        match state.phase {
            Phase::RequestTransfer(_) => {
                state.phase = Phase::Computing;
                let sim = &mut self.servers[server].sim;
                let demand = sim.job_demand();
                let work = self
                    .scenario
                    .workload
                    .service_seconds(&sim.machine.clone(), demand.ceil() as usize)
                    * demand;
                sim.submit_job(call, work, now);
                self.rebalance_all(now);
            }
            Phase::ReplyTransfer(_) => {
                self.rebalance_all(now);
                self.complete_call(call);
            }
            other => unreachable!("flow finished in phase {other:?}"),
        }
    }

    fn on_compute_done(&mut self, call: u64) {
        let now = self.now();
        let server = self.calls[&call].server;
        let started = self.servers[server].sim.finish_job(call, now);
        let (client, reply_bytes) = {
            let state = self.calls.get_mut(&call).expect("call exists");
            state.transfer_began = now;
            (state.client, self.scenario.workload.reply_bytes())
        };
        let cap = self.cap_for(client, server);
        let flow = self.net.start_flow(
            FlowSpec {
                src: self.servers[server].node,
                dst: self.scenario.clients[client].node,
                bytes: reply_bytes,
                cap,
            },
            now,
        );
        self.calls.get_mut(&call).expect("exists").phase = Phase::ReplyTransfer(flow);
        self.flow_owner.insert(flow, call);
        self.servers[server].sim.transfer_started(flow, cap, now);
        self.rebalance_all(now);
        // Gate admissions have no extra bookkeeping here: the admitted
        // job's completion surfaces via next_job_completion.
        let _ = started;
    }

    fn complete_call(&mut self, call: u64) {
        let now = self.now();
        let state = self.calls.remove(&call).expect("call exists");
        self.clients[state.client].busy = false;
        if self.measuring && now <= self.scenario.duration {
            self.completed.push(CallMetrics {
                client: state.client,
                t_submit: state.t_submit,
                t_enqueue: state.t_enqueue,
                t_dequeue: state.t_dequeue,
                t_complete: now,
                transfer_seconds: state.transfer_seconds,
                bytes: state.bytes,
                work_units: state.work_units,
            });
        }
    }

    /// Multi-server cells report the *primary* server's accounting (the
    /// paper always instruments one computational server).
    fn finish(self) -> (CellResult, Vec<CallMetrics>) {
        self.finish_detailed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;
    use crate::workload::Workload;
    use ninf_server::{ExecMode, SchedPolicy};

    fn quick_lan(c: usize, w: Workload, mode: ExecMode) -> CellResult {
        let mut s = Scenario::lan(ninf_machine::j90(), c, w, mode, SchedPolicy::Fcfs, 42);
        s.duration = 400.0;
        s.warmup = 40.0;
        World::new(s).run()
    }

    #[test]
    fn single_client_lan_linpack_matches_table3_anchor() {
        // Table 3, n=600, c=1: mean 71.16 Mflops, throughput ≈ 2.5 MB/s.
        let cell = quick_lan(1, Workload::Linpack { n: 600 }, ExecMode::TaskParallel);
        assert!(cell.times > 10, "too few calls: {}", cell.times);
        assert!(
            (cell.perf.mean - 71.0).abs() < 8.0,
            "mean perf {} vs paper 71.16",
            cell.perf.mean
        );
        assert!(
            (cell.throughput.mean - 2.5).abs() < 0.4,
            "thpt {}",
            cell.throughput.mean
        );
    }

    #[test]
    fn four_pe_beats_one_pe_at_low_load() {
        // Fig 7: the data-parallel library has a substantial edge at small c.
        let one = quick_lan(1, Workload::Linpack { n: 1400 }, ExecMode::TaskParallel);
        let four = quick_lan(1, Workload::Linpack { n: 1400 }, ExecMode::DataParallel);
        assert!(
            four.perf.mean > one.perf.mean * 1.3,
            "4-PE {} vs 1-PE {}",
            four.perf.mean,
            one.perf.mean
        );
    }

    #[test]
    fn performance_degrades_with_clients() {
        let c1 = quick_lan(1, Workload::Linpack { n: 1000 }, ExecMode::TaskParallel);
        let c16 = quick_lan(16, Workload::Linpack { n: 1000 }, ExecMode::TaskParallel);
        assert!(
            c16.perf.mean < c1.perf.mean * 0.5,
            "c=16 {} vs c=1 {}",
            c16.perf.mean,
            c1.perf.mean
        );
        assert!(c16.cpu_utilization > c1.cpu_utilization);
        assert!(c16.load_average > c1.load_average);
    }

    #[test]
    fn ep_throughput_halves_beyond_pe_count() {
        // Table 8 shape: flat to c=4, halved at c=8 on the 4-PE J90. EP
        // calls must dwarf the decision interval (paper: ~200 s calls), so
        // clients are continuously busy and the PEs timeshare.
        let run_ep = |c: usize| {
            let mut s = Scenario::lan(
                ninf_machine::j90(),
                c,
                Workload::Ep { m: 22 },
                ExecMode::TaskParallel,
                SchedPolicy::Fcfs,
                7,
            );
            s.duration = 1600.0;
            s.warmup = 150.0;
            World::new(s).run()
        };
        let c4 = run_ep(4);
        let c8 = run_ep(8);
        let ratio = c8.perf.mean / c4.perf.mean;
        assert!((ratio - 0.5).abs() < 0.15, "ratio = {ratio}");
    }

    #[test]
    fn wan_leaves_server_idle() {
        // Tables 6/7: WAN clients cannot load the J90 (util ≈ 8-15%).
        let mut s = Scenario::single_site_wan(
            ninf_machine::j90(),
            16,
            Workload::Linpack { n: 1000 },
            ExecMode::TaskParallel,
            SchedPolicy::Fcfs,
            11,
        );
        s.duration = 2000.0;
        s.warmup = 100.0;
        let cell = World::new(s).run();
        assert!(
            cell.cpu_utilization < 25.0,
            "util = {}",
            cell.cpu_utilization
        );
        assert!(cell.perf.mean < 3.0, "perf = {}", cell.perf.mean);
    }

    #[test]
    fn determinism_same_seed_same_result() {
        let a = quick_lan(4, Workload::Linpack { n: 600 }, ExecMode::TaskParallel);
        let b = quick_lan(4, Workload::Linpack { n: 600 }, ExecMode::TaskParallel);
        assert_eq!(a.times, b.times);
        assert_eq!(a.perf.mean, b.perf.mean);
        assert_eq!(a.load_average, b.load_average);
    }

    #[test]
    fn different_seeds_differ() {
        let mut s1 = Scenario::lan(
            ninf_machine::j90(),
            4,
            Workload::Linpack { n: 600 },
            ExecMode::TaskParallel,
            SchedPolicy::Fcfs,
            1,
        );
        s1.duration = 300.0;
        let mut s2 = s1.clone();
        s2.seed = 2;
        let a = World::new(s1).run();
        let b = World::new(s2).run();
        assert_ne!(a.perf.mean, b.perf.mean);
    }
}
