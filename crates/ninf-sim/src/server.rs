//! The simulated Ninf computational server: a fluid CPU shared by running
//! executables and XDR marshalling, plus the §4.1 execution-mode semantics.
//!
//! Key modelling decisions (validated against the paper's tables in
//! `experiments::tests` and EXPERIMENTS.md):
//!
//! * **Task-parallel mode** forks one executable per call with *unbounded*
//!   concurrency — the 1997 server "merely fork & execs a Ninf executable"
//!   (§5.2) and lets the OS timeshare. This is what makes EP throughput halve
//!   from c=4 to c=8 on the 4-PE J90 while `T_wait` stays tiny (Table 8).
//! * **Data-parallel mode** runs the all-PE library one call at a time; later
//!   calls queue (policy-ordered) for the machine.
//! * **Marshalling contends with computation.** Each active transfer is a CPU
//!   task demanding up to `tcp_cap / marshal_rate` of a PE; the water-fill
//!   over jobs + marshal tasks produces both the compute slowdown and the
//!   throughput sag at saturation ("server CPU utilization dominates LAN
//!   performance").

use ninf_machine::{CpuAccounting, LoadAverage, MachineSpec};
use ninf_netsim::{FlowId, FluidNet};
use ninf_server::{ExecMode, JobInfo, SchedPolicy};

/// A compute job (one forked Ninf executable in its execution phase).
#[derive(Debug, Clone)]
struct JobSlot {
    call: u64,
    /// Remaining work in PE-seconds.
    remaining: f64,
    /// PEs the executable's library wants (1 task-parallel, all PEs
    /// data-parallel; `threads_per_job` for the SMP ablation).
    demand: f64,
    /// Current drain rate in PE-seconds/second (≤ demand).
    rate: f64,
}

/// A job waiting for the data-parallel gate.
#[derive(Debug, Clone)]
struct QueuedJob {
    call: u64,
    work: f64,
    demand: f64,
    info: JobInfo,
}

/// An active transfer whose (un)marshalling runs on this server.
#[derive(Debug, Clone)]
struct TransferTask {
    flow: FlowId,
    /// Per-stream TCP ceiling for this client/server pair (bytes/s).
    tcp_cap: f64,
}

/// The simulated server.
#[derive(Debug)]
pub struct ServerSim {
    /// Machine model.
    pub machine: MachineSpec,
    /// Execution mode.
    pub mode: ExecMode,
    /// Queue policy for the data-parallel gate (and ablations).
    pub policy: SchedPolicy,
    /// Override of per-job thread demand (SMP multithreaded-library
    /// ablation A5); `None` uses the mode's width.
    pub threads_per_job: Option<f64>,
    /// Strictly serialize jobs through a policy-ordered admission gate
    /// instead of fork-and-timeshare (scheduling ablations).
    pub gated: bool,
    jobs: Vec<JobSlot>,
    queue: Vec<QueuedJob>,
    transfers: Vec<TransferTask>,
    acct: CpuAccounting,
    load: LoadAverage,
    last_update: f64,
    next_seq: u64,
}

impl ServerSim {
    /// New server at virtual time 0.
    pub fn new(machine: MachineSpec, mode: ExecMode, policy: SchedPolicy) -> Self {
        let pes = machine.pes;
        Self {
            machine,
            mode,
            policy,
            threads_per_job: None,
            gated: false,
            jobs: Vec::new(),
            queue: Vec::new(),
            transfers: Vec::new(),
            acct: CpuAccounting::new(pes, 0.0),
            load: LoadAverage::new(0.0),
            last_update: 0.0,
            next_seq: 0,
        }
    }

    /// PEs a new job will demand.
    pub fn job_demand(&self) -> f64 {
        self.threads_per_job
            .unwrap_or(self.mode.pes_per_call(self.machine.pes) as f64)
    }

    /// Register an active transfer whose marshalling runs here.
    pub fn transfer_started(&mut self, flow: FlowId, tcp_cap: f64, now: f64) {
        self.drain(now);
        self.transfers.push(TransferTask { flow, tcp_cap });
    }

    /// Remove a finished/cancelled transfer.
    pub fn transfer_ended(&mut self, flow: FlowId, now: f64) {
        self.drain(now);
        self.transfers.retain(|t| t.flow != flow);
    }

    /// Submit a compute job. Returns `true` if it starts immediately,
    /// `false` if it queued for the gate (gated scenarios only).
    ///
    /// The 1997 server "merely fork & execs a Ninf executable" (§5.2) in
    /// *both* modes and lets the OS timeshare — Table 4's load average of 30
    /// at c=16 means ~7 four-thread libSci executables were runnable at
    /// once, not one. `gated = true` restores strict serialization for the
    /// §5.2/§5.3 scheduling ablations.
    pub fn submit_job(&mut self, call: u64, work_pe_seconds: f64, now: f64) -> bool {
        self.drain(now);
        let demand = self.job_demand();
        if !self.gated {
            self.jobs.push(JobSlot {
                call,
                remaining: work_pe_seconds,
                demand,
                rate: 0.0,
            });
            return true;
        }
        let info = JobInfo {
            arrival_seq: self.next_seq,
            estimated_cost: work_pe_seconds,
            pes_required: demand.ceil() as usize,
        };
        self.next_seq += 1;
        self.queue.push(QueuedJob {
            call,
            work: work_pe_seconds,
            demand,
            info,
        });
        self.try_start_queued()
    }

    /// Data-parallel gate: start the policy's pick if the machine is free.
    /// Returns whether anything started.
    fn try_start_queued(&mut self) -> bool {
        if self.queue.is_empty() {
            return false;
        }
        // The gate treats the whole machine as the resource: PEs not claimed
        // by running jobs are free.
        let used: usize = self.jobs.iter().map(|j| j.demand.ceil() as usize).sum();
        let free = self.machine.pes.saturating_sub(used);
        let infos: Vec<JobInfo> = self.queue.iter().map(|q| q.info).collect();
        match self.policy.pick(&infos, free) {
            Some(idx) => {
                let q = self.queue.remove(idx);
                self.jobs.push(JobSlot {
                    call: q.call,
                    remaining: q.work,
                    demand: q.demand,
                    rate: 0.0,
                });
                true
            }
            None => false,
        }
    }

    /// The earliest compute completion `(time, call)` at current rates.
    pub fn next_job_completion(&self, now: f64) -> Option<(f64, u64)> {
        self.jobs
            .iter()
            .filter(|j| j.rate > 0.0)
            .map(|j| (now + j.remaining / j.rate, j.call))
            .min_by(|a, b| a.0.total_cmp(&b.0))
    }

    /// Advance job progress to `to` at current rates.
    pub fn drain(&mut self, to: f64) {
        let dt = to - self.last_update;
        if dt <= 0.0 {
            return;
        }
        for j in &mut self.jobs {
            j.remaining = (j.remaining - j.rate * dt).max(0.0);
        }
        self.last_update = to;
    }

    /// Remove a finished job; returns calls that *started* as a result
    /// (data-parallel gate admits the next pick).
    pub fn finish_job(&mut self, call: u64, now: f64) -> Vec<u64> {
        self.drain(now);
        debug_assert!(
            self.jobs.iter().any(|j| j.call == call),
            "finish_job: unknown call {call}"
        );
        self.jobs.retain(|j| j.call != call);
        let mut started = Vec::new();
        if self.gated {
            let before: Vec<u64> = self.jobs.iter().map(|j| j.call).collect();
            while self.try_start_queued() {
                // Keep admitting while the policy allows (FCFS admits one —
                // the machine is busy again — but a policy could admit none).
            }
            for j in &self.jobs {
                if !before.contains(&j.call) {
                    started.push(j.call);
                }
            }
        }
        started
    }

    /// Water-fill the PEs over compute jobs and marshal tasks; update job
    /// drain rates, set marshal-bound caps on the network flows, and refresh
    /// utilization/load accounting.
    ///
    /// Call after *any* state change (job/transfer start or end).
    pub fn rebalance(&mut self, net: &mut FluidNet, now: f64) {
        self.drain(now);
        let pes = self.machine.pes as f64;
        let marshal_rate = self.machine.marshal_bytes_per_sec_per_pe;

        // Demands: jobs want `demand` PEs; a marshal task can use at most
        // tcp_cap/marshal_rate of one PE (a thin WAN stream needs ~0.06 PE,
        // a LAN stream most of one).
        let mut demands: Vec<f64> = self.jobs.iter().map(|j| j.demand).collect();
        let marshal_demands: Vec<f64> = self
            .transfers
            .iter()
            .map(|t| (t.tcp_cap / marshal_rate).clamp(0.01, 1.0))
            .collect();
        demands.extend(marshal_demands.iter().copied());

        let shares = water_fill(pes, &demands);
        let (job_shares, marshal_shares) = shares.split_at(self.jobs.len());

        // SMP thread-switching penalty: when runnable threads exceed PEs,
        // context switching wastes a fraction of every job's share (§4.2.1).
        let total_threads: f64 = demands.iter().sum();
        let over = (total_threads - pes).max(0.0);
        let derate = 1.0 / (1.0 + self.machine.thread_switch_penalty * over);

        for (j, &share) in self.jobs.iter_mut().zip(job_shares) {
            j.rate = share * derate;
        }
        // Marshal share bounds the stream: the flow cannot be unmarshalled
        // faster than the CPU share allows.
        let mut busy = job_shares.iter().sum::<f64>() * derate;
        for (t, &share) in self.transfers.iter().zip(marshal_shares) {
            let cap = (marshal_rate * share).min(t.tcp_cap).max(1.0);
            net.set_cap(t.flow, cap, now);
            // Utilization uses the *achieved* rate, not the reserved share.
            busy += net.rate(t.flow) / marshal_rate;
        }
        self.acct.set_busy(now, busy.min(pes));

        // Runnable tasks for the load average: running executables count
        // their thread width, gate-queued executables count 1, marshalling
        // counts its CPU usage.
        let runnable: f64 = self.jobs.iter().map(|j| j.demand).sum::<f64>()
            + self.queue.len() as f64
            + self
                .transfers
                .iter()
                .map(|t| net.rate(t.flow) / marshal_rate)
                .sum::<f64>();
        self.load.set_runnable(now, runnable);
    }

    /// Current runnable-task estimate (for fork-time modelling).
    pub fn runnable_now(&self) -> f64 {
        self.jobs.iter().map(|j| j.demand).sum::<f64>()
            + self.queue.len() as f64
            + self.transfers.len() as f64 * 0.5
    }

    /// Number of running compute jobs.
    pub fn running_jobs(&self) -> usize {
        self.jobs.len()
    }

    /// Number of gate-queued jobs.
    pub fn queued_jobs(&self) -> usize {
        self.queue.len()
    }

    /// Reset accounting windows (end of warm-up).
    pub fn reset_windows(&mut self, now: f64) {
        self.acct.reset_window(now);
        self.load.reset_window(now);
    }

    /// CPU utilization percent over the window.
    pub fn cpu_utilization(&mut self, now: f64) -> f64 {
        self.acct.utilization_percent(now)
    }

    /// Mean and max damped load average over the window.
    pub fn load_stats(&mut self, now: f64) -> (f64, f64) {
        (self.load.mean(now), self.load.max())
    }
}

/// Max-min water-fill of `capacity` over `demands`; returns per-task shares
/// with `share_i ≤ demand_i` and `Σ shares ≤ capacity`, max-min fair.
pub fn water_fill(capacity: f64, demands: &[f64]) -> Vec<f64> {
    let total: f64 = demands.iter().sum();
    if total <= capacity {
        return demands.to_vec();
    }
    let mut shares = vec![0.0; demands.len()];
    let mut frozen = vec![false; demands.len()];
    let mut remaining = capacity;
    let mut active = demands.len();
    while active > 0 && remaining > 1e-12 {
        let fair = remaining / active as f64;
        let mut any_frozen = false;
        for i in 0..demands.len() {
            if !frozen[i] && demands[i] - shares[i] <= fair {
                remaining -= demands[i] - shares[i];
                shares[i] = demands[i];
                frozen[i] = true;
                active -= 1;
                any_frozen = true;
            }
        }
        if !any_frozen {
            for i in 0..demands.len() {
                if !frozen[i] {
                    shares[i] += fair;
                }
            }
            remaining = 0.0;
        }
    }
    shares
}

#[cfg(test)]
mod tests {
    use super::*;
    use ninf_machine::j90;
    use ninf_netsim::{FlowSpec, Topology};

    fn test_net() -> (FluidNet, ninf_netsim::NodeId, ninf_netsim::NodeId) {
        let mut t = Topology::new();
        let c = t.add_node("client");
        let s = t.add_node("server");
        t.add_duplex_link(c, s, 20e6, 0.0);
        t.compute_routes();
        (FluidNet::new(t), c, s)
    }

    #[test]
    fn water_fill_uncontended_gives_demands() {
        assert_eq!(water_fill(4.0, &[1.0, 1.0]), vec![1.0, 1.0]);
    }

    #[test]
    fn water_fill_contended_is_fair() {
        let s = water_fill(4.0, &[4.0, 4.0]);
        assert!((s[0] - 2.0).abs() < 1e-9);
        assert!((s[1] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn water_fill_small_demands_fill_first() {
        let s = water_fill(4.0, &[0.5, 4.0, 4.0]);
        assert!((s[0] - 0.5).abs() < 1e-9);
        assert!((s[1] - 1.75).abs() < 1e-9);
        assert!((s[2] - 1.75).abs() < 1e-9);
    }

    #[test]
    fn water_fill_conserves_capacity() {
        let demands = [0.3, 2.0, 1.0, 4.0, 0.1];
        let s = water_fill(4.0, &demands);
        let total: f64 = s.iter().sum();
        assert!(total <= 4.0 + 1e-9);
        for (sh, d) in s.iter().zip(&demands) {
            assert!(sh <= d);
        }
    }

    #[test]
    fn task_parallel_runs_everything_timeshared() {
        let (mut net, _, _) = test_net();
        let mut srv = ServerSim::new(j90(), ExecMode::TaskParallel, SchedPolicy::Fcfs);
        for call in 0..8 {
            assert!(srv.submit_job(call, 10.0, 0.0));
        }
        srv.rebalance(&mut net, 0.0);
        assert_eq!(srv.running_jobs(), 8);
        // 8 single-PE jobs on 4 PEs: each runs at half speed.
        let (t, _) = srv.next_job_completion(0.0).unwrap();
        assert!((t - 20.0).abs() < 1e-6, "t = {t}");
    }

    #[test]
    fn data_parallel_timeshares_wide_jobs() {
        // Two 4-PE libSci executables on 4 PEs: the OS timeshares, each gets
        // 2 PE-sec/sec (Table 4's load average 30 behaviour).
        let (mut net, _, _) = test_net();
        let mut srv = ServerSim::new(j90(), ExecMode::DataParallel, SchedPolicy::Fcfs);
        assert!(srv.submit_job(0, 8.0, 0.0));
        assert!(srv.submit_job(1, 8.0, 0.0));
        srv.rebalance(&mut net, 0.0);
        assert_eq!(srv.running_jobs(), 2);
        let (t, _) = srv.next_job_completion(0.0).unwrap();
        assert!((t - 4.0).abs() < 1e-9, "t = {t}");
    }

    #[test]
    fn gated_mode_serializes() {
        let (mut net, _, _) = test_net();
        let mut srv = ServerSim::new(j90(), ExecMode::DataParallel, SchedPolicy::Fcfs);
        srv.gated = true;
        assert!(srv.submit_job(0, 8.0, 0.0));
        assert!(!srv.submit_job(1, 8.0, 0.0));
        srv.rebalance(&mut net, 0.0);
        assert_eq!(srv.running_jobs(), 1);
        assert_eq!(srv.queued_jobs(), 1);
        // The running 4-PE job drains at 4 PE-sec/sec: done at t=2.
        let (t, call) = srv.next_job_completion(0.0).unwrap();
        assert!((t - 2.0).abs() < 1e-9);
        assert_eq!(call, 0);
        srv.drain(2.0);
        let started = srv.finish_job(0, 2.0);
        assert_eq!(started, vec![1]);
    }

    #[test]
    fn marshalling_contends_with_compute() {
        let (mut net, c, s) = test_net();
        let mut srv = ServerSim::new(j90(), ExecMode::TaskParallel, SchedPolicy::Fcfs);
        // Saturate all 4 PEs with 6 compute jobs.
        for call in 0..6 {
            srv.submit_job(call, 100.0, 0.0);
        }
        let flow = net.start_flow(
            FlowSpec {
                src: c,
                dst: s,
                bytes: 1e9,
                cap: 2.6e6,
            },
            0.0,
        );
        srv.transfer_started(flow, 2.6e6, 0.0);
        srv.rebalance(&mut net, 0.0);
        // Marshal demand ~0.87 PE shares against 6 unit jobs: its share is
        // ~4/6.87 ≈ 0.58 PE → cap ≈ 1.75 MB/s, well under the TCP ceiling.
        let rate = net.rate(flow);
        assert!(rate < 2.0e6, "rate = {rate}");
        assert!(rate > 1.0e6, "rate = {rate}");
    }

    #[test]
    fn idle_server_gives_marshalling_full_speed() {
        let (mut net, c, s) = test_net();
        let mut srv = ServerSim::new(j90(), ExecMode::TaskParallel, SchedPolicy::Fcfs);
        let flow = net.start_flow(
            FlowSpec {
                src: c,
                dst: s,
                bytes: 1e9,
                cap: 2.6e6,
            },
            0.0,
        );
        srv.transfer_started(flow, 2.6e6, 0.0);
        srv.rebalance(&mut net, 0.0);
        assert!((net.rate(flow) - 2.6e6).abs() < 1e-3);
    }

    #[test]
    fn utilization_tracks_jobs() {
        let (mut net, _, _) = test_net();
        let mut srv = ServerSim::new(j90(), ExecMode::TaskParallel, SchedPolicy::Fcfs);
        srv.submit_job(0, 100.0, 0.0);
        srv.submit_job(1, 100.0, 0.0);
        srv.rebalance(&mut net, 0.0);
        // 2 of 4 PEs busy.
        assert!((srv.cpu_utilization(10.0) - 50.0).abs() < 1.0);
    }

    #[test]
    fn smp_thread_penalty_slows_jobs() {
        let (mut net, _, _) = test_net();
        let mut machine = ninf_machine::sparc_smp();
        machine.thread_switch_penalty = 0.05;
        let mut srv = ServerSim::new(machine, ExecMode::TaskParallel, SchedPolicy::Fcfs);
        srv.threads_per_job = Some(12.0); // highly multithreaded library
        for call in 0..4 {
            srv.submit_job(call, 10.0, 0.0);
        }
        srv.rebalance(&mut net, 0.0);
        // 48 thread demand on 16 PEs: over = 32 → derate = 1/(1+1.6) ≈ 0.38.
        // Fair share per job = 4 PEs, so rate ≈ 1.54 instead of 4.
        let (t, _) = srv.next_job_completion(0.0).unwrap();
        assert!(t > 6.0, "penalized completion should be slow, t = {t}");
    }

    #[test]
    fn drain_is_idempotent_at_same_time() {
        let (mut net, _, _) = test_net();
        let mut srv = ServerSim::new(j90(), ExecMode::TaskParallel, SchedPolicy::Fcfs);
        srv.submit_job(0, 4.0, 0.0);
        srv.rebalance(&mut net, 0.0);
        srv.drain(1.0);
        srv.drain(1.0);
        let (t, _) = srv.next_job_completion(1.0).unwrap();
        assert!((t - 4.0).abs() < 1e-9);
    }
}
