//! Plain-text rendering of results in the paper's table shapes.

use crate::metrics::CellResult;

/// Render a multi-client table (Tables 3–8 shape): one row per (n, c) cell.
pub fn render_table(title: &str, cells: &[CellResult]) -> String {
    let mut out = String::new();
    out.push_str(&format!("## {title}\n"));
    out.push_str(
        "workload          |  c | Performance[M(fl)ops]   | response[sec]      | wait[sec]          | Throughput[MB/s]    |  CPU%  |  Load  | times\n",
    );
    out.push_str(
        "------------------|----|-------------------------|--------------------|--------------------|---------------------|--------|--------|------\n",
    );
    for cell in cells {
        out.push_str(&format!(
            "{:<18}| {:>2} | {:<23} | {:<18} | {:<18} | {:<19} | {:>6.2} | {:>6.2} | {:>4}\n",
            cell.workload,
            cell.clients,
            cell.perf.cell(2),
            cell.response.cell(2),
            cell.wait.cell(2),
            cell.throughput.cell(3),
            cell.cpu_utilization,
            cell.load_average,
            cell.times,
        ));
    }
    out
}

/// Render an x/y series (the figures): one `x  y` pair per line.
pub fn render_series(title: &str, header: (&str, &str), points: &[(f64, f64)]) -> String {
    let mut out = String::new();
    out.push_str(&format!("## {title}\n{:<12} {}\n", header.0, header.1));
    for (x, y) in points {
        out.push_str(&format!("{x:<12} {y:.3}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Summary;

    fn cell() -> CellResult {
        CellResult {
            workload: "linpack n=600".into(),
            clients: 4,
            perf: Summary {
                max: 72.4,
                min: 43.85,
                mean: 67.05,
            },
            response: Summary {
                max: 1.01,
                min: 0.01,
                mean: 0.05,
            },
            wait: Summary {
                max: 0.05,
                min: 0.02,
                mean: 0.03,
            },
            throughput: Summary {
                max: 2.55,
                min: 1.89,
                mean: 2.34,
            },
            cpu_utilization: 42.03,
            load_average: 1.99,
            load_max: 3.2,
            fairness: 0.93,
            times: 96,
        }
    }

    #[test]
    fn table_contains_all_cells() {
        let text = render_table("Table 3", &[cell()]);
        assert!(text.contains("Table 3"));
        assert!(text.contains("72.40/43.85/67.05"));
        assert!(text.contains("42.03"));
        assert!(text.contains("96"));
    }

    #[test]
    fn series_lists_points() {
        let text = render_series("Fig 3", ("n", "Mflops"), &[(100.0, 12.5), (200.0, 30.0)]);
        assert!(text.contains("Fig 3"));
        assert!(text.contains("100"));
        assert!(text.contains("30.000"));
    }
}
