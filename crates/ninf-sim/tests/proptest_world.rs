//! Property tests on whole-world simulations: physical invariants must hold
//! for arbitrary scenario parameters, and runs must be reproducible.

use ninf_machine::j90;
use ninf_server::{ExecMode, SchedPolicy};
use ninf_sim::{Scenario, Workload, World};
use proptest::prelude::*;

fn run_lan(c: usize, n: u64, mode: ExecMode, seed: u64) -> ninf_sim::CellResult {
    let mut s = Scenario::lan(
        j90(),
        c,
        Workload::Linpack { n },
        mode,
        SchedPolicy::Fcfs,
        seed,
    );
    s.duration = 180.0;
    s.warmup = 30.0;
    World::new(s).run()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Physical sanity on arbitrary LAN cells.
    #[test]
    fn physical_invariants(
        c in 1usize..12,
        n in prop_oneof![Just(300u64), Just(600), Just(1000)],
        task_parallel in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let mode = if task_parallel { ExecMode::TaskParallel } else { ExecMode::DataParallel };
        let cell = run_lan(c, n, mode, seed);

        prop_assert!(cell.times > 0, "no calls completed");
        prop_assert!(cell.cpu_utilization >= 0.0 && cell.cpu_utilization <= 100.0 + 1e-6);
        prop_assert!(cell.load_average >= 0.0);
        prop_assert!(cell.load_max >= cell.load_average - 1e-9);

        // Throughput can never exceed the per-stream TCP cap.
        prop_assert!(
            cell.throughput.max <= 2.6 + 1e-6,
            "throughput {} above stream cap",
            cell.throughput.max
        );
        // Performance can never exceed the machine's peak for this n, and
        // all summaries are ordered min <= mean <= max.
        let peak = j90().allpe_linpack.mflops(n);
        prop_assert!(cell.perf.max <= peak + 1e-6, "{} > peak {}", cell.perf.max, peak);
        for s in [cell.perf, cell.response, cell.wait, cell.throughput] {
            prop_assert!(s.min <= s.mean + 1e-9 && s.mean <= s.max + 1e-9);
            prop_assert!(s.min >= 0.0);
        }
    }

    /// Bit-for-bit reproducibility: the same scenario yields the same cell.
    #[test]
    fn deterministic_replay(c in 1usize..8, seed in any::<u64>()) {
        let a = run_lan(c, 600, ExecMode::TaskParallel, seed);
        let b = run_lan(c, 600, ExecMode::TaskParallel, seed);
        prop_assert_eq!(a.times, b.times);
        prop_assert_eq!(a.perf.mean.to_bits(), b.perf.mean.to_bits());
        prop_assert_eq!(a.throughput.max.to_bits(), b.throughput.max.to_bits());
        prop_assert_eq!(a.cpu_utilization.to_bits(), b.cpu_utilization.to_bits());
    }

    /// More clients never *increase* mean per-client performance (work
    /// conservation on a shared server).
    #[test]
    fn more_clients_never_help(seed in any::<u64>()) {
        let few = run_lan(2, 1000, ExecMode::TaskParallel, seed);
        let many = run_lan(12, 1000, ExecMode::TaskParallel, seed);
        prop_assert!(
            many.perf.mean <= few.perf.mean * 1.1,
            "c=12 ({}) should not beat c=2 ({})",
            many.perf.mean,
            few.perf.mean
        );
    }

    /// Server utilization grows monotonically (within noise) in client count.
    #[test]
    fn utilization_monotone_in_clients(seed in any::<u64>()) {
        let u2 = run_lan(2, 1000, ExecMode::TaskParallel, seed).cpu_utilization;
        let u8 = run_lan(8, 1000, ExecMode::TaskParallel, seed).cpu_utilization;
        prop_assert!(u8 >= u2 * 0.8, "u8 {} vs u2 {}", u8, u2);
    }
}
